//! Trace (de)serialization.
//!
//! Two formats:
//!
//! * **JSON header + JSON-lines body** (`.jsonl`): first line is the
//!   trace metadata, each following line one request. Streams well and
//!   diffs well.
//! * The compact **log format** (`.log`): one whitespace-separated line
//!   per request, in the spirit of Squid access logs —
//!   `time_ms client url server size last_modified`.

use crate::model::{Request, Trace};
use sc_json::{FromJson, ToJson, Value};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

#[derive(Default)]
struct Header {
    name: String,
    groups: u32,
}

sc_json::json_struct!(Header { name, groups });

/// Errors loading a trace.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Write a trace as JSON header + JSON-lines body.
pub fn save_jsonl<W: Write>(trace: &Trace, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let header = Header {
        name: trace.name.clone(),
        groups: trace.groups,
    };
    w.write_all(header.to_json().to_compact().as_bytes())?;
    w.write_all(b"\n")?;
    for r in &trace.requests {
        w.write_all(r.to_json().to_compact().as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Read a trace written by [`save_jsonl`].
pub fn load_jsonl<R: Read>(r: R) -> Result<Trace, LoadError> {
    let mut lines = BufReader::new(r).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| LoadError::Parse {
            line: 1,
            message: "empty file".into(),
        })??;
    let header = Value::parse(&header_line)
        .and_then(|v| Header::from_json(&v))
        .map_err(|e| LoadError::Parse {
            line: 1,
            message: e.to_string(),
        })?;
    let mut requests = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req = Value::parse(&line)
            .and_then(|v| Request::from_json(&v))
            .map_err(|e| LoadError::Parse {
                line: i + 2,
                message: e.to_string(),
            })?;
        requests.push(req);
    }
    Ok(Trace {
        name: header.name,
        groups: header.groups,
        requests,
    })
}

/// Write the compact log format. The header travels in a `#`-comment.
pub fn save_log<W: Write>(trace: &Trace, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# trace {} groups {}", trace.name, trace.groups)?;
    for r in &trace.requests {
        writeln!(
            w,
            "{} {} {} {} {} {}",
            r.time_ms, r.client, r.url, r.server, r.size, r.last_modified
        )?;
    }
    w.flush()
}

/// Read the compact log format.
pub fn load_log<R: Read>(r: R) -> Result<Trace, LoadError> {
    let reader = BufReader::new(r);
    let mut name = String::from("unnamed");
    let mut groups = 1u32;
    let mut requests = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() == 4 && toks[0] == "trace" && toks[2] == "groups" {
                name = toks[1].to_string();
                groups = toks[3].parse().map_err(|_| LoadError::Parse {
                    line: i + 1,
                    message: format!("bad group count {:?}", toks[3]),
                })?;
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 {
            return Err(LoadError::Parse {
                line: i + 1,
                message: format!("expected 6 fields, got {}", fields.len()),
            });
        }
        let parse = |s: &str, what: &str| -> Result<u64, LoadError> {
            s.parse().map_err(|_| LoadError::Parse {
                line: i + 1,
                message: format!("bad {what}: {s:?}"),
            })
        };
        requests.push(Request {
            time_ms: parse(fields[0], "time")?,
            client: parse(fields[1], "client")? as u32,
            url: parse(fields[2], "url")?,
            server: parse(fields[3], "server")? as u32,
            size: parse(fields[4], "size")?,
            last_modified: parse(fields[5], "last_modified")?,
        });
    }
    Ok(Trace {
        name,
        groups,
        requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, TraceGenerator};

    fn sample() -> Trace {
        TraceGenerator::new(GeneratorConfig {
            requests: 500,
            clients: 16,
            documents: 200,
            groups: 4,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        save_jsonl(&t, &mut buf).unwrap();
        let back = load_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn log_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        save_log(&t, &mut buf).unwrap();
        let back = load_log(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn load_jsonl_rejects_garbage_with_line_number() {
        let data = "{\"name\":\"x\",\"groups\":2}\nnot json\n";
        match load_jsonl(data.as_bytes()) {
            Err(LoadError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_log_rejects_short_lines() {
        let data = "# trace t groups 2\n1 2 3\n";
        match load_log(data.as_bytes()) {
            Err(LoadError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("6 fields"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_jsonl_is_error() {
        assert!(load_jsonl(&b""[..]).is_err());
    }

    #[test]
    fn log_without_header_defaults() {
        let t = load_log(&b"5 1 2 0 100 0\n"[..]).unwrap();
        assert_eq!(t.name, "unnamed");
        assert_eq!(t.groups, 1);
        assert_eq!(t.requests.len(), 1);
    }
}
