//! The five trace profiles mirroring the paper's Table I workloads.
//!
//! The original traces are unobtainable (DEC and UCB archives are gone;
//! UPisa and Questnet were never public; NLANR logs rotated out decades
//! ago), so each profile parameterizes the synthetic generator to match
//! the *shape* the paper reports: the group count used in Section II, the
//! relative scale of requests/clients/documents, and qualitative traits
//! (Questnet sees only child-proxy misses, so weak temporal locality;
//! NLANR has the duplicate-request anomaly of Section V-A). Request
//! counts are scaled to laptop size — roughly 1/10 of the originals —
//! which the paper itself licenses by reporting that "results under other
//! cache sizes are similar".

use crate::generator::{GeneratorConfig, TraceGenerator};
use crate::model::Trace;

/// A named, fully-determined workload.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// Profile name as used in the paper ("DEC", "UCB", …).
    pub name: &'static str,
    /// The generator configuration.
    pub config: GeneratorConfig,
}

impl TraceProfile {
    /// Generate this profile's trace (deterministic).
    pub fn generate(&self) -> Trace {
        TraceGenerator::new(self.config.clone()).generate()
    }

    /// Generate a scaled-down variant: request count divided by `factor`
    /// (documents and clients shrink with the square root so popularity
    /// density is roughly preserved). Used by quick tests and examples.
    pub fn generate_scaled(&self, factor: usize) -> Trace {
        assert!(factor >= 1);
        let mut cfg = self.config.clone();
        cfg.requests = (cfg.requests / factor).max(1_000);
        let shrink = (factor as f64).sqrt();
        cfg.documents = ((cfg.documents as f64 / shrink) as usize).max(500);
        cfg.clients = ((cfg.clients as f64 / shrink) as u32).max(cfg.groups);
        TraceGenerator::new(cfg).generate()
    }
}

/// Names of the five paper profiles, in Table I order.
pub fn profile_names() -> [&'static str; 5] {
    ["DEC", "UCB", "UPisa", "Questnet", "NLANR"]
}

/// Look up a profile by (case-insensitive) name.
pub fn profile(name: &str) -> Option<TraceProfile> {
    let cfg = match name.to_ascii_lowercase().as_str() {
        // DEC: corporate proxy, 16 groups in the paper's sharing split,
        // the largest client population and document space.
        "dec" => GeneratorConfig {
            name: "DEC".into(),
            requests: 350_000,
            clients: 1_600,
            documents: 130_000,
            zipf_alpha: 0.77,
            client_activity_alpha: 0.55,
            groups: 16,
            mean_gap_ms: 1_700.0, // ≈ a work week of trace time
            mod_probability: 0.02,
            recency_prob: 0.25,
            seed: 0xDEC,
            ..Default::default()
        },
        // UCB Dial-IP: home users, 8 groups, slightly weaker skew.
        "ucb" => GeneratorConfig {
            name: "UCB".into(),
            requests: 250_000,
            clients: 800,
            documents: 95_000,
            zipf_alpha: 0.74,
            client_activity_alpha: 0.5,
            groups: 8,
            mean_gap_ms: 4_000.0,
            mod_probability: 0.015,
            recency_prob: 0.25,
            seed: 0x0CB,
            ..Default::default()
        },
        // UPisa: one CS department, the smallest and most local trace.
        "upisa" => GeneratorConfig {
            name: "UPisa".into(),
            requests: 120_000,
            clients: 250,
            documents: 38_000,
            zipf_alpha: 0.82,
            client_activity_alpha: 0.5,
            groups: 8,
            mean_gap_ms: 20_000.0, // three months of trace time
            mod_probability: 0.015,
            recency_prob: 0.3,
            seed: 0x215A,
            ..Default::default()
        },
        // Questnet: the parent proxy sees only the *misses* of 12 child
        // proxies — each "client" is a child proxy, and the easy re-hits
        // were already absorbed below, so temporal locality is weak.
        "questnet" => GeneratorConfig {
            name: "Questnet".into(),
            requests: 200_000,
            clients: 12,
            documents: 90_000,
            zipf_alpha: 0.65,
            client_activity_alpha: 0.3,
            groups: 12,
            mean_gap_ms: 2_500.0,
            mod_probability: 0.02,
            recency_prob: 0.08,
            seed: 0x0E57,
            ..Default::default()
        },
        // NLANR: four top-level proxies (bo, pb, sd, uc), one day, with
        // the duplicate-request anomaly the paper diagnoses in §V-A.
        "nlanr" => GeneratorConfig {
            name: "NLANR".into(),
            requests: 300_000,
            clients: 480,
            documents: 160_000,
            zipf_alpha: 0.72,
            client_activity_alpha: 0.45,
            groups: 4,
            mean_gap_ms: 280.0, // one busy day
            mod_probability: 0.02,
            recency_prob: 0.2,
            anomaly_duplicates: 0.03,
            seed: 0x41A7,
            ..Default::default()
        },
        _ => return None,
    };
    Some(TraceProfile {
        name: match name.to_ascii_lowercase().as_str() {
            "dec" => "DEC",
            "ucb" => "UCB",
            "upisa" => "UPisa",
            "questnet" => "Questnet",
            _ => "NLANR",
        },
        config: cfg,
    })
}

/// All five profiles, in Table I order.
pub fn all_profiles() -> Vec<TraceProfile> {
    profile_names()
        .iter()
        .map(|n| profile(n).expect("built-in profile"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_resolve() {
        for n in profile_names() {
            let p = profile(n).unwrap_or_else(|| panic!("missing {n}"));
            assert_eq!(p.name, n);
            assert_eq!(p.config.name, n);
        }
        assert!(profile("nonexistent").is_none());
        assert!(profile("DEC").is_some(), "case-insensitive");
        assert!(profile("dec").is_some());
    }

    #[test]
    fn group_counts_match_section_two() {
        let expect = [("DEC", 16u32), ("UCB", 8), ("UPisa", 8), ("Questnet", 12), ("NLANR", 4)];
        for (name, groups) in expect {
            assert_eq!(profile(name).unwrap().config.groups, groups, "{name}");
        }
    }

    #[test]
    fn scaled_generation_shrinks() {
        let p = profile("UPisa").unwrap();
        let t = p.generate_scaled(10);
        assert_eq!(t.len(), 12_000);
        assert_eq!(t.groups, 8);
    }

    #[test]
    fn only_nlanr_has_anomaly() {
        for n in profile_names() {
            let p = profile(n).unwrap();
            if n == "NLANR" {
                assert!(p.config.anomaly_duplicates > 0.0);
            } else {
                assert_eq!(p.config.anomaly_duplicates, 0.0, "{n}");
            }
        }
    }
}
