//! Client → proxy-group partitioning.
//!
//! Section II: "A client is put in a group if its clientid mod the group
//! size equals the group ID." One function, used identically by the
//! generator, the simulator and the live replay drivers, so they can
//! never disagree about which proxy owns a client.

use crate::model::{Request, Trace};

/// The proxy group serving `client` when the trace is split `groups` ways.
pub fn group_of_client(client: u32, groups: u32) -> u32 {
    assert!(groups > 0, "zero proxy groups");
    client % groups
}

/// Split a trace into per-group request streams, preserving time order
/// within each group. Stream `g` contains exactly the requests of clients
/// with `client mod groups == g`.
pub fn split_by_group(trace: &Trace) -> Vec<Vec<Request>> {
    let groups = trace.groups;
    let mut out: Vec<Vec<Request>> = vec![Vec::new(); groups as usize];
    for r in &trace.requests {
        out[group_of_client(r.client, groups) as usize].push(*r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_rule() {
        assert_eq!(group_of_client(0, 4), 0);
        assert_eq!(group_of_client(5, 4), 1);
        assert_eq!(group_of_client(7, 1), 0);
    }

    #[test]
    #[should_panic(expected = "zero proxy groups")]
    fn rejects_zero_groups() {
        group_of_client(1, 0);
    }

    #[test]
    fn split_partitions_everything_in_order() {
        let reqs: Vec<Request> = (0..100)
            .map(|i| Request {
                time_ms: i,
                client: (i % 7) as u32,
                url: i,
                server: 0,
                size: 1,
                last_modified: 0,
            })
            .collect();
        let trace = Trace {
            name: "t".into(),
            groups: 3,
            requests: reqs,
        };
        let parts = split_by_group(&trace);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
        for (g, part) in parts.iter().enumerate() {
            assert!(part.iter().all(|r| r.client % 3 == g as u32));
            assert!(part.windows(2).all(|w| w[0].time_ms <= w[1].time_ms));
        }
    }
}
