//! Distribution samplers used by the trace generator.
//!
//! Implemented here rather than pulled from `rand_distr` so the exact
//! parameterizations match the workload literature the paper cites:
//! Zipf-like popularity (Breslau et al.), bounded Pareto sizes with
//! α = 1.1 (Crovella & Bestavros, as used by the Wisconsin Proxy
//! Benchmark), and exponential inter-arrivals.

use sc_util::Rng;

/// Zipf-like sampler over ranks `0..n`: `P(rank i) ∝ 1/(i+1)^alpha`.
///
/// Uses a precomputed CDF and binary search; construction is O(n),
/// sampling O(log n).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `alpha` (web popularity is
    /// typically 0.6–0.9).
    ///
    /// # Panics
    /// If `n == 0` or `alpha` is not finite and non-negative.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(alpha.is_finite() && alpha >= 0.0, "bad Zipf exponent {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.gen_f64();
        // partition_point: first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Bounded Pareto sampler for document body sizes.
///
/// `P(X > x) ∝ x^{-alpha}` truncated to `[min, max]`; the paper's
/// benchmark uses α = 1.1 with a mean around 8–13 KB.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    alpha: f64,
    min: f64,
    max: f64,
}

impl BoundedPareto {
    /// Sampler on `[min, max]` with tail exponent `alpha`.
    ///
    /// # Panics
    /// If bounds are not `0 < min < max` or `alpha <= 0`.
    pub fn new(alpha: f64, min: u64, max: u64) -> Self {
        assert!(alpha > 0.0, "Pareto alpha must be positive");
        assert!(min > 0 && min < max, "bad Pareto bounds [{min}, {max}]");
        BoundedPareto {
            alpha,
            min: min as f64,
            max: max as f64,
        }
    }

    /// The Wisconsin-benchmark shape: α = 1.1, 1 KB floor, 8 MB ceiling.
    pub fn wisconsin() -> Self {
        Self::new(1.1, 1024, 8 * 1024 * 1024)
    }

    /// Draw a size in bytes (inverse-CDF method).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let (l, h, a) = (self.min, self.max, self.alpha);
        let la = l.powf(-a);
        let ha = h.powf(-a);
        let x = (la - u * (la - ha)).powf(-1.0 / a);
        x.round().clamp(l, h) as u64
    }
}

/// Exponential inter-arrival gap in milliseconds with the given mean.
pub fn exp_gap_ms(rng: &mut Rng, mean_ms: f64) -> u64 {
    assert!(mean_ms > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-mean_ms * u.ln()).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(1000, 0.8);
        let mut rng = Rng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 beats rank 10");
        assert!(counts[0] > counts[999] * 5, "head far above tail");
        // Ratio of rank0 to rank1 frequencies should be near 2^0.8 ≈ 1.74.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.4..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::seed_from_u64(2);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn zipf_single_item() {
        let z = Zipf::new(1, 0.8);
        let mut rng = Rng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn pareto_within_bounds_and_heavy_tailed() {
        let p = BoundedPareto::wisconsin();
        let mut rng = Rng::seed_from_u64(4);
        let samples: Vec<u64> = (0..50_000).map(|_| p.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (1024..=8 * 1024 * 1024).contains(&s)));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // α=1.1 on [1 KB, 8 MB] gives a mean around 8–13 KB.
        assert!((4_000.0..40_000.0).contains(&mean), "mean {mean}");
        let median = {
            let mut s = samples.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(
            (mean as u64) > median * 2,
            "heavy tail: mean {mean} vs median {median}"
        );
    }

    #[test]
    #[should_panic(expected = "bad Pareto bounds")]
    fn pareto_rejects_inverted_bounds() {
        BoundedPareto::new(1.1, 10, 10);
    }

    #[test]
    fn exp_gap_mean() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| exp_gap_ms(&mut rng, 100.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((90.0..110.0).contains(&mean), "mean {mean}");
    }
}
