//! Distribution samplers used by the trace generator.
//!
//! Implemented here rather than pulled from `rand_distr` so the exact
//! parameterizations match the workload literature the paper cites:
//! Zipf-like popularity (Breslau et al.), bounded Pareto sizes with
//! α = 1.1 (Crovella & Bestavros, as used by the Wisconsin Proxy
//! Benchmark), and exponential inter-arrivals.

use sc_util::Rng;

/// Zipf-like sampler over ranks `0..n`: `P(rank i) ∝ 1/(i+1)^alpha`.
///
/// Uses a precomputed CDF and binary search; construction is O(n),
/// sampling O(log n).
///
/// The sampler also carries a **rank permutation** — a `rank → item`
/// map, identity at construction — so non-stationary workloads can
/// churn *which* item is popular without rebuilding the CDF.
/// [`Zipf::sample`] keeps returning raw ranks (frozen popularity
/// order, the historical behavior); [`Zipf::sample_item`] maps the
/// drawn rank through the permutation, and [`Zipf::permute_with`] is
/// the hook that mutates the map in place (the diurnal-drift scenario
/// rotates it a little every virtual period).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    /// `map[rank] = item`; identity until [`Zipf::permute_with`] runs.
    map: Vec<u32>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `alpha` (web popularity is
    /// typically 0.6–0.9).
    ///
    /// # Panics
    /// If `n == 0` or `alpha` is not finite and non-negative.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(n <= u32::MAX as usize, "Zipf item space too large");
        assert!(alpha.is_finite() && alpha >= 0.0, "bad Zipf exponent {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        let map = (0..n as u32).collect();
        Zipf { cdf, map }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n` (0 = most popular). Ignores the
    /// permutation — rank order is fixed at construction.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.gen_f64();
        // partition_point: first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draw an item in `0..n`: a rank drawn from the Zipf law, mapped
    /// through the current rank permutation. With the identity map this
    /// is exactly [`Zipf::sample`].
    pub fn sample_item(&self, rng: &mut Rng) -> usize {
        self.map[self.sample(rng)] as usize
    }

    /// The current `rank → item` map (`permutation()[0]` is the most
    /// popular item).
    pub fn permutation(&self) -> &[u32] {
        &self.map
    }

    /// The rank-permutation hook: hand the `rank → item` map to `f` for
    /// in-place mutation (shuffle it, rotate the head, swap a drifting
    /// fraction of pairs — whatever the workload calls for).
    ///
    /// # Panics
    /// If `f` leaves the map something other than a permutation of
    /// `0..n` (every item must keep exactly one rank).
    pub fn permute_with(&mut self, f: impl FnOnce(&mut [u32])) {
        f(&mut self.map);
        let n = self.map.len();
        let mut seen = vec![false; n];
        for &item in &self.map {
            assert!(
                (item as usize) < n && !seen[item as usize],
                "rank map is no longer a permutation of 0..{n}"
            );
            seen[item as usize] = true;
        }
    }

    /// Canned drift step: `swaps` seeded random transpositions of the
    /// rank map. Each swap trades the popularity of two items, so a
    /// small `swaps` per period gives gradual rank churn and
    /// `swaps ≈ n` approaches a full reshuffle.
    pub fn churn(&mut self, rng: &mut Rng, swaps: usize) {
        let n = self.map.len();
        if n < 2 {
            return;
        }
        for _ in 0..swaps {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            self.map.swap(a, b);
        }
    }
}

/// Bounded Pareto sampler for document body sizes.
///
/// `P(X > x) ∝ x^{-alpha}` truncated to `[min, max]`; the paper's
/// benchmark uses α = 1.1 with a mean around 8–13 KB.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    alpha: f64,
    min: f64,
    max: f64,
}

impl BoundedPareto {
    /// Sampler on `[min, max]` with tail exponent `alpha`.
    ///
    /// # Panics
    /// If bounds are not `0 < min < max` or `alpha <= 0`.
    pub fn new(alpha: f64, min: u64, max: u64) -> Self {
        assert!(alpha > 0.0, "Pareto alpha must be positive");
        assert!(min > 0 && min < max, "bad Pareto bounds [{min}, {max}]");
        BoundedPareto {
            alpha,
            min: min as f64,
            max: max as f64,
        }
    }

    /// The Wisconsin-benchmark shape: α = 1.1, 1 KB floor, 8 MB ceiling.
    pub fn wisconsin() -> Self {
        Self::new(1.1, 1024, 8 * 1024 * 1024)
    }

    /// Draw a size in bytes (inverse-CDF method).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let (l, h, a) = (self.min, self.max, self.alpha);
        let la = l.powf(-a);
        let ha = h.powf(-a);
        let x = (la - u * (la - ha)).powf(-1.0 / a);
        x.round().clamp(l, h) as u64
    }
}

/// Exponential inter-arrival gap in milliseconds with the given mean.
pub fn exp_gap_ms(rng: &mut Rng, mean_ms: f64) -> u64 {
    assert!(mean_ms > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-mean_ms * u.ln()).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(1000, 0.8);
        let mut rng = Rng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 beats rank 10");
        assert!(counts[0] > counts[999] * 5, "head far above tail");
        // Ratio of rank0 to rank1 frequencies should be near 2^0.8 ≈ 1.74.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.4..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::seed_from_u64(2);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn zipf_single_item() {
        let z = Zipf::new(1, 0.8);
        let mut rng = Rng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 1.0);
    }

    /// Chi-square goodness-of-fit for the permuted sampler: with a
    /// seeded shuffle installed through the hook, the *item* histogram
    /// must match the Zipf law pushed through that permutation. 49
    /// degrees of freedom; the 99.9th percentile of χ²₄₉ is ≈ 85.4, so
    /// a statistic under 90 accepts with huge margin while any broken
    /// mapping (off-by-one, stale map, uniform leak) lands in the
    /// hundreds.
    #[test]
    fn permuted_items_fit_the_zipf_law_chi_square() {
        const N: usize = 50;
        const DRAWS: u64 = 200_000;
        let mut z = Zipf::new(N, 0.8);
        let mut rng = Rng::seed_from_u64(0xD81F7);
        z.permute_with(|map| {
            // Seeded Fisher–Yates, independent of the sampling rng.
            let mut perm_rng = Rng::seed_from_u64(0xFACADE);
            perm_rng.shuffle(map);
        });
        let perm = z.permutation().to_vec();
        assert_ne!(perm, (0..N as u32).collect::<Vec<_>>(), "shuffle did move ranks");

        let mut counts = vec![0u64; N];
        for _ in 0..DRAWS {
            counts[z.sample_item(&mut rng)] += 1;
        }
        // Expected probability of *item* perm[rank] is the law at rank.
        let harmonic: f64 = (0..N).map(|i| 1.0 / ((i + 1) as f64).powf(0.8)).sum();
        let mut chi2 = 0.0;
        for (rank, &item) in perm.iter().enumerate() {
            let p = (1.0 / ((rank + 1) as f64).powf(0.8)) / harmonic;
            let expected = DRAWS as f64 * p;
            let diff = counts[item as usize] as f64 - expected;
            chi2 += diff * diff / expected;
        }
        assert!(chi2 < 90.0, "chi-square statistic {chi2:.1} rejects the permuted fit");
        // And the permuted head really did move: the most-drawn item is
        // whatever the map put at rank 0.
        let argmax = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i as u32);
        assert_eq!(argmax, Some(perm[0]), "rank-0 item dominates after permutation");
    }

    #[test]
    fn identity_map_makes_sample_item_match_sample_law() {
        let z = Zipf::new(100, 0.8);
        assert_eq!(z.permutation(), (0..100).collect::<Vec<u32>>());
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample_item(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "identity map keeps rank order");
    }

    #[test]
    fn churn_preserves_the_permutation_invariant() {
        let mut z = Zipf::new(257, 0.7);
        let mut rng = Rng::seed_from_u64(42);
        for _ in 0..10 {
            z.churn(&mut rng, 64);
        }
        let mut sorted = z.permutation().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..257).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "no longer a permutation")]
    fn permute_with_rejects_non_permutations() {
        let mut z = Zipf::new(4, 0.8);
        z.permute_with(|map| map[0] = map[1]);
    }

    #[test]
    fn pareto_within_bounds_and_heavy_tailed() {
        let p = BoundedPareto::wisconsin();
        let mut rng = Rng::seed_from_u64(4);
        let samples: Vec<u64> = (0..50_000).map(|_| p.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (1024..=8 * 1024 * 1024).contains(&s)));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // α=1.1 on [1 KB, 8 MB] gives a mean around 8–13 KB.
        assert!((4_000.0..40_000.0).contains(&mean), "mean {mean}");
        let median = {
            let mut s = samples.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(
            (mean as u64) > median * 2,
            "heavy tail: mean {mean} vs median {median}"
        );
    }

    #[test]
    #[should_panic(expected = "bad Pareto bounds")]
    fn pareto_rejects_inverted_bounds() {
        BoundedPareto::new(1.1, 10, 10);
    }

    #[test]
    fn exp_gap_mean() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| exp_gap_ms(&mut rng, 100.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((90.0..110.0).contains(&mean), "mean {mean}");
    }
}
