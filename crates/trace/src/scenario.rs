//! Adversarial and production-shaped workload **scenarios**.
//!
//! The paper's evaluation (and the stationary generators in
//! [`crate::generator`]) replays fixed-popularity traces; the sharing
//! protocol's weak spots — false hits, summary staleness, resync storms
//! — only show up under *non-stationary* load. A [`Scenario`] is a
//! composable, seeded, time-indexed workload program: a schedule of
//! [`ScenarioEvent`]s (client requests plus control actions like
//! rolling restarts and global evictions) that a driver replays against
//! a cluster. Two drivers exist:
//!
//! * the deterministic simnet (`sc-proxy`'s `simnet::run_scenario`)
//!   replays the schedule against N routed proxies under a seeded
//!   fault plan and renders the "good ruler" report;
//! * the trace-level hierarchy simulator (`sc-sim`'s `hierarchy`)
//!   consumes [`Scenario::to_trace`] to reproduce the filter effect in
//!   a two-level cache tree.
//!
//! **Composition and determinism.** A scenario is assembled from
//! [`Phase`]s. Each phase draws from its *own* rng, seeded from
//! `(scenario seed, phase index)`, so adding, removing or reordering a
//! phase never perturbs another phase's draws — the flash-crowd burst
//! lands on the same documents whether or not a churn phase rides
//! along. The final schedule is stably sorted by timestamp, so equal
//! stamps keep phase-insertion order. Same `(constructor, nodes, seed)`
//! → byte-identical schedule, always. Generators are clock- and
//! socket-free (sc-check rule 6 `sans_io` covers this module): virtual
//! time is data here, never `Instant`.

use crate::model::{render_url, Request, Trace, UrlId};
use crate::sampler::Zipf;
use sc_util::Rng;

/// Virtual-time stamp in microseconds from scenario start (the simnet
/// clock domain).
pub type Micros = u64;

/// One scheduled scenario action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioEvent {
    /// When the action fires, in virtual microseconds from run start.
    pub at_us: Micros,
    /// What happens.
    pub kind: ScenarioKind,
}

/// The actions a scenario can schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioKind {
    /// A client of proxy `node` requests document `url` on `server`.
    Request {
        /// The proxy whose client issues the request.
        node: u32,
        /// Document identity.
        url: UrlId,
        /// Server-name component of the URL.
        server: u32,
    },
    /// Proxy `node` crashes: drops off the network and loses all state
    /// (it will come back with a fresh generation and an empty cache).
    Crash {
        /// The victim.
        node: u32,
    },
    /// Proxy `node` restarts after a [`ScenarioKind::Crash`].
    Restart {
        /// The returning proxy.
        node: u32,
    },
    /// Document `url` is evicted from every cache that holds it —
    /// while every summary keeps advertising it until the removal
    /// deltas propagate. This is the false-hit-storm trigger.
    EvictEverywhere {
        /// Document identity.
        url: UrlId,
        /// Server-name component of the URL.
        server: u32,
    },
}

impl ScenarioKind {
    /// The canonical URL string for request/eviction events (`None`
    /// for control events that carry no document).
    pub fn url_string(&self) -> Option<String> {
        match *self {
            ScenarioKind::Request { url, server, .. }
            | ScenarioKind::EvictEverywhere { url, server } => Some(render_url(server, url)),
            _ => None,
        }
    }
}

/// A composable, seeded, time-indexed workload program. Build one with
/// [`ScenarioBuilder`] or take a canned one from [`by_name`] /
/// the five constructors ([`flash_crowd`], [`diurnal_drift`],
/// [`peer_churn`], [`false_hit_storm`], [`two_level_hierarchy`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario name (report headers and JSON rows).
    pub name: String,
    /// Number of proxies the schedule addresses (nodes `0..nodes`).
    pub nodes: u32,
    /// Schedule horizon: every event fires strictly before this stamp
    /// (the driver's fault window must cover it).
    pub horizon_us: Micros,
    /// The schedule, stably sorted by `at_us`.
    pub events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// Number of client requests in the schedule.
    pub fn requests(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ScenarioKind::Request { .. }))
            .count() as u64
    }

    /// Render the request stream as a [`Trace`] for the trace-driven
    /// simulators (control events are dropped; hierarchies and the
    /// Section III schemes model neither crashes nor global
    /// evictions). Client ids equal node ids, so
    /// [`crate::group_of_client`] maps each request back onto its
    /// scenario node; sizes are a deterministic function of the
    /// document id; `last_modified` is fixed (scenarios measure
    /// sharing dynamics, not consistency).
    pub fn to_trace(&self) -> Trace {
        let requests = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                ScenarioKind::Request { node, url, server } => Some(Request {
                    time_ms: e.at_us / 1_000,
                    client: node,
                    url,
                    server,
                    size: doc_size(url),
                    last_modified: 0,
                }),
                _ => None,
            })
            .collect();
        Trace {
            name: self.name.clone(),
            groups: self.nodes,
            requests,
        }
    }
}

/// Deterministic synthetic body size for document `url`: 1 KiB floor
/// plus a hash-spread tail up to ≈ 64 KiB, so capacity planning in
/// trace-level runs sees heterogeneous (but reproducible) sizes.
pub fn doc_size(url: UrlId) -> u64 {
    1024 + (mix64(url) % (63 * 1024))
}

/// SplitMix64 finalizer — the same bit mixer the router uses for
/// fanout slots; here it decorrelates per-phase rng seeds and document
/// sizes from raw ids.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A workload component. Phases append events to the shared schedule;
/// each receives an rng seeded from `(scenario seed, phase index)` so
/// composition is stable (see the module docs).
pub trait Phase {
    /// Emit this component's events. `nodes` is the scenario's node
    /// count; timestamps must stay below the scenario horizon.
    fn emit(&self, rng: &mut Rng, nodes: u32, out: &mut Vec<ScenarioEvent>);
}

/// Assembles a [`Scenario`] from [`Phase`]s.
#[derive(Debug)]
pub struct ScenarioBuilder {
    name: String,
    nodes: u32,
    horizon_us: Micros,
    seed: u64,
    phase_idx: u64,
    events: Vec<ScenarioEvent>,
}

impl ScenarioBuilder {
    /// Start a scenario of `nodes` proxies spanning `horizon_us` of
    /// virtual time, with all phase rngs derived from `seed`.
    ///
    /// # Panics
    /// On a degenerate shape (`nodes == 0` or a zero horizon).
    pub fn new(name: &str, nodes: u32, horizon_us: Micros, seed: u64) -> ScenarioBuilder {
        assert!(nodes > 0, "a scenario needs at least one node");
        assert!(horizon_us > 0, "a scenario needs a horizon");
        ScenarioBuilder {
            name: name.to_string(),
            nodes,
            horizon_us,
            seed,
            phase_idx: 0,
            events: Vec::new(),
        }
    }

    /// Run `phase` with its own derived rng and absorb its events.
    pub fn phase(mut self, phase: &dyn Phase) -> ScenarioBuilder {
        let mut rng = Rng::seed_from_u64(self.seed ^ mix64(self.phase_idx + 1));
        self.phase_idx += 1;
        phase.emit(&mut rng, self.nodes, &mut self.events);
        self
    }

    /// Stably sort the schedule and seal it.
    ///
    /// # Panics
    /// If any event addresses a node `>= nodes` or fires at/after the
    /// horizon.
    pub fn build(mut self) -> Scenario {
        for e in &self.events {
            assert!(
                e.at_us < self.horizon_us,
                "event at {}us is outside the {}us horizon",
                e.at_us,
                self.horizon_us
            );
            let node = match e.kind {
                ScenarioKind::Request { node, .. }
                | ScenarioKind::Crash { node }
                | ScenarioKind::Restart { node } => Some(node),
                ScenarioKind::EvictEverywhere { .. } => None,
            };
            if let Some(node) = node {
                assert!(node < self.nodes, "event addresses node {node} of {}", self.nodes);
            }
        }
        // Stable: equal stamps keep phase-insertion order, which is
        // part of the determinism contract.
        self.events.sort_by_key(|e| e.at_us);
        Scenario {
            name: self.name,
            nodes: self.nodes,
            horizon_us: self.horizon_us,
            events: self.events,
        }
    }
}

// ---------------------------------------------------------------------
// Reusable phases.
// ---------------------------------------------------------------------

/// Zipf-popularity request stream over a document window, optionally
/// with **rank drift** (the diurnal model: every `period_us` the rank
/// permutation churns by `swaps` transpositions through
/// [`Zipf::permute_with`]'s canned [`Zipf::churn`] step).
#[derive(Debug, Clone)]
pub struct ZipfLoad {
    /// First request at/after this stamp.
    pub start_us: Micros,
    /// Requests stop strictly before this stamp.
    pub end_us: Micros,
    /// Requests to emit.
    pub requests: usize,
    /// Document universe: ids `doc_base .. doc_base + docs`.
    pub docs: usize,
    /// Offset of the universe (phases use disjoint bases to model
    /// disjoint content).
    pub doc_base: UrlId,
    /// Zipf exponent of document popularity.
    pub alpha: f64,
    /// URLs per server name (the paper's ≈10:1 clustering).
    pub urls_per_server: u32,
    /// Rank churn: `Some((period_us, swaps))` re-permutes the rank map
    /// every period; `None` keeps popularity stationary.
    pub drift: Option<(Micros, usize)>,
}

impl Phase for ZipfLoad {
    fn emit(&self, rng: &mut Rng, nodes: u32, out: &mut Vec<ScenarioEvent>) {
        assert!(self.start_us < self.end_us, "empty load window");
        assert!(self.docs > 0 && self.urls_per_server > 0);
        let mut stamps: Vec<Micros> = (0..self.requests)
            .map(|_| rng.gen_range(self.start_us..self.end_us))
            .collect();
        stamps.sort_unstable();
        let mut zipf = Zipf::new(self.docs, self.alpha);
        let mut next_churn = self.drift.map(|(period, _)| self.start_us + period);
        for at_us in stamps {
            if let (Some((period, swaps)), Some(due)) = (self.drift, next_churn) {
                if at_us >= due {
                    // Catch up churn periods the stamp skipped over, so
                    // drift speed is wall-clock, not request-rate.
                    let mut due = due;
                    while at_us >= due {
                        zipf.churn(rng, swaps);
                        due += period;
                    }
                    next_churn = Some(due);
                }
            }
            let doc = zipf.sample_item(rng) as UrlId;
            let node = rng.gen_range(0..nodes);
            out.push(ScenarioEvent {
                at_us,
                kind: request_for(node, self.doc_base, doc, self.urls_per_server),
            });
        }
    }
}

/// A sudden hot-object surge: a burst of requests concentrated on a
/// small, previously-cold document set, from every node at once.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// Surge onset.
    pub at_us: Micros,
    /// Surge length.
    pub duration_us: Micros,
    /// Requests in the surge.
    pub requests: usize,
    /// How many documents go hot.
    pub hot_docs: usize,
    /// Id base of the hot set (disjoint from background bases).
    pub doc_base: UrlId,
    /// URLs per server name.
    pub urls_per_server: u32,
}

impl Phase for FlashCrowd {
    fn emit(&self, rng: &mut Rng, nodes: u32, out: &mut Vec<ScenarioEvent>) {
        assert!(self.hot_docs > 0 && self.duration_us > 0);
        // Hot objects follow a steep law — everyone wants *the* story,
        // a few want the sidebar links.
        let zipf = Zipf::new(self.hot_docs, 1.2);
        for _ in 0..self.requests {
            let at_us = self.at_us + rng.gen_range(0..self.duration_us);
            let doc = zipf.sample_item(rng) as UrlId;
            let node = rng.gen_range(0..nodes);
            out.push(ScenarioEvent {
                at_us,
                kind: request_for(node, self.doc_base, doc, self.urls_per_server),
            });
        }
    }
}

/// Rolling restarts: nodes `0..victims` crash one after another,
/// `every_us` apart, each returning `down_us` later with a fresh
/// generation and an empty cache (the PR-8 recovery-resync path, at
/// scenario scale).
#[derive(Debug, Clone)]
pub struct RollingRestarts {
    /// First crash stamp.
    pub start_us: Micros,
    /// Gap between consecutive crashes.
    pub every_us: Micros,
    /// Downtime of each victim.
    pub down_us: Micros,
    /// How many nodes to roll (`0..victims`, wrapping is a bug —
    /// keep it ≤ the scenario's node count).
    pub victims: u32,
}

impl Phase for RollingRestarts {
    fn emit(&self, _rng: &mut Rng, nodes: u32, out: &mut Vec<ScenarioEvent>) {
        assert!(self.victims <= nodes, "more victims than nodes");
        assert!(self.victims < nodes, "leave at least one node standing");
        for i in 0..self.victims {
            let crash_at = self.start_us + i as u64 * self.every_us;
            out.push(ScenarioEvent {
                at_us: crash_at,
                kind: ScenarioKind::Crash { node: i },
            });
            out.push(ScenarioEvent {
                at_us: crash_at + self.down_us,
                kind: ScenarioKind::Restart { node: i },
            });
        }
    }
}

/// Requests that pull a document set into **every** node's cache (each
/// node fetches each document once), staggered a millisecond apart so
/// summary updates interleave naturally. Preparation for
/// [`EvictStorm`].
#[derive(Debug, Clone)]
pub struct SeedEverywhere {
    /// First request stamp.
    pub at_us: Micros,
    /// The document set: ids `doc_base .. doc_base + docs`.
    pub docs: usize,
    /// Id base of the set.
    pub doc_base: UrlId,
    /// URLs per server name.
    pub urls_per_server: u32,
}

impl Phase for SeedEverywhere {
    fn emit(&self, _rng: &mut Rng, nodes: u32, out: &mut Vec<ScenarioEvent>) {
        let mut at_us = self.at_us;
        for doc in 0..self.docs as UrlId {
            for node in 0..nodes {
                out.push(ScenarioEvent {
                    at_us,
                    kind: request_for(node, self.doc_base, doc, self.urls_per_server),
                });
                at_us += 1_000;
            }
        }
    }
}

/// The false-hit-storm trigger: every document in the set is evicted
/// from every cache at once, while every summary replica keeps
/// advertising it until the removal deltas (or a resync) propagate.
#[derive(Debug, Clone)]
pub struct EvictStorm {
    /// Eviction stamp.
    pub at_us: Micros,
    /// The document set: ids `doc_base .. doc_base + docs`.
    pub docs: usize,
    /// Id base of the set.
    pub doc_base: UrlId,
    /// URLs per server name.
    pub urls_per_server: u32,
}

impl Phase for EvictStorm {
    fn emit(&self, _rng: &mut Rng, _nodes: u32, out: &mut Vec<ScenarioEvent>) {
        for doc in 0..self.docs as UrlId {
            let url = self.doc_base + doc;
            out.push(ScenarioEvent {
                at_us: self.at_us,
                kind: ScenarioKind::EvictEverywhere {
                    url,
                    server: server_for(self.doc_base, doc, self.urls_per_server),
                },
            });
        }
    }
}

fn request_for(node: u32, doc_base: UrlId, doc: UrlId, urls_per_server: u32) -> ScenarioKind {
    ScenarioKind::Request {
        node,
        url: doc_base + doc,
        server: server_for(doc_base, doc, urls_per_server),
    }
}

/// Server id for document `doc_base + doc`: consecutive ids share a
/// server, and the base is folded in so disjoint document spaces land
/// on disjoint servers.
fn server_for(doc_base: UrlId, doc: UrlId, urls_per_server: u32) -> u32 {
    ((doc_base / urls_per_server as u64) + doc / urls_per_server as u64) as u32
}

// ---------------------------------------------------------------------
// The five canned scenarios.
// ---------------------------------------------------------------------

/// Virtual horizon shared by the canned scenarios: 2 s, matching the
/// simnet's default fault window.
pub const CANNED_HORIZON_US: Micros = 2_000_000;

/// **Flash crowd**: a steady Zipf background, then at 800 ms a
/// previously-cold 8-document set takes a surge of concentrated
/// requests for 600 ms. Measures how fast the cluster absorbs a hot
/// set (hit ratio dips then recovers; remote-hit share spikes while
/// exactly one copy exists).
pub fn flash_crowd(nodes: u32, seed: u64) -> Scenario {
    ScenarioBuilder::new("flash-crowd", nodes, CANNED_HORIZON_US, seed)
        .phase(&ZipfLoad {
            start_us: 0,
            end_us: CANNED_HORIZON_US,
            requests: 1_200,
            docs: 400,
            doc_base: 0,
            alpha: 0.8,
            urls_per_server: 12,
            drift: None,
        })
        .phase(&FlashCrowd {
            at_us: 800_000,
            duration_us: 600_000,
            requests: 900,
            hot_docs: 8,
            doc_base: 1_000_000,
            urls_per_server: 4,
        })
        .build()
}

/// **Diurnal drift**: one Zipf stream whose rank permutation churns
/// every 250 ms (an eighth of the document space swaps popularity each
/// period) — the "morning news, evening sports" popularity rotation.
/// Measures how staleness and false hits track rank churn.
pub fn diurnal_drift(nodes: u32, seed: u64) -> Scenario {
    ScenarioBuilder::new("diurnal-drift", nodes, CANNED_HORIZON_US, seed)
        .phase(&ZipfLoad {
            start_us: 0,
            end_us: CANNED_HORIZON_US,
            requests: 2_000,
            docs: 480,
            doc_base: 0,
            alpha: 0.8,
            urls_per_server: 12,
            drift: Some((250_000, 60)),
        })
        .build()
}

/// **Peer churn at scale**: a steady stream while a quarter of the
/// mesh rolls through crash+restart, 60 ms down each, 80 ms apart —
/// rolling restarts over the PR-8 update lanes. Measures recovery
/// resyncs and whether convergence survives overlapping churn.
pub fn peer_churn(nodes: u32, seed: u64) -> Scenario {
    let victims = (nodes / 4).max(1).min(nodes - 1);
    ScenarioBuilder::new("peer-churn", nodes, CANNED_HORIZON_US, seed)
        .phase(&ZipfLoad {
            start_us: 0,
            end_us: CANNED_HORIZON_US,
            requests: 1_600,
            docs: 400,
            doc_base: 0,
            alpha: 0.8,
            urls_per_server: 12,
            drift: None,
        })
        .phase(&RollingRestarts {
            start_us: 200_000,
            every_us: 80_000,
            down_us: 60_000,
            victims,
        })
        .build()
}

/// **False-hit storm**: a 6-document set is pulled into *every* cache,
/// then at 900 ms evicted from *every* cache at once — while each
/// node's summary replicas still advertise all of it everywhere. A
/// probe stream keeps requesting the set; until removal deltas (or
/// resyncs) propagate, every probe that trusts a summary takes a false
/// hit. Measures the staleness window and that quiescence clears every
/// advertised-but-evicted URL (the PR-8 lost-recovery loop).
pub fn false_hit_storm(nodes: u32, seed: u64) -> Scenario {
    const STORM_BASE: UrlId = 2_000_000;
    const STORM_DOCS: usize = 6;
    ScenarioBuilder::new("false-hit-storm", nodes, CANNED_HORIZON_US, seed)
        // Background keeps caches churning (and lanes busy).
        .phase(&ZipfLoad {
            start_us: 0,
            end_us: CANNED_HORIZON_US,
            requests: 900,
            docs: 320,
            doc_base: 0,
            alpha: 0.8,
            urls_per_server: 12,
            drift: None,
        })
        .phase(&SeedEverywhere {
            at_us: 100_000,
            docs: STORM_DOCS,
            doc_base: STORM_BASE,
            urls_per_server: 3,
        })
        .phase(&EvictStorm {
            at_us: 900_000,
            docs: STORM_DOCS,
            doc_base: STORM_BASE,
            urls_per_server: 3,
        })
        // The probe stream: near-uniform requests across the storm set
        // after the eviction.
        .phase(&ZipfLoad {
            start_us: 950_000,
            end_us: CANNED_HORIZON_US,
            requests: 600,
            docs: STORM_DOCS,
            doc_base: STORM_BASE,
            alpha: 0.2,
            urls_per_server: 3,
            drift: None,
        })
        .build()
}

/// **Two-level hierarchy** workload: drift plus a flash crowd, meant
/// for [`Scenario::to_trace`] and the `sc-sim` hierarchy simulator —
/// the child tier absorbs the recency the paper's filter effect says
/// never reaches the parent. `nodes` is the child (group) count.
pub fn two_level_hierarchy(nodes: u32, seed: u64) -> Scenario {
    ScenarioBuilder::new("two-level-hierarchy", nodes, CANNED_HORIZON_US, seed)
        .phase(&ZipfLoad {
            start_us: 0,
            end_us: CANNED_HORIZON_US,
            requests: 2_400,
            docs: 600,
            doc_base: 0,
            alpha: 0.8,
            urls_per_server: 12,
            drift: Some((500_000, 75)),
        })
        .phase(&FlashCrowd {
            at_us: 1_200_000,
            duration_us: 400_000,
            requests: 600,
            hot_docs: 6,
            doc_base: 3_000_000,
            urls_per_server: 3,
        })
        .build()
}

/// Names of the five canned scenarios, in presentation order.
pub fn scenario_names() -> [&'static str; 5] {
    [
        "flash-crowd",
        "diurnal-drift",
        "peer-churn",
        "false-hit-storm",
        "two-level-hierarchy",
    ]
}

/// Look a canned scenario up by its [`scenario_names`] entry.
pub fn by_name(name: &str, nodes: u32, seed: u64) -> Option<Scenario> {
    Some(match name {
        "flash-crowd" => flash_crowd(nodes, seed),
        "diurnal-drift" => diurnal_drift(nodes, seed),
        "peer-churn" => peer_churn(nodes, seed),
        "false-hit-storm" => false_hit_storm(nodes, seed),
        "two-level-hierarchy" => two_level_hierarchy(nodes, seed),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        for name in scenario_names() {
            let a = by_name(name, 8, 7).unwrap();
            let b = by_name(name, 8, 7).unwrap();
            assert_eq!(a, b, "{name}: same seed, same schedule");
            let c = by_name(name, 8, 8).unwrap();
            assert_ne!(a, c, "{name}: different seed moved the schedule");
        }
    }

    #[test]
    fn schedules_are_sorted_and_inside_the_horizon() {
        for name in scenario_names() {
            let s = by_name(name, 8, 3).unwrap();
            assert!(s.events.windows(2).all(|w| w[0].at_us <= w[1].at_us), "{name} sorted");
            assert!(s.events.iter().all(|e| e.at_us < s.horizon_us), "{name} in horizon");
            assert!(s.requests() > 0, "{name} carries requests");
        }
    }

    #[test]
    fn composition_is_stable_adding_a_phase_never_moves_existing_draws() {
        let background = ZipfLoad {
            start_us: 0,
            end_us: 1_000_000,
            requests: 200,
            docs: 100,
            doc_base: 0,
            alpha: 0.8,
            urls_per_server: 12,
            drift: None,
        };
        let alone = ScenarioBuilder::new("solo", 4, 1_000_000, 9)
            .phase(&background)
            .build();
        let with_crowd = ScenarioBuilder::new("duo", 4, 1_000_000, 9)
            .phase(&background)
            .phase(&FlashCrowd {
                at_us: 500_000,
                duration_us: 100_000,
                requests: 50,
                hot_docs: 4,
                doc_base: 1_000_000,
                urls_per_server: 4,
            })
            .build();
        // Every background event survives unchanged in the composite.
        let crowd_free: Vec<&ScenarioEvent> = with_crowd
            .events
            .iter()
            .filter(|e| matches!(e.kind, ScenarioKind::Request { url, .. } if url < 1_000_000))
            .collect();
        assert_eq!(crowd_free.len(), alone.events.len());
        for (a, b) in alone.events.iter().zip(crowd_free) {
            assert_eq!(a, b, "background draw moved when the crowd phase was added");
        }
    }

    #[test]
    fn drift_actually_churns_the_popular_set() {
        let s = diurnal_drift(4, 5);
        // Compare the top documents of the first and last quarters.
        let quarter = s.horizon_us / 4;
        let top_of = |lo: Micros, hi: Micros| -> Vec<UrlId> {
            let mut counts = std::collections::HashMap::new();
            for e in &s.events {
                if let ScenarioKind::Request { url, .. } = e.kind {
                    if e.at_us >= lo && e.at_us < hi {
                        *counts.entry(url).or_insert(0u32) += 1;
                    }
                }
            }
            let mut v: Vec<(UrlId, u32)> = counts.into_iter().collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            v.into_iter().take(10).map(|(u, _)| u).collect()
        };
        let early = top_of(0, quarter);
        let late = top_of(3 * quarter, s.horizon_us);
        assert_ne!(early, late, "rank churn must move the head of the law");
    }

    #[test]
    fn storm_evicts_exactly_the_seeded_set() {
        let s = false_hit_storm(4, 1);
        let seeded: std::collections::BTreeSet<UrlId> = s
            .events
            .iter()
            .filter_map(|e| match e.kind {
                ScenarioKind::Request { url, .. } if url >= 2_000_000 => Some(url),
                _ => None,
            })
            .collect();
        let evicted: std::collections::BTreeSet<UrlId> = s
            .events
            .iter()
            .filter_map(|e| match e.kind {
                ScenarioKind::EvictEverywhere { url, .. } => Some(url),
                _ => None,
            })
            .collect();
        assert_eq!(evicted.len(), 6);
        assert!(evicted.is_subset(&seeded), "storm only evicts what it seeded");
    }

    #[test]
    fn churn_rolls_distinct_nodes_and_always_restarts() {
        let s = peer_churn(64, 2);
        let mut crashed = Vec::new();
        let mut restarted = Vec::new();
        for e in &s.events {
            match e.kind {
                ScenarioKind::Crash { node } => crashed.push(node),
                ScenarioKind::Restart { node } => restarted.push(node),
                _ => {}
            }
        }
        assert_eq!(crashed.len(), 16, "a quarter of 64 rolls");
        assert_eq!(crashed, restarted, "every crash has its restart, in order");
        let distinct: std::collections::BTreeSet<u32> = crashed.iter().copied().collect();
        assert_eq!(distinct.len(), crashed.len(), "rolling, not repeating");
    }

    #[test]
    fn to_trace_keeps_request_order_and_node_mapping() {
        let s = two_level_hierarchy(4, 11);
        let t = s.to_trace();
        assert_eq!(t.groups, 4);
        assert_eq!(t.len() as u64, s.requests());
        assert!(t.requests.windows(2).all(|w| w[0].time_ms <= w[1].time_ms));
        for r in &t.requests {
            assert_eq!(crate::group_of_client(r.client, 4), r.client % 4);
            assert_eq!(r.size, doc_size(r.url), "size is a pure function of the id");
        }
    }

    #[test]
    fn builder_rejects_events_outside_the_horizon() {
        struct Late;
        impl Phase for Late {
            fn emit(&self, _r: &mut Rng, _n: u32, out: &mut Vec<ScenarioEvent>) {
                out.push(ScenarioEvent {
                    at_us: 5_000_000,
                    kind: ScenarioKind::Crash { node: 0 },
                });
            }
        }
        let b = ScenarioBuilder::new("late", 2, 1_000_000, 0).phase(&Late);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.build())).is_err());
    }
}
