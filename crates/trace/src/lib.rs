#![warn(missing_docs)]

//! Workload substrate: the request-trace model and calibrated synthetic
//! trace generators.
//!
//! The paper evaluates on five proprietary HTTP proxy traces (DEC, UCB,
//! UPisa, Questnet, NLANR — Table I). Those traces are long gone, so this
//! crate provides the closest synthetic equivalent: a generator with
//! Zipf-like document popularity, bounded-Pareto body sizes (the heavy
//! tail the Wisconsin Proxy Benchmark uses, α = 1.1), an LRU-stack
//! temporal-locality model, heterogeneous client activity, and a
//! document-modification process that produces stale hits. Five
//! [`profiles`] mirror the *shape* of Table I (group counts, scale
//! ratios); absolute numbers are scaled down to laptop size.
//!
//! Everything is seeded and deterministic: the same profile always yields
//! byte-identical traces, so every experiment in the repository is exactly
//! reproducible.

pub mod analysis;
pub mod generator;
pub mod io;
pub mod model;
pub mod partition;
pub mod profiles;
pub mod sampler;
pub mod scenario;
pub mod squid;
pub mod stats;

pub use generator::{GeneratorConfig, TraceGenerator};
pub use model::{Request, Trace, UrlId};
pub use partition::{group_of_client, split_by_group};
pub use profiles::{profile, profile_names, TraceProfile};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioEvent, ScenarioKind};
pub use stats::TraceStats;
