//! Workload analysis: measure the properties the generator claims.
//!
//! The fidelity of every simulation rests on the synthetic traces
//! actually exhibiting the structure real web workloads have. This
//! module quantifies it:
//!
//! * [`popularity_exponent`] — the Zipf α fitted to the observed
//!   document reference counts (web traces: ≈0.6–0.9);
//! * [`overlap_matrix`] / [`sharing_potential`] — how much of one proxy
//!   group's document set other groups also touch, which is what cache
//!   sharing monetizes (Section III);
//! * [`stack_distance_profile`] — the LRU stack-distance distribution,
//!   the standard temporal-locality measure behind the paper's
//!   benchmark;
//! * [`size_percentiles`] — the document-size tail.

use crate::model::Trace;
use std::collections::{HashMap, HashSet};

/// Fit a Zipf exponent to the reference counts by least squares on the
/// log-log rank-frequency curve (the standard estimator for web
/// popularity). Returns `None` for traces with fewer than 10 distinct
/// documents.
pub fn popularity_exponent(trace: &Trace) -> Option<f64> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for r in &trace.requests {
        *counts.entry(r.url).or_default() += 1;
    }
    if counts.len() < 10 {
        return None;
    }
    let mut freqs: Vec<u64> = counts.into_values().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    // Fit log f = c - alpha log rank over the head (ranks 1..=N/2 with
    // freq > 1; singleton tail flattens any fit).
    let pts: Vec<(f64, f64)> = freqs
        .iter()
        .enumerate()
        .take(freqs.len() / 2)
        .filter(|(_, &f)| f > 1)
        .map(|(i, &f)| (((i + 1) as f64).ln(), (f as f64).ln()))
        .collect();
    if pts.len() < 5 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(-slope)
}

/// For each ordered pair of proxy groups `(a, b)`, the fraction of
/// group `a`'s distinct documents that group `b` also references.
pub fn overlap_matrix(trace: &Trace) -> Vec<Vec<f64>> {
    let g = trace.groups as usize;
    let mut docs: Vec<HashSet<u64>> = vec![HashSet::new(); g];
    for r in &trace.requests {
        docs[(r.client % trace.groups) as usize].insert(r.url);
    }
    (0..g)
        .map(|a| {
            (0..g)
                .map(|b| {
                    if a == b || docs[a].is_empty() {
                        return if a == b { 1.0 } else { 0.0 };
                    }
                    docs[a].intersection(&docs[b]).count() as f64 / docs[a].len() as f64
                })
                .collect()
        })
        .collect()
}

/// The fraction of requests that reference a document some *other*
/// group references anywhere in the trace — an upper bound on what
/// remote hits could ever deliver.
pub fn sharing_potential(trace: &Trace) -> f64 {
    let mut groups_of: HashMap<u64, HashSet<u32>> = HashMap::new();
    for r in &trace.requests {
        groups_of
            .entry(r.url)
            .or_default()
            .insert(r.client % trace.groups);
    }
    let shared: u64 = trace
        .requests
        .iter()
        .filter(|r| groups_of[&r.url].len() > 1)
        .count() as u64;
    shared as f64 / trace.requests.len().max(1) as f64
}

/// LRU stack-distance distribution: for each re-reference, the number
/// of distinct documents touched since the previous reference. Returns
/// the given percentiles (cold misses excluded).
pub fn stack_distance_profile(trace: &Trace, percentiles: &[f64]) -> Vec<u64> {
    // O(n log n) stack distances via a BIT over last-access positions.
    let n = trace.requests.len();
    let mut bit = vec![0i64; n + 1];
    let add = |bit: &mut Vec<i64>, mut i: usize, v: i64| {
        i += 1;
        while i <= n {
            bit[i] += v;
            i += i & i.wrapping_neg();
        }
    };
    let sum = |bit: &Vec<i64>, mut i: usize| -> i64 {
        let mut s = 0;
        i += 1;
        let mut j = i.min(n);
        while j > 0 {
            s += bit[j];
            j -= j & j.wrapping_neg();
        }
        s
    };
    let mut last: HashMap<u64, usize> = HashMap::new();
    let mut distances: Vec<u64> = Vec::new();
    for (pos, r) in trace.requests.iter().enumerate() {
        if let Some(&prev) = last.get(&r.url) {
            // Distinct docs accessed in (prev, pos) = docs whose last
            // access lies in that window.
            let d = sum(&bit, pos.saturating_sub(1)) - sum(&bit, prev);
            distances.push(d.max(0) as u64);
            add(&mut bit, prev, -1);
        }
        add(&mut bit, pos, 1);
        last.insert(r.url, pos);
    }
    distances.sort_unstable();
    percentiles
        .iter()
        .map(|&p| {
            if distances.is_empty() {
                0
            } else {
                let idx = ((p * distances.len() as f64) as usize).min(distances.len() - 1);
                distances[idx]
            }
        })
        .collect()
}

/// Document-size percentiles over distinct documents.
pub fn size_percentiles(trace: &Trace, percentiles: &[f64]) -> Vec<u64> {
    let mut sizes: Vec<u64> = {
        let mut seen: HashMap<u64, u64> = HashMap::new();
        for r in &trace.requests {
            seen.entry(r.url).or_insert(r.size);
        }
        seen.into_values().collect()
    };
    sizes.sort_unstable();
    percentiles
        .iter()
        .map(|&p| {
            if sizes.is_empty() {
                0
            } else {
                sizes[((p * sizes.len() as f64) as usize).min(sizes.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Request;
    use crate::profiles::profile;

    fn req(client: u32, url: u64, t: u64) -> Request {
        Request {
            time_ms: t,
            client,
            url,
            server: 0,
            size: 100,
            last_modified: 0,
        }
    }

    #[test]
    fn popularity_fit_recovers_generator_alpha() {
        let p = profile("UPisa").unwrap();
        let trace = p.generate_scaled(10);
        let alpha = popularity_exponent(&trace).expect("enough documents");
        // The effective exponent folds in the recency/burst processes,
        // so allow a band around the configured 0.82.
        assert!(
            (0.5..1.3).contains(&alpha),
            "fitted alpha {alpha} far from configured {}",
            p.config.zipf_alpha
        );
    }

    #[test]
    fn overlap_and_sharing_potential() {
        // Two groups; doc 1 shared, docs 2/3 private.
        let trace = Trace {
            name: "t".into(),
            groups: 2,
            requests: vec![
                req(0, 1, 0),
                req(1, 1, 1),
                req(0, 2, 2),
                req(1, 3, 3),
            ],
        };
        let m = overlap_matrix(&trace);
        assert_eq!(m[0][0], 1.0);
        assert!((m[0][1] - 0.5).abs() < 1e-9, "group0: 1 of 2 docs shared");
        assert!((m[1][0] - 0.5).abs() < 1e-9);
        assert!((sharing_potential(&trace) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn profile_traces_have_real_sharing_potential() {
        let trace = profile("UPisa").unwrap().generate_scaled(20);
        let p = sharing_potential(&trace);
        assert!(
            (0.2..0.95).contains(&p),
            "sharing potential {p} out of band — cache sharing would be pointless"
        );
    }

    #[test]
    fn stack_distances_reflect_locality() {
        // A A B A: distances are 0 (A->A) and 1 (A after B).
        let trace = Trace {
            name: "t".into(),
            groups: 1,
            requests: vec![req(0, 1, 0), req(0, 1, 1), req(0, 2, 2), req(0, 1, 3)],
        };
        let d = stack_distance_profile(&trace, &[0.0, 0.99]);
        assert_eq!(d, vec![0, 1]);
    }

    #[test]
    fn stack_distance_median_is_small_on_profiles() {
        let trace = profile("UPisa").unwrap().generate_scaled(20);
        let d = stack_distance_profile(&trace, &[0.5, 0.9]);
        let distinct: std::collections::HashSet<u64> =
            trace.requests.iter().map(|r| r.url).collect();
        assert!(
            (d[0] as usize) < distinct.len() / 4,
            "median stack distance {} vs {} docs — no temporal locality",
            d[0],
            distinct.len()
        );
        assert!(d[1] > d[0], "percentiles ordered");
    }

    #[test]
    fn size_tail_is_heavy() {
        let trace = profile("DEC").unwrap().generate_scaled(20);
        let p = size_percentiles(&trace, &[0.5, 0.99]);
        assert!(p[1] > p[0] * 10, "p99 {} should dwarf median {}", p[1], p[0]);
    }

    #[test]
    fn degenerate_traces_are_handled() {
        let tiny = Trace {
            name: "t".into(),
            groups: 1,
            requests: vec![req(0, 1, 0)],
        };
        assert_eq!(popularity_exponent(&tiny), None);
        assert_eq!(stack_distance_profile(&tiny, &[0.5]), vec![0]);
        assert_eq!(sharing_potential(&tiny), 0.0);
    }
}
