//! Import real Squid access logs.
//!
//! The synthetic profiles stand in for the paper's lost traces, but the
//! tooling should work on *your* traces too. This parses Squid's native
//! `access.log` format — the same software lineage as the paper's
//! prototype — into a [`Trace`]:
//!
//! ```text
//! timestamp elapsed client action/code size method URL ident hierarchy/host content-type
//! 1066036869.123   445 10.0.0.1 TCP_MISS/200 8192 GET http://example.com/x - DIRECT/1.2.3.4 text/html
//! ```
//!
//! Fields the model needs and how they map:
//!
//! * `timestamp` (seconds.millis) → `time_ms`;
//! * `client` (IP or id) → a dense client id, in order of appearance;
//! * `URL` → a dense document id (per distinct URL) and its server
//!   component (the host part);
//! * `size` → body size;
//! * `last_modified` is not in the access log; like the paper's
//!   consistency model we approximate it: a size *change* for a URL is
//!   treated as a modification (version bump).
//!
//! Non-GET methods and aborted transfers (`size == 0`) are skipped, as
//! in the paper's methodology.

use crate::model::{Request, Trace};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};

/// Errors importing a Squid log.
#[derive(Debug)]
pub enum SquidError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for SquidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SquidError::Io(e) => write!(f, "I/O error: {e}"),
            SquidError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for SquidError {}

impl From<std::io::Error> for SquidError {
    fn from(e: std::io::Error) -> Self {
        SquidError::Io(e)
    }
}

/// Import statistics alongside the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Lines read.
    pub lines: usize,
    /// Requests imported.
    pub imported: usize,
    /// Skipped: non-GET method.
    pub skipped_method: usize,
    /// Skipped: zero-size (aborted) transfers.
    pub skipped_empty: usize,
}

/// Parse a Squid native access log into a trace partitioned for
/// `groups` proxies.
pub fn load_squid_log<R: Read>(r: R, name: &str, groups: u32) -> Result<(Trace, ImportStats), SquidError> {
    assert!(groups > 0);
    let mut stats = ImportStats::default();
    let mut clients: HashMap<String, u32> = HashMap::new();
    let mut urls: HashMap<String, u64> = HashMap::new();
    let mut servers: HashMap<String, u32> = HashMap::new();
    // URL -> (last size seen, version) for the modification heuristic.
    let mut versions: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut requests = Vec::new();
    let mut t0: Option<u64> = None;

    for (i, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        stats.lines += 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 7 {
            return Err(SquidError::Parse {
                line: i + 1,
                message: format!("expected >=7 fields, got {}", fields.len()),
            });
        }
        let ts: f64 = fields[0].parse().map_err(|_| SquidError::Parse {
            line: i + 1,
            message: format!("bad timestamp {:?}", fields[0]),
        })?;
        let client_key = fields[2];
        let size: u64 = fields[4].parse().map_err(|_| SquidError::Parse {
            line: i + 1,
            message: format!("bad size {:?}", fields[4]),
        })?;
        let method = fields[5];
        let url_str = fields[6];

        if method != "GET" {
            stats.skipped_method += 1;
            continue;
        }
        if size == 0 {
            stats.skipped_empty += 1;
            continue;
        }

        let time_ms = (ts * 1000.0) as u64;
        let t0 = *t0.get_or_insert(time_ms);

        let next_client = clients.len() as u32;
        let client = *clients.entry(client_key.to_string()).or_insert(next_client);
        let next_url = urls.len() as u64;
        let url = *urls.entry(url_str.to_string()).or_insert(next_url);
        let host = host_of(url_str).to_string();
        let next_server = servers.len() as u32;
        let server = *servers.entry(host).or_insert(next_server);

        // Modification heuristic: size change bumps the version.
        let (last_size, version) = versions.entry(url).or_insert((size, 0));
        if *last_size != size {
            *last_size = size;
            *version += 1;
        }
        let last_modified = *version;

        requests.push(Request {
            time_ms: time_ms.saturating_sub(t0),
            client,
            url,
            server,
            size,
            last_modified,
        });
        stats.imported += 1;
    }
    // Access logs can interleave slightly out of order (completion
    // times); the simulators need monotone time.
    requests.sort_by_key(|r| r.time_ms);
    Ok((
        Trace {
            name: name.to_string(),
            groups,
            requests,
        },
        stats,
    ))
}

/// The host component of a URL (for server-name summaries).
fn host_of(url: &str) -> &str {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))
        .unwrap_or(url);
    let end = rest.find(['/', ':']).unwrap_or(rest.len());
    &rest[..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
1066036869.123   445 10.0.0.1 TCP_MISS/200 8192 GET http://example.com/a.html - DIRECT/1.2.3.4 text/html
1066036870.456    12 10.0.0.2 TCP_HIT/200 8192 GET http://example.com/a.html - NONE/- text/html
1066036871.789   300 10.0.0.1 TCP_MISS/200 512 GET http://other.org:8080/b.gif - DIRECT/5.6.7.8 image/gif
1066036872.000   100 10.0.0.1 TCP_MISS/200 999 POST http://example.com/form - DIRECT/1.2.3.4 text/html
1066036873.000    50 10.0.0.3 TCP_MISS/000 0 GET http://example.com/abort - DIRECT/1.2.3.4 -
1066036874.500    80 10.0.0.2 TCP_REFRESH_MISS/200 9000 GET http://example.com/a.html - DIRECT/1.2.3.4 text/html
";

    #[test]
    fn parses_the_standard_format() {
        let (trace, stats) = load_squid_log(SAMPLE.as_bytes(), "sample", 2).unwrap();
        assert_eq!(stats.lines, 6);
        assert_eq!(stats.imported, 4);
        assert_eq!(stats.skipped_method, 1, "POST dropped");
        assert_eq!(stats.skipped_empty, 1, "aborted transfer dropped");
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.groups, 2);

        let r0 = &trace.requests[0];
        assert_eq!(r0.time_ms, 0, "times rebased to trace start");
        assert_eq!(r0.size, 8192);
        // Same URL from two clients: same doc id, distinct clients.
        let r1 = &trace.requests[1];
        assert_eq!(r1.url, r0.url);
        assert_ne!(r1.client, r0.client);
        assert_eq!(r1.time_ms, 1333);
        // Different host (with port stripped) gets a distinct server.
        let r2 = &trace.requests[2];
        assert_ne!(r2.server, r0.server);
    }

    #[test]
    fn size_change_is_a_modification() {
        let (trace, _) = load_squid_log(SAMPLE.as_bytes(), "s", 2).unwrap();
        let a: Vec<&Request> = trace
            .requests
            .iter()
            .filter(|r| r.url == trace.requests[0].url)
            .collect();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].last_modified, 0);
        assert_eq!(a[1].last_modified, 0, "same size, same version");
        assert_eq!(a[2].last_modified, 1, "9000 != 8192 bumps the version");
    }

    #[test]
    fn host_extraction() {
        assert_eq!(host_of("http://a.b.c/d/e"), "a.b.c");
        assert_eq!(host_of("https://a.b.c:8080/d"), "a.b.c");
        assert_eq!(host_of("http://bare-host"), "bare-host");
        assert_eq!(host_of("ftp-ish-no-scheme/path"), "ftp-ish-no-scheme");
    }

    #[test]
    fn rejects_short_lines_with_position() {
        let bad = "1066036869.1 445 c TCP_MISS/200 10\n";
        match load_squid_log(bad.as_bytes(), "x", 1) {
            Err(SquidError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let log = format!("# a comment\n\n{SAMPLE}");
        let (trace, stats) = load_squid_log(log.as_bytes(), "s", 4).unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(stats.lines, 8);
    }

    #[test]
    fn imported_trace_runs_through_the_simulator() {
        // End-to-end smoke: the imported trace feeds TraceStats.
        let (trace, _) = load_squid_log(SAMPLE.as_bytes(), "s", 2).unwrap();
        let s = crate::TraceStats::compute(&trace);
        assert_eq!(s.requests, 4);
        assert_eq!(s.unique_documents, 2);
        assert!(s.max_hit_ratio > 0.0, "the repeat GET is a hit");
    }
}
