//! The request-trace data model.


/// A document identity. Synthetic traces use dense integer ids; the live
/// proxy renders them as URLs with [`Request::url_string`].
pub type UrlId = u64;

/// One HTTP GET in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Trace time in milliseconds since trace start.
    pub time_ms: u64,
    /// Client identity (partitioned onto proxies by [`crate::group_of_client`]).
    pub client: u32,
    /// Document identity.
    pub url: UrlId,
    /// Server-name component of the URL (the paper's server-name summary
    /// representation groups documents by this).
    pub server: u32,
    /// Body size in bytes of the *current* version.
    pub size: u64,
    /// Last-modified stamp of the current version; a change between
    /// requests makes a cached copy stale.
    pub last_modified: u64,
}

sc_json::json_struct!(Request {
    time_ms,
    client,
    url,
    server,
    size,
    last_modified
});

impl Request {
    /// Render the canonical URL string used by the live proxy and by
    /// MD5-based summaries. One id ↔ one URL, stable across runs.
    pub fn url_string(&self) -> String {
        render_url(self.server, self.url)
    }
}

/// Canonical URL text for a `(server, url-id)` pair.
pub fn render_url(server: u32, url: UrlId) -> String {
    format!("http://server-{server}.trace.invalid/doc/{url}")
}

/// Extract `(server, url)` back out of a canonical URL string.
/// Returns `None` for URLs this crate didn't generate.
pub fn parse_url(url: &str) -> Option<(u32, UrlId)> {
    let rest = url.strip_prefix("http://server-")?;
    let (server, rest) = rest.split_once(".trace.invalid/doc/")?;
    Some((server.parse().ok()?, rest.parse().ok()?))
}

/// A full trace plus its identifying metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Profile or generator name this trace came from.
    pub name: String,
    /// The number of proxy groups the paper partitions this trace into.
    pub groups: u32,
    /// Requests in time order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Wall-clock span covered by the trace.
    pub fn duration_ms(&self) -> u64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(a), Some(b)) => b.time_ms - a.time_ms,
            _ => 0,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_roundtrip() {
        let r = Request {
            time_ms: 0,
            client: 3,
            url: 123456789,
            server: 42,
            size: 1000,
            last_modified: 7,
        };
        let s = r.url_string();
        assert_eq!(parse_url(&s), Some((42, 123456789)));
    }

    #[test]
    fn parse_rejects_foreign_urls() {
        assert_eq!(parse_url("http://example.com/doc/1"), None);
        assert_eq!(parse_url("http://server-x.trace.invalid/doc/1"), None);
        assert_eq!(parse_url("http://server-1.trace.invalid/doc/"), None);
    }

    #[test]
    fn duration_of_empty_and_singleton() {
        let mut t = Trace {
            name: "t".into(),
            groups: 1,
            requests: vec![],
        };
        assert_eq!(t.duration_ms(), 0);
        t.requests.push(Request {
            time_ms: 99,
            client: 0,
            url: 0,
            server: 0,
            size: 1,
            last_modified: 0,
        });
        assert_eq!(t.duration_ms(), 0);
    }
}
