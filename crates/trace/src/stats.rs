//! Table I statistics: what an infinite cache could achieve on a trace.

use crate::model::Trace;
use std::collections::HashMap;

/// Summary statistics of a trace, mirroring the paper's Table I columns.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Trace name.
    pub name: String,
    /// Trace span in milliseconds.
    pub duration_ms: u64,
    /// Number of requests.
    pub requests: usize,
    /// Number of distinct clients.
    pub clients: usize,
    /// Number of distinct documents.
    pub unique_documents: usize,
    /// "Infinite cache size": total bytes of unique documents — the
    /// minimum cache size that incurs no replacement.
    pub infinite_cache_bytes: u64,
    /// Hit ratio of an infinite cache honouring the perfect-consistency
    /// rule (a version change is a miss).
    pub max_hit_ratio: f64,
    /// Byte hit ratio of the same infinite cache.
    pub max_byte_hit_ratio: f64,
}

impl TraceStats {
    /// Compute the statistics by simulating an infinite cache over the
    /// trace: every request is cached; a repeat access hits unless the
    /// document's size or last-modified stamp changed since it was
    /// cached (then it is a miss and the new version replaces the old).
    pub fn compute(trace: &Trace) -> TraceStats {
        let mut cache: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut clients: HashMap<u32, ()> = HashMap::new();
        let mut hits = 0usize;
        let mut hit_bytes = 0u64;
        let mut total_bytes = 0u64;
        let mut infinite_bytes = 0u64;
        for r in &trace.requests {
            clients.insert(r.client, ());
            total_bytes += r.size;
            match cache.get(&r.url) {
                Some(&(size, lm)) if size == r.size && lm == r.last_modified => {
                    hits += 1;
                    hit_bytes += r.size;
                }
                Some(&(size, _)) => {
                    // Version changed: adjust the stored footprint.
                    infinite_bytes = infinite_bytes - size + r.size;
                    cache.insert(r.url, (r.size, r.last_modified));
                }
                None => {
                    infinite_bytes += r.size;
                    cache.insert(r.url, (r.size, r.last_modified));
                }
            }
        }
        let n = trace.requests.len().max(1);
        TraceStats {
            name: trace.name.clone(),
            duration_ms: trace.duration_ms(),
            requests: trace.requests.len(),
            clients: clients.len(),
            unique_documents: cache.len(),
            infinite_cache_bytes: infinite_bytes,
            max_hit_ratio: hits as f64 / n as f64,
            max_byte_hit_ratio: hit_bytes as f64 / total_bytes.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Request;

    fn req(time: u64, client: u32, url: u64, size: u64, lm: u64) -> Request {
        Request {
            time_ms: time,
            client,
            url,
            server: 0,
            size,
            last_modified: lm,
        }
    }

    #[test]
    fn counts_hits_and_stale_misses() {
        let trace = Trace {
            name: "t".into(),
            groups: 1,
            requests: vec![
                req(0, 1, 10, 100, 0), // cold miss
                req(1, 2, 10, 100, 0), // hit
                req(2, 1, 10, 100, 5), // modified -> stale miss
                req(3, 2, 10, 100, 5), // hit again
                req(4, 3, 20, 50, 0),  // cold miss
            ],
        };
        let s = TraceStats::compute(&trace);
        assert_eq!(s.requests, 5);
        assert_eq!(s.clients, 3);
        assert_eq!(s.unique_documents, 2);
        assert_eq!(s.infinite_cache_bytes, 150);
        assert!((s.max_hit_ratio - 0.4).abs() < 1e-9);
        assert!((s.max_byte_hit_ratio - 200.0 / 450.0).abs() < 1e-9);
    }

    #[test]
    fn size_change_adjusts_footprint() {
        let trace = Trace {
            name: "t".into(),
            groups: 1,
            requests: vec![req(0, 1, 10, 100, 0), req(1, 1, 10, 300, 1)],
        };
        let s = TraceStats::compute(&trace);
        assert_eq!(s.infinite_cache_bytes, 300, "old version's bytes released");
        assert_eq!(s.max_hit_ratio, 0.0);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::compute(&Trace {
            name: "e".into(),
            groups: 1,
            requests: vec![],
        });
        assert_eq!(s.requests, 0);
        assert_eq!(s.max_hit_ratio, 0.0);
        assert_eq!(s.infinite_cache_bytes, 0);
    }

    #[test]
    fn profile_traces_have_sane_max_hit_ratio() {
        let p = crate::profile("UPisa").unwrap();
        let t = p.generate_scaled(10);
        let s = TraceStats::compute(&t);
        assert!(
            (0.2..0.9).contains(&s.max_hit_ratio),
            "web traces peak around 40-70%: {}",
            s.max_hit_ratio
        );
        assert!(s.infinite_cache_bytes > 0);
        assert!(s.unique_documents > 100);
    }
}
