//! The synthetic trace generator.
//!
//! Request streams are produced by composing four processes:
//!
//! 1. **Popularity** — documents are ranked by a Zipf-like law
//!    (`P(rank i) ∝ 1/i^α`, α ≈ 0.7–0.8 for web traces);
//! 2. **Temporal locality** — with probability `recency_prob` a request
//!    re-draws from an LRU stack of recently referenced documents, with
//!    Zipf-distributed stack distance (the model behind the Wisconsin
//!    Proxy Benchmark the paper uses in Section IV);
//! 3. **Sizes** — per-document bodies from a bounded Pareto (α = 1.1);
//! 4. **Modification** — each request finds the document modified since
//!    its last access with probability `mod_probability`, producing the
//!    stale hits of Section V-A.
//!
//! Clients have Zipf-skewed activity. For the ICP-overhead benchmark
//! (Table II) `disjoint_groups` gives every proxy group a private
//! document space so there are *no* inter-proxy hits — the paper's
//! worst case for ICP. The NLANR anomaly (duplicate simultaneous
//! requests to two proxies, Section V-A) is reproduced by
//! `anomaly_duplicates`.

use crate::model::{Request, Trace};
use crate::partition::group_of_client;
use crate::sampler::{exp_gap_ms, BoundedPareto, Zipf};
use sc_util::Rng;

/// All knobs of the generator. Construct via a [`crate::TraceProfile`]
/// or fill in fields directly for custom workloads.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Trace name recorded in the output.
    pub name: String,
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct clients.
    pub clients: u32,
    /// Number of distinct documents (per group when `disjoint_groups`).
    pub documents: usize,
    /// Zipf exponent of document popularity.
    pub zipf_alpha: f64,
    /// Zipf exponent of client activity (0 = uniform).
    pub client_activity_alpha: f64,
    /// Number of proxy groups the trace will be partitioned into.
    pub groups: u32,
    /// URLs per server name; the paper observes a ≈10:1 ratio of
    /// referenced URLs to referenced servers.
    pub urls_per_server: u32,
    /// Mean inter-arrival gap in milliseconds.
    pub mean_gap_ms: f64,
    /// Per-request probability that the document was modified since its
    /// previous version (drives stale hits).
    pub mod_probability: f64,
    /// Probability a request is drawn from the recency stack instead of
    /// the popularity law.
    pub recency_prob: f64,
    /// Depth of the recency stack.
    pub stack_depth: usize,
    /// Zipf exponent of stack-distance draws.
    pub stack_alpha: f64,
    /// Give each proxy group a disjoint document space (no remote hits).
    pub disjoint_groups: bool,
    /// Fraction of requests duplicated immediately from a client in a
    /// *different* group (the NLANR anomaly).
    pub anomaly_duplicates: f64,
    /// Probability that a request is followed by a burst of requests for
    /// other documents on the *same server* from the same client — the
    /// embedded-object (page) locality that gives web traces their high
    /// cached-URL : server-name ratio (Section V-B observes ≈ 10:1).
    pub spatial_burst_prob: f64,
    /// Maximum burst length (uniform in `1..=burst_max`).
    pub burst_max: u32,
    /// Body-size distribution: (alpha, min bytes, max bytes).
    pub size_pareto: (f64, u64, u64),
    /// RNG seed; equal configs generate byte-identical traces.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            name: "custom".into(),
            requests: 100_000,
            clients: 256,
            documents: 40_000,
            zipf_alpha: 0.75,
            client_activity_alpha: 0.5,
            groups: 8,
            urls_per_server: 12,
            mean_gap_ms: 500.0,
            mod_probability: 0.015,
            recency_prob: 0.25,
            stack_depth: 8_192,
            stack_alpha: 0.9,
            disjoint_groups: false,
            anomaly_duplicates: 0.0,
            spatial_burst_prob: 0.5,
            burst_max: 10,
            size_pareto: (1.1, 1024, 8 * 1024 * 1024),
            seed: 0x5ca1ab1e,
        }
    }
}

/// Per-document generation state.
struct DocState {
    size: u64,
    last_modified: u64,
}

/// The generator itself. One-shot: [`TraceGenerator::generate`] consumes
/// the configuration and produces a [`Trace`].
pub struct TraceGenerator {
    cfg: GeneratorConfig,
}

impl TraceGenerator {
    /// Build a generator for `cfg`.
    ///
    /// # Panics
    /// On degenerate configs (zero requests/clients/documents, fewer
    /// clients than groups, probabilities outside `[0, 1]`).
    pub fn new(cfg: GeneratorConfig) -> Self {
        assert!(cfg.requests > 0 && cfg.clients > 0 && cfg.documents > 0);
        assert!(cfg.groups > 0 && cfg.clients >= cfg.groups, "need a client per group");
        for p in [
            cfg.mod_probability,
            cfg.recency_prob,
            cfg.anomaly_duplicates,
            cfg.spatial_burst_prob,
        ] {
            assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        }
        assert!(cfg.urls_per_server > 0);
        assert!(
            cfg.spatial_burst_prob == 0.0 || cfg.burst_max >= 1,
            "bursts need burst_max >= 1"
        );
        TraceGenerator { cfg }
    }

    /// Generate the trace.
    pub fn generate(self) -> Trace {
        let cfg = self.cfg;
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let doc_zipf = Zipf::new(cfg.documents, cfg.zipf_alpha);
        let client_zipf = Zipf::new(cfg.clients as usize, cfg.client_activity_alpha);
        let stack_zipf = Zipf::new(cfg.stack_depth.max(1), cfg.stack_alpha);
        let sizes = BoundedPareto::new(cfg.size_pareto.0, cfg.size_pareto.1, cfg.size_pareto.2);

        // Popularity rank → document id permutation, so that ids carry no
        // popularity information (as in real traces).
        let spaces = if cfg.disjoint_groups { cfg.groups as usize } else { 1 };
        let servers_per_space = cfg.documents.div_ceil(cfg.urls_per_server as usize) as u32;
        let mut rank_to_doc: Vec<Vec<u64>> = Vec::with_capacity(spaces);
        let mut server_of_doc: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for space in 0..spaces {
            let base = (space * cfg.documents) as u64;
            let mut ids: Vec<u64> = (base..base + cfg.documents as u64).collect();
            // Fisher–Yates with the seeded rng keeps determinism.
            for i in (1..ids.len()).rev() {
                ids.swap(i, rng.gen_range(0..=i));
            }
            // Servers cluster by popularity rank: consecutive ranks share
            // a server, the way a popular site hosts many popular URLs.
            // This is what gives real traces their ~10:1 ratio of cached
            // URLs to cached server names (Section V-B).
            for (rank, &id) in ids.iter().enumerate() {
                let server =
                    space as u32 * servers_per_space + (rank / cfg.urls_per_server as usize) as u32;
                server_of_doc.insert(id, server);
            }
            rank_to_doc.push(ids);
        }

        // Server -> member documents, for spatial (embedded-object) bursts.
        let mut docs_of_server: std::collections::HashMap<u32, Vec<u64>> =
            std::collections::HashMap::new();
        for (&doc, &server) in &server_of_doc {
            docs_of_server.entry(server).or_default().push(doc);
        }
        for members in docs_of_server.values_mut() {
            members.sort_unstable(); // HashMap order must not leak into the trace
        }

        let mut docs: std::collections::HashMap<u64, DocState> = std::collections::HashMap::new();
        // One recency stack per document space.
        let mut stacks: Vec<Vec<u64>> = vec![Vec::new(); spaces];

        let mut requests = Vec::with_capacity(cfg.requests);
        let mut now: u64 = 0;

        while requests.len() < cfg.requests {
            now += exp_gap_ms(&mut rng, cfg.mean_gap_ms);
            let client = client_zipf.sample(&mut rng) as u32;
            let group = group_of_client(client, cfg.groups);
            let space = if cfg.disjoint_groups { group as usize } else { 0 };

            // Pick the primary document: recency stack or popularity law.
            let stack = &stacks[space];
            let url = if !stack.is_empty() && rng.gen_bool(cfg.recency_prob) {
                let pos = stack_zipf.sample(&mut rng).min(stack.len() - 1);
                // Stack is most-recent-last; distance 0 = most recent.
                stack[stack.len() - 1 - pos]
            } else {
                rank_to_doc[space][doc_zipf.sample(&mut rng)]
            };

            // The page fetch: the primary document plus, with
            // spatial_burst_prob, a burst of same-server siblings (the
            // page's embedded objects).
            let mut batch = vec![url];
            if cfg.spatial_burst_prob > 0.0 && rng.gen_bool(cfg.spatial_burst_prob) {
                let siblings = &docs_of_server[&server_of_doc[&url]];
                let burst = rng.gen_range(1..=cfg.burst_max as usize);
                for _ in 0..burst {
                    batch.push(siblings[rng.gen_range(0..siblings.len())]);
                }
            }

            for (offset, &url) in batch.iter().enumerate() {
                if requests.len() >= cfg.requests {
                    break;
                }
                let now = now + offset as u64; // burst objects arrive back-to-back

                // Maintain the recency stack (move-to-top, bounded depth).
                let stack = &mut stacks[space];
                if let Some(pos) = stack.iter().rposition(|&d| d == url) {
                    stack.remove(pos);
                }
                stack.push(url);
                if stack.len() > cfg.stack_depth {
                    stack.remove(0);
                }

                // Document state: size fixed at first touch, version bumps
                // with mod_probability on each re-reference.
                let is_new = !docs.contains_key(&url);
                let state = docs.entry(url).or_insert_with(|| DocState {
                    size: sizes.sample(&mut rng),
                    last_modified: now,
                });
                if !is_new && rng.gen_bool(cfg.mod_probability) {
                    state.last_modified = now;
                }

                let req = Request {
                    time_ms: now,
                    client,
                    url,
                    server: server_of_doc[&url],
                    size: state.size,
                    last_modified: state.last_modified,
                };
                requests.push(req);

                // NLANR anomaly: the same document requested
                // "simultaneously" by a client of another group.
                if cfg.anomaly_duplicates > 0.0
                    && requests.len() < cfg.requests
                    && rng.gen_bool(cfg.anomaly_duplicates)
                    && cfg.groups > 1
                {
                    let other_group =
                        (group + 1 + rng.gen_range(0..cfg.groups - 1)) % cfg.groups;
                    // A client landing in other_group: client ids map to
                    // groups by id % groups, so sample until it fits.
                    let other_client = loop {
                        let c = rng.gen_range(0..cfg.clients);
                        if group_of_client(c, cfg.groups) == other_group {
                            break c;
                        }
                    };
                    requests.push(Request {
                        time_ms: now,
                        client: other_client,
                        ..req
                    });
                }
            }
            // Burst offsets consumed wall-clock; keep time monotone.
            now += (batch.len() - 1) as u64;
        }

        Trace {
            name: cfg.name,
            groups: cfg.groups,
            requests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn small() -> GeneratorConfig {
        GeneratorConfig {
            requests: 20_000,
            clients: 64,
            documents: 5_000,
            groups: 4,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = TraceGenerator::new(small()).generate();
        let b = TraceGenerator::new(small()).generate();
        assert_eq!(a, b);
        let c = TraceGenerator::new(GeneratorConfig {
            seed: 99,
            ..small()
        })
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn monotone_time_and_exact_count() {
        let t = TraceGenerator::new(small()).generate();
        assert_eq!(t.len(), 20_000);
        assert!(t.requests.windows(2).all(|w| w[0].time_ms <= w[1].time_ms));
    }

    #[test]
    fn sizes_stable_within_version() {
        let t = TraceGenerator::new(small()).generate();
        let mut seen: HashMap<u64, u64> = HashMap::new();
        for r in &t.requests {
            let prev = seen.insert(r.url, r.size);
            if let Some(p) = prev {
                assert_eq!(p, r.size, "size of {} changed", r.url);
            }
        }
    }

    #[test]
    fn modifications_move_last_modified_forward() {
        let t = TraceGenerator::new(small()).generate();
        let mut lm: HashMap<u64, u64> = HashMap::new();
        let mut mods = 0u32;
        for r in &t.requests {
            if let Some(&prev) = lm.get(&r.url) {
                assert!(r.last_modified >= prev, "last_modified went backwards");
                if r.last_modified != prev {
                    mods += 1;
                }
            }
            lm.insert(r.url, r.last_modified);
        }
        assert!(mods > 0, "modification process never fired");
    }

    #[test]
    fn popularity_is_skewed() {
        let t = TraceGenerator::new(small()).generate();
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for r in &t.requests {
            *counts.entry(r.url).or_default() += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = freqs.iter().take(10).sum();
        assert!(
            top10 as usize * 20 > t.len(),
            "top-10 docs should carry >5% of requests, got {top10}"
        );
    }

    #[test]
    fn disjoint_groups_never_share_documents() {
        let t = TraceGenerator::new(GeneratorConfig {
            disjoint_groups: true,
            ..small()
        })
        .generate();
        let mut owner: HashMap<u64, u32> = HashMap::new();
        for r in &t.requests {
            let g = group_of_client(r.client, 4);
            let prev = owner.insert(r.url, g);
            if let Some(p) = prev {
                assert_eq!(p, g, "document {} crossed groups", r.url);
            }
        }
        // And the spaces are actually distinct id ranges.
        let groups_seen: HashSet<u32> = owner.values().copied().collect();
        assert_eq!(groups_seen.len(), 4);
    }

    #[test]
    fn anomaly_produces_cross_group_duplicates() {
        let t = TraceGenerator::new(GeneratorConfig {
            anomaly_duplicates: 0.05,
            ..small()
        })
        .generate();
        let mut dups = 0;
        for w in t.requests.windows(2) {
            if w[0].url == w[1].url
                && w[0].time_ms == w[1].time_ms
                && group_of_client(w[0].client, 4) != group_of_client(w[1].client, 4)
            {
                dups += 1;
            }
        }
        assert!(dups > 200, "expected ~1000 anomaly pairs, saw {dups}");
    }

    #[test]
    fn server_component_stable_and_clustered() {
        let t = TraceGenerator::new(small()).generate();
        // One URL always maps to the same server.
        let mut server_of: HashMap<u64, u32> = HashMap::new();
        for r in &t.requests {
            let prev = server_of.insert(r.url, r.server);
            if let Some(p) = prev {
                assert_eq!(p, r.server, "server of {} changed", r.url);
            }
        }
        // Popularity clustering keeps the ratio of *referenced* URLs to
        // referenced servers well above uniform scattering — the paper's
        // observed ~10:1 (Section V-B).
        let servers: HashSet<u32> = t.requests.iter().map(|r| r.server).collect();
        let urls: HashSet<u64> = t.requests.iter().map(|r| r.url).collect();
        let ratio = urls.len() as f64 / servers.len() as f64;
        assert!((4.0..=10.0).contains(&ratio), "URL:server ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "need a client per group")]
    fn rejects_more_groups_than_clients() {
        TraceGenerator::new(GeneratorConfig {
            clients: 2,
            groups: 4,
            ..Default::default()
        });
    }
}
