//! A fast, deterministic, non-cryptographic hasher for internal maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 with a random key) buys
//! HashDoS resistance at a real per-lookup cost. The daemon's internal
//! maps are keyed by small trusted values — peer ids, request numbers,
//! MD5 digests we computed ourselves — where an attacker controls
//! nothing, so that defense buys nothing on the hot path.
//!
//! This is the classic "Fx" multiply-xor hash (as used by Firefox and
//! rustc): fold each 8-byte word into the state with a rotate, xor, and
//! multiply by a single odd constant. It is seed-free, hence also
//! deterministic across runs — a property the seeded simnet appreciates.
//!
//! ```
//! use sc_util::fxhash::FxHashMap;
//! let mut m: FxHashMap<u32, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier: a random-looking odd 64-bit constant
/// (`2^64 / golden ratio`, as in rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-xor hasher state. Build through [`FxBuildHasher`] /
/// [`FxHashMap`] rather than directly.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.add_word(u64::from_le_bytes(word) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; zero-sized and seed-free.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hasher. Drop-in for `std::collections::
/// HashMap` on trusted keys; construct with `FxHashMap::default()` or
/// `collect()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"peer-7"), hash_of(&"peer-7"));
    }

    #[test]
    fn small_keys_spread() {
        // Not a statistical test — just catch a broken fold that maps
        // everything to a handful of values.
        let hashes: std::collections::HashSet<u64> =
            (0u32..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn byte_boundaries_matter() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
        assert_ne!(hash_of(b"ab".as_slice()), hash_of(b"ba".as_slice()));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&7), Some(&14));
        let s: FxHashSet<[u8; 16]> = [[0u8; 16], [1u8; 16]].into_iter().collect();
        assert!(s.contains(&[1u8; 16]));
    }
}
