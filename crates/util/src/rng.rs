//! A small, fast, seedable pseudo-random generator.
//!
//! The workspace needs reproducible randomness for trace generation,
//! synthetic benchmark clients, and property tests. It does **not** need
//! cryptographic strength, so this is xorshift128+ (Vigna 2014) seeded
//! through splitmix64 — the same construction the reference Xoroshiro
//! family recommends for turning a 64-bit seed into full generator state.
//!
//! The API deliberately mirrors the subset of `rand`'s `Rng` the repo
//! used, to keep call sites mechanical: `seed_from_u64`, `gen_range`,
//! `gen_bool`, `gen_f64`, `shuffle`.

/// Seeded xorshift128+ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s0: u64,
    s1: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Build a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        // splitmix64 never maps two states to (0, 0) for a single seed
        // stream, but guard anyway: all-zero state would be a fixed point.
        if s0 == 0 && s1 == 0 {
            Rng { s0: 1, s1: 2 }
        } else {
            Rng { s0, s1 }
        }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from `range`, which may be any of the integer or
    /// float range forms the call sites use: `lo..hi`, `lo..=hi`.
    ///
    /// # Panics
    /// If the range is empty.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift reduction (Lemire); the bias for the
                // spans used here (< 2^32) is far below observability.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + r as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + r as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b: u32 = rng.gen_range(0..=5);
            assert!(b <= 5);
            let c = rng.gen_range(-4i64..9);
            assert!((-4..9).contains(&c));
            let d = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = Rng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} far from uniform");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = Rng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits}");
        let mut rng = Rng::seed_from_u64(5);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(6);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn extreme_inclusive_range() {
        let mut rng = Rng::seed_from_u64(7);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let v: u8 = rng.gen_range(9..=9);
        assert_eq!(v, 9);
    }
}
