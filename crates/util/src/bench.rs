//! A minimal wall-clock micro-benchmark harness.
//!
//! Replaces `criterion` for the workspace's `harness = false` bench
//! targets. Each benchmark is warmed up, then timed over enough
//! iterations to fill a small measurement window; the harness prints
//! ns/op and ops/s. `cargo test` also executes bench binaries, so the
//! default window is deliberately tiny; set `SC_BENCH_MS` for real runs.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, re-exported so benches don't touch
/// `std::hint` paths directly.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Measurement window per benchmark in milliseconds (`SC_BENCH_MS`,
/// default 20 — small because `cargo test` runs bench binaries too).
pub fn window_ms() -> u64 {
    std::env::var("SC_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(20)
}

/// A named group of benchmarks, printed as one table.
pub struct Bench {
    suite: &'static str,
    window_ms: u64,
}

impl Bench {
    /// Start a suite; prints a header line.
    pub fn new(suite: &'static str) -> Self {
        let window_ms = window_ms();
        println!("## bench suite `{suite}` (window {window_ms} ms/case)");
        Bench { suite, window_ms }
    }

    /// Time `f`, which should perform one operation per call, and print
    /// one result row. Returns mean ns/op for callers that post-process.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> f64 {
        // Warm-up: run for ~1/4 of the window to stabilise caches and
        // let the first lazy initialisations happen off the clock.
        let warm_budget = self.window_ms.max(4) / 4;
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed().as_millis() < warm_budget as u128 {
            f();
            warm_iters += 1;
        }

        // Measure: batch iterations between clock reads so short ops are
        // not dominated by `Instant::now` overhead.
        let batch = warm_iters.clamp(1, 1 << 20);
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            for _ in 0..batch {
                f();
            }
            iters += batch;
            if start.elapsed().as_millis() >= self.window_ms as u128 {
                break;
            }
        }
        let elapsed = start.elapsed();
        let ns_per_op = elapsed.as_nanos() as f64 / iters as f64;
        let ops_per_s = if ns_per_op > 0.0 { 1e9 / ns_per_op } else { f64::INFINITY };
        println!(
            "{:<40} {:>14} ns/op {:>16} ops/s  ({} iters)",
            format!("{}/{}", self.suite, name),
            format_sig(ns_per_op),
            format_sig(ops_per_s),
            iters
        );
        ns_per_op
    }

    /// Like [`bench`](Self::bench), but splits the measurement window
    /// into `parts` sub-windows and reports the **fastest** one.
    /// Timing noise on a shared box is strictly additive (preemption,
    /// frequency dips, cache pollution from neighbours), so the
    /// minimum of several short windows estimates the true cost far
    /// more stably than one long mean — use this for tracked rows that
    /// gate CI.
    pub fn bench_min<F: FnMut()>(&mut self, name: &str, parts: u32, mut f: F) -> f64 {
        let parts = parts.max(1);
        let warm_budget = self.window_ms.max(4) / 4;
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed().as_millis() < warm_budget as u128 {
            f();
            warm_iters += 1;
        }

        let batch = (warm_iters / u64::from(parts)).clamp(1, 1 << 20);
        let sub_ms = (self.window_ms / u64::from(parts)).max(1);
        let mut best = f64::INFINITY;
        let mut total_iters: u64 = 0;
        for _ in 0..parts {
            let start = Instant::now();
            let mut iters: u64 = 0;
            loop {
                for _ in 0..batch {
                    f();
                }
                iters += batch;
                if start.elapsed().as_millis() >= sub_ms as u128 {
                    break;
                }
            }
            let ns_per_op = start.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(ns_per_op);
            total_iters += iters;
        }
        let ops_per_s = if best > 0.0 { 1e9 / best } else { f64::INFINITY };
        println!(
            "{:<40} {:>14} ns/op {:>16} ops/s  ({} iters, best of {parts})",
            format!("{}/{}", self.suite, name),
            format_sig(best),
            format_sig(ops_per_s),
            total_iters
        );
        best
    }

    /// Time `f` over `items`-sized batches and report throughput in
    /// items/s as well (for byte- or element-oriented benchmarks).
    pub fn bench_throughput<F: FnMut()>(&mut self, name: &str, items: u64, f: F) -> f64 {
        let ns_per_op = self.bench(name, f);
        let per_item = ns_per_op / items as f64;
        println!(
            "{:<40} {:>14} ns/item over {items} items",
            format!("{}/{}", self.suite, name),
            format_sig(per_item)
        );
        ns_per_op
    }
}

fn format_sig(x: f64) -> String {
    if !x.is_finite() {
        "inf".into()
    } else if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut b = Bench::new("selftest");
        let mut acc = 0u64;
        let ns = b.bench("wrapping_add", || {
            acc = black_box(acc.wrapping_add(black_box(3)));
        });
        assert!(ns > 0.0 && ns.is_finite());
    }

    #[test]
    fn formatting_is_stable() {
        assert_eq!(format_sig(123456.0), "123456");
        assert_eq!(format_sig(12.3456), "12.35");
        assert_eq!(format_sig(0.1234), "0.1234");
    }
}
