#![warn(missing_docs)]

//! Std-only building blocks shared across the workspace.
//!
//! The repo's dependency firewall (see `crates/check`) forbids registry
//! crates, so the usual suspects are reimplemented here at the scale this
//! project needs:
//!
//! * [`rng`] — a seeded xorshift RNG replacing `rand` (every consumer in
//!   this workspace seeds explicitly; there is deliberately *no* ambient
//!   `thread_rng`, so simulations stay replayable);
//! * [`prop`] — a minimal property-test harness replacing `proptest`
//!   (seeded cases, shrink-free, failure messages name the failing seed);
//! * [`bench`] — a minimal wall-clock micro-benchmark harness replacing
//!   `criterion` (used by the `harness = false` bench targets);
//! * [`poll`] — a shared convergence loop: virtual-clock stepping for
//!   the deterministic simnet, real-clock deadline polling for live
//!   integration tests;
//! * [`fxhash`] — a fast seed-free multiply-xor hasher for internal maps
//!   keyed by trusted values (peer ids, digests), where SipHash's DoS
//!   resistance buys nothing.

pub mod bench;
pub mod fxhash;
pub mod poll;
pub mod prop;
pub mod rng;

pub use rng::Rng;
