//! A minimal property-test harness.
//!
//! Replaces `proptest` at the scale this repo uses it: run a closure over
//! many seeded random cases; on failure, re-panic with the case index and
//! seed so the exact input can be replayed by hand. There is no input
//! shrinking — cases are small enough here that the seed is the repro.
//!
//! ```
//! use sc_util::prop::check;
//!
//! check("addition_commutes", 64, |rng| {
//!     let a: u32 = rng.gen_range(0..1000);
//!     let b: u32 = rng.gen_range(0..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::Rng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Derive a per-case seed from the property name and case index, so two
/// properties in one test binary never share input streams.
fn case_seed(name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run `body` over `cases` seeded random inputs.
///
/// # Panics
/// Re-raises the first failing case's panic, after printing which case
/// and seed failed. Replay a single failure with [`check_seed`].
pub fn check<F>(name: &str, cases: u32, mut body: F)
where
    F: FnMut(&mut Rng),
{
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = Rng::seed_from_u64(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            eprintln!("property `{name}` failed at case {case}/{cases} (seed {seed:#x}); replay with sc_util::prop::check_seed(\"{name}\", {seed:#x}, ..)");
            resume_unwind(panic);
        }
    }
}

/// Replay one case of a property by seed (for debugging a failure
/// reported by [`check`]).
pub fn check_seed<F>(name: &str, seed: u64, mut body: F)
where
    F: FnMut(&mut Rng),
{
    let _ = name;
    let mut rng = Rng::seed_from_u64(seed);
    body(&mut rng);
}

/// Uniform random `Vec` whose length is drawn from `len`, elements from
/// `gen` — the moral equivalent of `proptest::collection::vec`.
pub fn vec_of<T>(
    rng: &mut Rng,
    len: std::ops::Range<usize>,
    mut gen: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = if len.start == len.end { len.start } else { rng.gen_range(len) };
    (0..n).map(|_| gen(rng)).collect()
}

/// Random sorted deduplicated set of `usize` indices below `bound` —
/// the moral equivalent of `proptest::collection::btree_set(0..bound, len)`.
pub fn index_set(rng: &mut Rng, bound: usize, len: std::ops::Range<usize>) -> Vec<usize> {
    let mut v = vec_of(rng, len, |r| r.gen_range(0..bound));
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case() {
        let mut n = 0;
        check("count_cases", 37, |_| n += 1);
        assert_eq!(n, 37);
    }

    #[test]
    fn seeds_differ_across_cases_and_names() {
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_failure() {
        check("always_fails", 10, |_| panic!("boom"));
    }

    #[test]
    fn helpers_respect_bounds() {
        check("helpers", 32, |rng| {
            let v = vec_of(rng, 0..20, |r| r.gen_range(0u32..5));
            assert!(v.len() < 20);
            let s = index_set(rng, 100, 0..50);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 100));
        });
    }
}
