//! Deadline polling: drive a step function until a predicate holds.
//!
//! One convergence loop serves two very different drivers:
//!
//! * the deterministic simnet ([`converge`]) steps a *virtual* clock —
//!   each step advances the simulation one keep-alive window and the
//!   predicate checks protocol quiescence;
//! * the live integration tests ([`wait_until`]) step the *real* clock —
//!   each step sleeps a short interval and the predicate re-reads a
//!   stats snapshot, replacing the fixed `thread::sleep` waits that made
//!   those tests flaky on slow machines and slow on fast ones.

use std::time::Duration;

/// Run `step` on `state` until `done` holds, at most `max_steps` times.
///
/// `done` is checked before the first step (already-converged systems
/// take zero steps). Returns `Some(steps_taken)` on success, `None` if
/// the budget ran out with the predicate still false.
pub fn converge<S>(
    state: &mut S,
    max_steps: usize,
    mut step: impl FnMut(&mut S),
    mut done: impl FnMut(&mut S) -> bool,
) -> Option<usize> {
    if done(state) {
        return Some(0);
    }
    for taken in 1..=max_steps {
        step(state);
        if done(state) {
            return Some(taken);
        }
    }
    None
}

/// Poll `pred` every `interval` of real time until it holds or
/// `timeout` elapses. Returns whether the predicate ever held.
///
/// This is [`converge`] with a sleeping step function — the shared
/// deadline-polling helper for live-cluster tests.
pub fn wait_until(timeout: Duration, interval: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let interval = interval.max(Duration::from_millis(1));
    let steps = (timeout.as_micros() / interval.as_micros()).max(1) as usize;
    converge(
        &mut (),
        steps,
        |_| std::thread::sleep(interval),
        |_| pred(),
    )
    .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converge_checks_before_stepping() {
        let mut steps = 0;
        let r = converge(&mut steps, 10, |s| *s += 1, |_| true);
        assert_eq!(r, Some(0));
        assert_eq!(steps, 0, "already-done systems take no steps");
    }

    #[test]
    fn converge_counts_steps() {
        let mut v = 0;
        let r = converge(&mut v, 10, |s| *s += 1, |s| *s >= 3);
        assert_eq!(r, Some(3));
        assert_eq!(v, 3);
    }

    #[test]
    fn converge_exhausts_budget() {
        let mut v = 0;
        let r = converge(&mut v, 5, |s| *s += 1, |_| false);
        assert_eq!(r, None);
        assert_eq!(v, 5, "every budgeted step ran");
    }

    #[test]
    fn wait_until_observes_a_flipping_predicate() {
        let t0 = std::time::Instant::now();
        let ok = wait_until(Duration::from_secs(2), Duration::from_millis(1), || {
            t0.elapsed() >= Duration::from_millis(5)
        });
        assert!(ok);
        assert!(t0.elapsed() < Duration::from_secs(2), "returned well before timeout");
    }

    #[test]
    fn wait_until_times_out() {
        assert!(!wait_until(
            Duration::from_millis(10),
            Duration::from_millis(2),
            || false
        ));
    }
}
