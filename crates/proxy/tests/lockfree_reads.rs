//! The ISSUE's acceptance bar for the read-path split: SC-mode
//! candidate selection must perform **no** `Mutex<Machine>` acquisition.
//!
//! Strategy: install peer replicas through the machine, then hold the
//! machine's mutex on the test thread while a reader thread resolves
//! candidates through the [`ReplicaCell`]. If the read path ever locked
//! the machine, the reader would deadlock and the channel receive below
//! would time out.

use sc_proxy::machine::{DirectoryView, Event, Machine, VirtualTime};
use sc_wire::icp::{DirContent, DirUpdate, IcpMessage};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use summary_cache_core::UrlKey;

struct NoDocs;
impl DirectoryView for NoDocs {
    fn contains(&self, _url: &str) -> bool {
        false
    }
}

/// A bitmap DIRUPDATE from `peer` advertising exactly `urls`.
fn bitmap_from(peer: u32, generation: u32, urls: &[&[u8]]) -> Vec<u8> {
    let mut f = sc_bloom::BloomFilter::new(sc_bloom::FilterConfig::with_load_factor(64, 8, 4));
    for u in urls {
        f.insert(u);
    }
    let spec = f.spec();
    IcpMessage::DirUpdate {
        request_number: 1,
        sender: peer,
        update: DirUpdate {
            function_num: spec.k(),
            function_bits: spec.function_bits(),
            bit_array_size: spec.table_bits(),
            generation,
            seq: 0,
            content: DirContent::Bitmap(f.bits().as_words().to_vec()),
        },
    }
    .encode(peer)
    .expect("bitmap update encodes")
}

fn feed(machine: &mut Machine, peer: u32, data: &[u8]) {
    machine.handle(
        VirtualTime::from_micros(1),
        Event::Datagram {
            from: Some(peer),
            data,
        },
        &NoDocs,
    );
}

#[test]
fn candidate_selection_completes_while_machine_lock_is_held() {
    let mut machine = Machine::new(1, vec![2, 3], 0, None, VirtualTime::ZERO);
    feed(&mut machine, 2, &bitmap_from(2, 7, &[b"http://a/x"]));
    feed(&mut machine, 3, &bitmap_from(3, 9, &[b"http://a/x", b"http://b/y"]));
    let cell = machine.replica_cell();

    let machine = Mutex::new(machine);
    let guard = machine.lock().expect("test thread takes the machine lock");

    let (tx, rx) = mpsc::channel();
    let reader_cell = Arc::clone(&cell);
    std::thread::spawn(move || {
        let ukey = UrlKey::new(b"http://a/x");
        let _ = tx.send(reader_cell.load().candidates_key(&ukey));
    });
    let got = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("candidate read must not block on the machine lock");
    assert_eq!(got, vec![2, 3], "both replicas advertise the URL");
    drop(guard);
}

#[test]
fn snapshot_tracks_machine_replica_mutations() {
    let mut machine = Machine::new(1, vec![2], 0, None, VirtualTime::ZERO);
    let cell = machine.replica_cell();
    assert_eq!(cell.load().peer_count(), 0, "empty before any bitmap");

    feed(&mut machine, 2, &bitmap_from(2, 7, &[b"http://a/x"]));
    let snap = cell.load();
    assert_eq!(snap.peer_count(), 1);
    assert_eq!(snap.candidates(b"http://a/x"), vec![2]);
    assert_eq!(
        snap.candidates_key(&UrlKey::new(b"http://a/x")),
        snap.candidates(b"http://a/x"),
        "key path agrees with byte path"
    );

    // A delta with a gapped seq discards the replica; the snapshot must
    // follow (probes treat the peer as empty until resync).
    let gapped = IcpMessage::DirUpdate {
        request_number: 2,
        sender: 2,
        update: DirUpdate {
            function_num: 4,
            function_bits: 32,
            bit_array_size: 4096,
            generation: 7,
            seq: 40,
            content: DirContent::Flips(Vec::new()),
        },
    }
    .encode(2)
    .expect("delta encodes");
    feed(&mut machine, 2, &gapped);
    assert_eq!(cell.load().peer_count(), 0, "gap discard reaches readers");
}

#[test]
fn old_snapshots_stay_valid_across_reinstalls() {
    let mut machine = Machine::new(1, vec![2], 0, None, VirtualTime::ZERO);
    let cell = machine.replica_cell();
    feed(&mut machine, 2, &bitmap_from(2, 7, &[b"http://a/x"]));
    let old = cell.load();

    feed(&mut machine, 2, &bitmap_from(2, 8, &[b"http://b/y"]));
    // The retained snapshot is immutable: it still answers from the
    // old bitmap, while fresh loads see the new one.
    assert_eq!(old.candidates(b"http://a/x"), vec![2]);
    assert_eq!(cell.load().candidates(b"http://a/x"), Vec::<u32>::new());
    assert_eq!(cell.load().candidates(b"http://b/y"), vec![2]);
}
