//! Counting-allocator pins for the sub-microsecond request path.
//!
//! Two properties the hot path must keep:
//!
//! * a **warm steady-state request** (key reset, replica-snapshot
//!   probe, store, request-done, flush with nothing pending) performs
//!   **zero heap allocations**, at 1 shard and at 8;
//! * a batch of N delta datagrams applied while a reader holds the
//!   previous replica snapshot costs **exactly one** copy-on-write of
//!   the touched filter — the `Arc::make_mut` deep copy happens on the
//!   first flip datagram and every later one in the batch mutates the
//!   now-unshared filter in place.
//!
//! The allocator counter is thread-local so the two tests (and the
//! harness's own threads) never pollute each other's counts.

use sc_bloom::UrlKey;
use sc_proxy::machine::{DirectoryView, Event, Output, VirtualTime};
use sc_proxy::router::Router;
use sc_proxy::shard::cow_copies;
use sc_bloom::Flip;
use sc_wire::icp::{DirContent, DirUpdate, IcpMessage};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use summary_cache_core::{ProxySummary, SummaryKind, UpdatePolicy};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may already be torn down during thread exit.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

struct NoDocs;
impl DirectoryView for NoDocs {
    fn contains(&self, _url: &str) -> bool {
        false
    }
}

fn at(ms: u64) -> VirtualTime {
    VirtualTime::from_micros(ms * 1000)
}

/// An SC-mode router whose publish policy never fires, so the steady
/// stream is pure directory mutation with nothing to send.
fn quiet_router(shards: usize) -> Router {
    let kind = SummaryKind::Bloom { load_factor: 8, hashes: 4 };
    let mut summary = ProxySummary::with_expected_docs(kind, 4096);
    summary.set_generation(7);
    Router::new(
        1,
        vec![2, 3],
        50,
        shards,
        1,
        Some((summary, UpdatePolicy::EveryRequests(u64::MAX))),
        VirtualTime::ZERO,
    )
}

/// Install a full-bitmap replica for `peer` so the candidate probe has
/// real filters to test against.
fn install_replica(r: &mut Router, peer: u32) {
    let dg = IcpMessage::DirUpdate {
        request_number: 1,
        sender: peer,
        update: DirUpdate {
            function_num: 4,
            function_bits: 32,
            bit_array_size: 512,
            generation: 100 + peer,
            seq: 0,
            content: DirContent::Bitmap(vec![0x5555_5555_5555_5555; 8]),
        },
    }
    .encode(peer)
    .expect("encodes");
    r.handle(at(1), Event::Datagram { from: Some(peer), data: &dg }, &NoDocs);
}

/// One steady-state request exactly as the daemon drives it: reset the
/// warm key, probe the lock-free replica snapshot, store the document,
/// account the request, flush (a no-op when nothing changed replicas).
fn one_request(
    r: &mut Router,
    key: &mut UrlKey,
    candidates: &mut Vec<u32>,
    outputs: &mut Vec<Output>,
    url: &str,
) {
    key.reset(url.as_bytes());
    let cell = r.replica_cell();
    cell.load().candidates_key_into(key, candidates);
    r.handle_into(at(2), Event::Stored { url: key, evicted: &[] }, &NoDocs, outputs);
    assert!(outputs.is_empty(), "steady store emits nothing: {outputs:?}");
    r.handle_into(at(2), Event::RequestDone, &NoDocs, outputs);
    assert!(outputs.is_empty(), "quiet policy never publishes: {outputs:?}");
    r.flush_replicas();
}

fn steady_state_allocs(shards: usize) -> u64 {
    let mut r = quiet_router(shards);
    install_replica(&mut r, 2);
    install_replica(&mut r, 3);

    let mut key = UrlKey::new(b"");
    let mut candidates = Vec::new();
    let mut outputs = Vec::new();
    let urls: Vec<String> = (0..400)
        .map(|i| format!("http://server-{}.trace.invalid/doc/{i}", i % 7))
        .collect();

    // Warm every buffer: the key's byte/memo capacity, the candidate
    // vec, the snapshot cache, the shard flip scratch.
    for url in &urls[..350] {
        one_request(&mut r, &mut key, &mut candidates, &mut outputs, url);
    }

    let before = allocs();
    for url in &urls[350..] {
        one_request(&mut r, &mut key, &mut candidates, &mut outputs, url);
    }
    allocs() - before
}

#[test]
fn steady_state_request_is_allocation_free_at_one_shard() {
    assert_eq!(steady_state_allocs(1), 0, "warm request path must not allocate");
}

#[test]
fn steady_state_request_is_allocation_free_at_eight_shards() {
    assert_eq!(steady_state_allocs(8), 0, "warm request path must not allocate");
}

/// A batch of N flip datagrams against a snapshot-held replica costs
/// exactly one copy-on-write: the first `Arc::make_mut` unshares the
/// filter, the rest of the batch mutates it in place. (The eager
/// per-datagram publish this PR removed re-`Arc`'d the filter after
/// every datagram, making every datagram pay the deep copy.)
#[test]
fn delta_batch_costs_exactly_one_cow_copy() {
    let mut r = quiet_router(4);
    install_replica(&mut r, 2);
    r.flush_replicas();

    // A reader holds the published snapshot across the whole batch, as
    // the daemon's request threads do.
    let snapshot = r.replica_cell().load();
    assert_eq!(snapshot.peers().len(), 1, "peer 2's replica is published");

    let before = cow_copies();
    let mut outputs = Vec::new();
    for seq in 1..=10u32 {
        let dg = IcpMessage::DirUpdate {
            request_number: u32::from(seq),
            sender: 2,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 512,
                generation: 102,
                seq,
                content: DirContent::Flips(vec![
                    Flip::clear(2 * seq),
                    Flip::set(2 * seq + 1),
                ]),
            },
        }
        .encode(2)
        .expect("encodes");
        // Batched apply: no flush between datagrams.
        r.handle_into(at(3), Event::Datagram { from: Some(2), data: &dg }, &NoDocs, &mut outputs);
    }
    r.flush_replicas();

    assert_eq!(
        cow_copies() - before,
        1,
        "10 deltas in one batch share a single copy-on-write"
    );
    drop(snapshot);
}
