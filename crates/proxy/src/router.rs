//! The shard router: the control plane of the shard-per-core runtime.
//!
//! The router owns everything that must be globally ordered or that
//! crosses shard boundaries, and routes everything else to the owning
//! [`Shard`]:
//!
//! * **request numbers**: one allocator, so DIRREQ/DIRUPDATE numbering
//!   is identical at every shard count;
//! * **peer liveness**: SECHO bookkeeping, the failure sweep, and
//!   recovery reinitialization (Section VI-B);
//! * **the publish ledger**: generation, seq, baseline bitmap, and the
//!   update policy. A publish is the canonical *cross-shard merge
//!   step*: the shard directory slices are OR-ed word-wise into one
//!   full-width bitmap, diffed against the baseline, and fanned out as
//!   delta flips or a full bitmap — exactly the unsharded
//!   [`ProxySummary::publish`] arithmetic, applied to the merged array;
//! * **the replica snapshot cell**: whenever any shard reports
//!   [`ShardOutput::ReplicasChanged`], the router re-merges every
//!   shard's installed replicas into one immutable
//!   [`ReplicaSnapshot`] for the lock-free read path.
//!
//! Determinism: the router processes one event at a time and drains
//! each shard's outputs synchronously, so the output stream for a
//! given event sequence is identical for every shard count — that is
//! what lets the simnet assert bit-for-bit equal journals for shards
//! ∈ {1, 2, 4} under the same seed (see DESIGN.md §13 for the full
//! argument, including the counter-saturation caveat).
//!
//! Like the machine it replaces, this module is sans-I/O (sc-check
//! rule 6 covers it): no sockets, no real clocks, no sleeps.

use crate::machine::{
    Dest, DirectoryView, Effect, Event, Output, Send, SendKind, VirtualTime,
    FAILURE_KEEPALIVE_PERIODS, FLIPS_PER_DATAGRAM,
};
use crate::replica::{ReplicaCell, ReplicaSnapshot};
use crate::shard::{owner_of, shard_of, Shard, ShardEvent, ShardOutput};
use sc_bloom::{BitVec, Flip, HashSpec, UrlKey};
use sc_util::fxhash::FxHashMap;
use sc_wire::icp::{DirContent, DirUpdate, IcpMessage};
use std::sync::Arc;
use std::time::Duration;
use summary_cache_core::{
    filter_candidates, wire_cost, ProxySummary, SummarySnapshot, UpdatePolicy,
};

/// One read-only introspection surface over a directory owner — the
/// router, the [`crate::machine::Machine`] facade, and the live
/// [`crate::daemon::Daemon`] all implement it, so tests and admin
/// endpoints ask one trait instead of reaching through layers.
pub trait DirectoryInspect {
    /// Peer ids whose summary replicas are currently installed (i.e.
    /// synced — a bitmap has arrived and no gap has discarded it).
    fn replicated_peers(&self) -> Vec<u32>;
    /// The bit array of the installed replica of `peer`, if synced.
    fn replica_bits(&self, peer: u32) -> Option<BitVec>;
    /// This proxy's own *published* summary bit array (SC mode only) —
    /// what every in-sync peer replica of this proxy must equal.
    fn published_bits(&self) -> Option<BitVec>;
    /// Documents currently reflected in the local directory.
    fn cached_docs(&self) -> u64;
}

/// Failure-detection state for one peer (Section VI-B: the prototype
/// "leverages Squid's built-in support to detect failure and recovery
/// of neighbor proxies, and reinitializes a failed neighbor's bit array
/// when it recovers").
struct PeerLiveness {
    last_heard: VirtualTime,
    failed: bool,
}

/// The publish ledger: the control-plane half of summary-cache mode.
/// The per-URL counters live in the shards; everything here is global —
/// the published baseline the peers hold, the `(generation, seq)`
/// lineage, and the policy counters the publish decision reads.
struct ScControl {
    spec: HashSpec,
    /// The published bitmap — what every in-sync peer replica equals.
    baseline: BitVec,
    generation: u32,
    seq: u32,
    policy: UpdatePolicy,
    /// Documents currently in the directory (inserts minus removes).
    docs: u64,
    /// Inserts since the last publish (Section V-A threshold input).
    fresh: u64,
    requests_since_publish: u64,
    last_publish: VirtualTime,
}

/// The routed protocol state for one proxy: N shards plus the control
/// plane. [`Router::new`] with one shard is exactly the old unsharded
/// machine; the [`crate::machine::Machine`] facade is that special
/// case.
pub struct Router {
    id: u32,
    peers: Vec<u32>,
    keepalive_ms: u64,
    shards: Vec<Shard>,
    liveness: FxHashMap<u32, PeerLiveness>,
    sc: Option<ScControl>,
    /// The lock-free read-path cell: after every replica mutation the
    /// router merges an immutable snapshot of all shards' replicas
    /// here, so SC-mode candidate selection never takes the router
    /// lock.
    cell: Arc<ReplicaCell>,
    next_reqnum: u32,
}

impl Router {
    /// A router for proxy `id` peering with `peers`, partitioned over
    /// `shards` lanes (0 is clamped to 1). `sc` carries the summary
    /// (with its generation already set by the driver — fresh
    /// randomness is I/O) and publish policy in summary-cache mode;
    /// the summary's *published* snapshot seeds the ledger, and its
    /// Bloom spec sizes every shard's directory slice. Non-Bloom
    /// summaries are not routable (nothing constructs them here; the
    /// unsharded publish path treated them as unreachable) and
    /// degrade to no-SC mode. `now` initializes every peer's
    /// last-heard time.
    pub fn new(
        id: u32,
        peers: Vec<u32>,
        keepalive_ms: u64,
        shards: usize,
        sc: Option<(ProxySummary, UpdatePolicy)>,
        now: VirtualTime,
    ) -> Router {
        let shards = shards.max(1);
        let liveness = peers
            .iter()
            .map(|&p| {
                (
                    p,
                    PeerLiveness {
                        last_heard: now,
                        failed: false,
                    },
                )
            })
            .collect();
        let sc = sc.and_then(|(summary, policy)| {
            let SummarySnapshot::Bloom { spec, bits } = summary.snapshot_published() else {
                return None;
            };
            Some(ScControl {
                spec,
                baseline: bits,
                generation: summary.generation(),
                seq: summary.seq(),
                policy,
                docs: summary.docs(),
                fresh: summary.fresh_docs(),
                requests_since_publish: 0,
                last_publish: now,
            })
        });
        let slice_cfg = sc.as_ref().map(|sc| sc_bloom::FilterConfig {
            bits: sc.spec.table_bits(),
            hashes: sc.spec.k(),
            function_bits: sc.spec.function_bits(),
        });
        Router {
            id,
            peers,
            keepalive_ms,
            shards: (0..shards).map(|i| Shard::new(i, slice_cfg)).collect(),
            liveness,
            sc,
            cell: ReplicaCell::new(),
            next_reqnum: 1,
        }
    }

    /// This proxy's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// How many shard lanes this router partitions state over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared replica-snapshot cell. The driver clones this once at
    /// startup and serves SC-mode candidate selection from it without
    /// ever locking the router.
    pub fn replica_cell(&self) -> Arc<ReplicaCell> {
        self.cell.clone()
    }

    /// Merge every shard's installed replicas into one immutable
    /// snapshot (in configured peer order, matching
    /// [`Router::candidates`]'s probe order) and publish it to the
    /// cell. Called after any shard reports a replica-set change.
    fn publish_replicas(&self) {
        let peers = self
            .peers
            .iter()
            .filter_map(|&p| {
                self.shards[owner_of(p, self.shards.len())]
                    .replica_filter(p)
                    .map(|f| (p, f.clone()))
            })
            .collect();
        self.cell.swap(Arc::new(ReplicaSnapshot::new(peers)));
    }

    /// Feed one event; returns the sends and effects it decided on, in
    /// order. Identical output stream at every shard count.
    pub fn handle(&mut self, now: VirtualTime, event: Event<'_>, dir: &dyn DirectoryView) -> Vec<Output> {
        let mut out = Vec::new();
        match event {
            Event::Datagram { from, data } => self.on_datagram(now, from, data, dir, &mut out),
            Event::Tick => self.on_tick(now, &mut out),
            Event::Stored { url, evicted } => {
                if self.sc.is_some() {
                    self.route_insert(url);
                    for victim in evicted {
                        self.route_remove(victim);
                    }
                }
            }
            Event::Purged { url } => {
                if self.sc.is_some() {
                    self.route_remove(url);
                }
            }
            Event::RequestDone => self.on_request_done(now, &mut out),
        }
        out
    }

    /// Insert `url` into the owning shard's directory slice and bump
    /// the ledger counters (docs, Section V-A freshness).
    fn route_insert(&mut self, url: &str) {
        let key = UrlKey::new(url.as_bytes());
        let shard = shard_of(&key, self.shards.len());
        let mut sink = Vec::new();
        self.shards[shard].handle(ShardEvent::Insert { url: &key }, &mut sink);
        if let Some(sc) = self.sc.as_mut() {
            sc.docs += 1;
            sc.fresh += 1;
        }
        debug_assert!(sink.is_empty(), "directory mutations emit no outputs");
    }

    /// Remove `url` from the owning shard's directory slice.
    fn route_remove(&mut self, url: &str) {
        let key = UrlKey::new(url.as_bytes());
        let shard = shard_of(&key, self.shards.len());
        let mut sink = Vec::new();
        self.shards[shard].handle(ShardEvent::Remove { url: &key }, &mut sink);
        if let Some(sc) = self.sc.as_mut() {
            sc.docs = sc.docs.saturating_sub(1);
        }
        debug_assert!(sink.is_empty(), "directory mutations emit no outputs");
    }

    /// Materialize a shard's routed outputs: effects pass through,
    /// resync decisions become DIRREQ sends (request number allocated
    /// here, so numbering is shard-count independent). Returns whether
    /// the shard reported a replica-set change.
    fn drain_shard_outputs(&mut self, souts: Vec<ShardOutput>, out: &mut Vec<Output>) -> bool {
        let mut replicas_changed = false;
        for sout in souts {
            match sout {
                ShardOutput::Effect(e) => out.push(Output::Effect(e)),
                ShardOutput::Resync {
                    peer,
                    last_generation,
                } => {
                    let request_number = self.next_reqnum;
                    self.next_reqnum = self.next_reqnum.wrapping_add(1);
                    out.push(Output::Send(Send {
                        to: Dest::Sender,
                        msg: IcpMessage::DirReq {
                            request_number,
                            sender: self.id,
                            generation: last_generation,
                        },
                        kind: SendKind::Resync {
                            peer,
                            last_generation,
                        },
                    }));
                }
                ShardOutput::ReplicasChanged => replicas_changed = true,
            }
        }
        replicas_changed
    }

    // -- read-only views the driver needs ---------------------------------

    /// Peers not currently marked failed (what ICP mode queries).
    pub fn live_peers(&self) -> Vec<u32> {
        self.peers
            .iter()
            .filter(|p| self.liveness.get(p).is_none_or(|l| !l.failed))
            .copied()
            .collect()
    }

    /// Peers whose installed summary replica advertises `url`, probed
    /// through the shared `SummaryProbe` path (peers without a synced
    /// replica cannot be candidates).
    pub fn candidates(&self, url: &[u8]) -> Vec<u32> {
        filter_candidates(
            self.peers.iter().filter_map(|&p| {
                self.shards[owner_of(p, self.shards.len())]
                    .replica_filter(p)
                    .map(|f| (p, &**f))
            }),
            url,
            &[],
        )
    }

    /// Is a replica of `peer` currently installed?
    pub fn replica_installed(&self, peer: u32) -> bool {
        self.shards[owner_of(peer, self.shards.len())].replica_installed(peer)
    }

    /// The summary's current generation (SC mode only).
    pub fn generation(&self) -> Option<u32> {
        self.sc.as_ref().map(|sc| sc.generation)
    }

    /// Saturated-counter increments summed over every shard's slice —
    /// the only condition under which the shard OR-merge can diverge
    /// from an unsharded directory (DESIGN.md §13).
    pub fn saturations(&self) -> u64 {
        self.shards.iter().map(Shard::local_saturations).sum()
    }

    // -- event handlers ---------------------------------------------------

    fn on_datagram(
        &mut self,
        now: VirtualTime,
        from: Option<u32>,
        data: &[u8],
        dir: &dyn DirectoryView,
        out: &mut Vec<Output>,
    ) {
        let Ok(msg) = IcpMessage::decode(data) else {
            return; // malformed datagrams are dropped, as in Squid
        };
        if let Some(peer_id) = from {
            if self.mark_heard(now, peer_id) {
                // The peer just came back (Section VI-B): reinitialize
                // both directions through the resync machinery —
                // restate our bitmap so its replica of us recovers, and
                // ask for its bitmap to rebuild the one we dropped at
                // failure time.
                out.push(Output::Effect(Effect::PeerRecovered { peer: peer_id }));
                self.send_full_bitmap(Dest::Sender, out);
                let owner = owner_of(peer_id, self.shards.len());
                let mut souts = Vec::new();
                self.shards[owner].handle(
                    ShardEvent::PeerReturned { now, peer: peer_id },
                    &mut souts,
                );
                if self.drain_shard_outputs(souts, out) {
                    self.publish_replicas();
                }
            }
        }
        match msg {
            IcpMessage::Query {
                request_number,
                url,
                ..
            } => {
                out.push(Output::Effect(Effect::QueryServed));
                let have = dir.contains(&url);
                let reply = if have {
                    IcpMessage::Hit {
                        request_number,
                        url,
                    }
                } else {
                    IcpMessage::Miss {
                        request_number,
                        url,
                    }
                };
                out.push(Output::Send(Send {
                    to: Dest::Sender,
                    msg: reply,
                    kind: SendKind::QueryReply,
                }));
            }
            IcpMessage::Hit { request_number, .. } => {
                out.push(Output::Effect(Effect::ReplyReceived {
                    request_number,
                    hit_from: from,
                    replier: from,
                }));
            }
            IcpMessage::Miss { request_number, .. }
            | IcpMessage::MissNoFetch { request_number, .. }
            | IcpMessage::Denied { request_number, .. }
            | IcpMessage::Err { request_number, .. } => {
                out.push(Output::Effect(Effect::ReplyReceived {
                    request_number,
                    hit_from: None,
                    replier: from,
                }));
            }
            IcpMessage::Secho { .. } => {
                // Keep-alive: nothing beyond the liveness marking above.
            }
            IcpMessage::DirUpdate { sender, update, .. } => {
                self.apply_update(now, sender, update, out);
            }
            IcpMessage::DirReq { .. } => {
                // A peer's replica of us is missing or gapped: restate
                // the whole published bitmap.
                if from.is_some() {
                    self.send_full_bitmap(Dest::Sender, out);
                }
            }
        }
    }

    /// Validate and account a received directory update, then route it
    /// to the shard owning the sender's replica.
    fn apply_update(&mut self, now: VirtualTime, sender: u32, update: DirUpdate, out: &mut Vec<Output>) {
        let Ok(spec) = HashSpec::new(
            update.function_num,
            update.function_bits,
            update.bit_array_size,
        ) else {
            return; // malformed spec: drop, as with any bad datagram
        };
        if !self.peers.contains(&sender) {
            return; // not a configured peer: no replica, no resync
        }
        out.push(Output::Effect(Effect::UpdateReceived));
        let owner = owner_of(sender, self.shards.len());
        let mut souts = Vec::new();
        self.shards[owner].handle(
            ShardEvent::Apply {
                now,
                from: sender,
                spec,
                update,
            },
            &mut souts,
        );
        if self.drain_shard_outputs(souts, out) {
            self.publish_replicas();
        }
    }

    /// Our complete current published bitmap, unicast (answering a
    /// DIRREQ, or reinitializing a recovered peer). No-op outside SC
    /// mode.
    ///
    /// Stamps the *current* sequence number without advancing it: a
    /// unicast bitmap must not create a seq the other peers never see
    /// (they would read the skipped number as a gap). The receiver
    /// resumes expecting `seq + 1`, which is exactly the next delta we
    /// will broadcast.
    fn send_full_bitmap(&mut self, to: Dest, out: &mut Vec<Output>) {
        let request_number = self.next_reqnum;
        let Some(sc) = self.sc.as_ref() else { return };
        self.next_reqnum = request_number.wrapping_add(1);
        out.push(Output::Send(Send {
            to,
            msg: IcpMessage::DirUpdate {
                request_number,
                sender: self.id,
                update: DirUpdate {
                    function_num: sc.spec.k(),
                    function_bits: sc.spec.function_bits(),
                    bit_array_size: sc.spec.table_bits(),
                    generation: sc.generation,
                    seq: sc.seq,
                    content: DirContent::Bitmap(sc.baseline.as_words().to_vec()),
                },
            },
            kind: SendKind::UpdateFull,
        }));
    }

    /// Mark `peer` as heard-from now. Returns `true` if this is a
    /// recovery (the peer was marked failed).
    fn mark_heard(&mut self, now: VirtualTime, peer: u32) -> bool {
        let Some(l) = self.liveness.get_mut(&peer) else {
            return false;
        };
        l.last_heard = now;
        std::mem::replace(&mut l.failed, false)
    }

    fn on_tick(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        if !self.peers.is_empty() {
            out.push(Output::Send(Send {
                to: Dest::AllPeers,
                msg: IcpMessage::Secho {
                    request_number: 0,
                    url: String::new(),
                },
                kind: SendKind::Keepalive,
            }));
        }
        self.sweep_failed_peers(now, out);
        self.heartbeat(out);
    }

    /// Drop the summary replicas of peers we have not heard from
    /// lately. The sweep itself is a control-plane decision; dropping
    /// each replica routes to the shard that owns it.
    fn sweep_failed_peers(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        if self.keepalive_ms == 0 {
            return; // no keep-alives, no liveness signal
        }
        let timeout = Duration::from_millis(self.keepalive_ms) * FAILURE_KEEPALIVE_PERIODS;
        let mut newly_failed = Vec::new();
        for (&id, l) in self.liveness.iter_mut() {
            if !l.failed && now.saturating_since(l.last_heard) > timeout {
                l.failed = true;
                newly_failed.push(id);
            }
        }
        newly_failed.sort_unstable(); // HashMap order must not leak into output order
        let mut replicas_dropped = false;
        for id in newly_failed {
            let owner = owner_of(id, self.shards.len());
            let mut souts = Vec::new();
            self.shards[owner].handle(ShardEvent::DropReplica { peer: id }, &mut souts);
            replicas_dropped |= self.drain_shard_outputs(souts, out);
            out.push(Output::Effect(Effect::PeerFailed { peer: id }));
        }
        if replicas_dropped {
            self.publish_replicas();
        }
    }

    /// SC-mode anti-entropy heartbeat, part of every tick: broadcast an
    /// empty delta carrying the current `(generation, seq)`. In-sync
    /// replicas apply it as a no-op; a receiver that lost the tail of
    /// the update stream (or never got a bitmap) sees the gap and
    /// resyncs — without this, a lost *last* delta would go undetected
    /// until the next publish.
    fn heartbeat(&mut self, out: &mut Vec<Output>) {
        let request_number = self.next_reqnum;
        let Some(sc) = self.sc.as_mut() else { return };
        sc.seq = sc.seq.wrapping_add(1);
        self.next_reqnum = request_number.wrapping_add(1);
        out.push(Output::Send(Send {
            to: Dest::AllPeers,
            msg: IcpMessage::DirUpdate {
                request_number,
                sender: self.id,
                update: DirUpdate {
                    function_num: sc.spec.k(),
                    function_bits: sc.spec.function_bits(),
                    bit_array_size: sc.spec.table_bits(),
                    generation: sc.generation,
                    seq: sc.seq,
                    content: DirContent::Flips(Vec::new()),
                },
            },
            kind: SendKind::UpdateDelta,
        }));
    }

    /// Post-request publish check (SC mode): when the policy says so,
    /// merge the shard slices and fan the update out. The first
    /// datagram carries the seq the publish allocated; when the delta
    /// is split across datagrams, each further chunk allocates the
    /// next seq so the loss of *any* chunk is a detectable gap.
    fn on_request_done(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        let Some(sc) = self.sc.as_mut() else { return };
        sc.requests_since_publish += 1;
        let elapsed_ms = now.saturating_since(sc.last_publish).as_millis() as u64;
        if !sc
            .policy
            .should_publish(sc.fresh, sc.docs, sc.requests_since_publish, elapsed_ms)
        {
            return;
        }
        self.publish_update(now, out);
    }

    /// The publish merge step: OR every shard's directory slice into
    /// one full-width bitmap, diff it against the published baseline,
    /// and broadcast the cheaper of delta flips or the full bitmap —
    /// the same Section V-D wire-cost choice as the unsharded
    /// [`ProxySummary::publish`], applied to the merged array.
    fn publish_update(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        // Merge the slices first (immutable borrow of the shards ends
        // before the ledger mutates).
        let merged = {
            let Some(sc) = self.sc.as_ref() else { return };
            let bits = sc.baseline.len();
            let mut words = vec![0u64; bits.div_ceil(64)];
            for shard in &self.shards {
                if let Some(slice) = shard.local_bits() {
                    for (acc, &w) in words.iter_mut().zip(slice.as_words()) {
                        *acc |= w;
                    }
                }
            }
            BitVec::from_words(bits, words)
        };
        let reqnum = self.next_reqnum;
        self.next_reqnum = reqnum.wrapping_add(1);
        let Some(sc) = self.sc.as_mut() else { return };
        let staleness = UpdatePolicy::staleness(sc.fresh, sc.docs);
        sc.fresh = 0;
        sc.requests_since_publish = 0;
        sc.last_publish = now;
        sc.seq = sc.seq.wrapping_add(1);
        let first_seq = sc.seq;
        let diff = sc.baseline.diff_indices(&merged);
        let delta_bytes = wire_cost::bloom_delta_bytes(diff.len());
        let full_bytes = wire_cost::bloom_full_bytes(sc.baseline.len());
        let full = full_bytes < delta_bytes;
        let flips: Vec<Flip> = if full {
            Vec::new()
        } else {
            diff.iter()
                .map(|&i| {
                    if merged.get(i) {
                        Flip::set(i as u32)
                    } else {
                        Flip::clear(i as u32)
                    }
                })
                .collect()
        };
        sc.baseline = merged;
        // Build the datagram batch under one request number; extra
        // delta chunks advance the seq so a lost chunk is a gap.
        let spec = sc.spec;
        let generation = sc.generation;
        let my_id = self.id;
        let mk = |seq: u32, content| IcpMessage::DirUpdate {
            request_number: reqnum,
            sender: my_id,
            update: DirUpdate {
                function_num: spec.k(),
                function_bits: spec.function_bits(),
                bit_array_size: spec.table_bits(),
                generation,
                seq,
                content,
            },
        };
        let messages: Vec<IcpMessage> = if full {
            vec![mk(
                first_seq,
                DirContent::Bitmap(sc.baseline.as_words().to_vec()),
            )]
        } else if flips.is_empty() {
            // The publish allocated a seq, so something must travel or
            // the next delta reads as a gap; an empty delta is a legal
            // no-op.
            vec![mk(first_seq, DirContent::Flips(Vec::new()))]
        } else {
            flips
                .chunks(FLIPS_PER_DATAGRAM)
                .enumerate()
                .map(|(i, chunk)| {
                    let seq = if i == 0 {
                        first_seq
                    } else {
                        sc.seq = sc.seq.wrapping_add(1);
                        sc.seq
                    };
                    mk(seq, DirContent::Flips(chunk.to_vec()))
                })
                .collect()
        };
        let count = messages.len();
        let kind = if full {
            SendKind::UpdateFull
        } else {
            SendKind::UpdateDelta
        };
        for msg in messages {
            out.push(Output::Send(Send {
                to: Dest::AllPeers,
                msg,
                kind,
            }));
        }
        out.push(Output::Effect(Effect::Published {
            full_bitmap: full,
            staleness,
            messages: count,
            seq: first_seq,
        }));
    }
}

impl DirectoryInspect for Router {
    fn replicated_peers(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .peers
            .iter()
            .copied()
            .filter(|&p| self.shards[owner_of(p, self.shards.len())].replica_installed(p))
            .collect();
        ids.sort_unstable();
        ids
    }

    fn replica_bits(&self, peer: u32) -> Option<BitVec> {
        self.shards[owner_of(peer, self.shards.len())].replica_bits(peer)
    }

    fn published_bits(&self) -> Option<BitVec> {
        self.sc.as_ref().map(|sc| sc.baseline.clone())
    }

    fn cached_docs(&self) -> u64 {
        self.sc.as_ref().map_or(0, |sc| sc.docs)
    }
}

/// Route one `Stored` URL the way the router would, without a router —
/// used by drivers that stripe their cache by the same key space.
pub fn stripe_of(url: &str, stripes: usize) -> usize {
    if stripes <= 1 {
        return 0;
    }
    shard_of(&UrlKey::new(url.as_bytes()), stripes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use summary_cache_core::SummaryKind;

    struct NoDocs;
    impl DirectoryView for NoDocs {
        fn contains(&self, _url: &str) -> bool {
            false
        }
    }

    fn sc_router(id: u32, peers: Vec<u32>, generation: u32, shards: usize) -> Router {
        let kind = SummaryKind::Bloom { load_factor: 8, hashes: 4 };
        let mut summary = ProxySummary::with_expected_docs(kind, 64);
        summary.set_generation(generation);
        Router::new(
            id,
            peers,
            50,
            shards,
            Some((summary, UpdatePolicy::Threshold(0.0))),
            VirtualTime::ZERO,
        )
    }

    fn at(ms: u64) -> VirtualTime {
        VirtualTime::from_micros(ms * 1000)
    }

    /// Drive the same workload at several shard counts and demand the
    /// byte-identical output stream — the unit-level version of the
    /// simnet convergence sweep.
    #[test]
    fn output_stream_is_shard_count_invariant() {
        let encode_all = |outs: &[Output]| -> Vec<Vec<u8>> {
            outs.iter()
                .filter_map(|o| match o {
                    Output::Send(s) => s.msg.encode(99).ok(),
                    Output::Effect(_) => None,
                })
                .collect()
        };
        let run = |shards: usize| -> Vec<Vec<u8>> {
            let mut r = sc_router(1, vec![2, 3], 7, shards);
            let mut wire = Vec::new();
            let evicted: Vec<String> = Vec::new();
            for i in 0..40u32 {
                let url = format!("http://server-{}.example/{i}", i % 5);
                wire.extend(encode_all(&r.handle(
                    at(u64::from(i)),
                    Event::Stored { url: &url, evicted: &evicted },
                    &NoDocs,
                )));
                wire.extend(encode_all(&r.handle(at(u64::from(i)), Event::RequestDone, &NoDocs)));
            }
            let victims = vec!["http://server-1.example/6".to_string()];
            wire.extend(encode_all(&r.handle(
                at(50),
                Event::Stored { url: "http://server-0.example/new", evicted: &victims },
                &NoDocs,
            )));
            wire.extend(encode_all(&r.handle(at(50), Event::RequestDone, &NoDocs)));
            wire.extend(encode_all(&r.handle(at(60), Event::Tick, &NoDocs)));
            wire
        };
        let baseline = run(1);
        assert!(!baseline.is_empty(), "the workload must publish something");
        for shards in [2usize, 4, 8] {
            assert_eq!(run(shards), baseline, "shards={shards} diverged from 1-shard wire");
        }
    }

    #[test]
    fn publish_merges_slices_into_the_ledger() {
        let mut r = sc_router(1, vec![2], 3, 4);
        let evicted: Vec<String> = Vec::new();
        for i in 0..16u32 {
            let url = format!("http://s/{i}");
            r.handle(at(1), Event::Stored { url: &url, evicted: &evicted }, &NoDocs);
        }
        assert_eq!(r.cached_docs(), 16);
        let outs = r.handle(at(2), Event::RequestDone, &NoDocs);
        let published = outs
            .iter()
            .any(|o| matches!(o, Output::Effect(Effect::Published { .. })));
        assert!(published, "threshold 0 publishes on the first request: {outs:?}");
        let bits = r.published_bits().expect("SC mode has a ledger");
        assert!(bits.count_ones() > 0, "the merged baseline holds the inserts");
    }

    #[test]
    fn replicas_partition_by_owner_shard() {
        let mut r = sc_router(1, vec![2, 3, 4, 5], 9, 4);
        // Install a replica for each peer via full bitmaps.
        for p in [2u32, 3, 4, 5] {
            let bitmap = IcpMessage::DirUpdate {
                request_number: 1,
                sender: p,
                update: DirUpdate {
                    function_num: 4,
                    function_bits: 32,
                    bit_array_size: 512,
                    generation: 100 + p,
                    seq: 0,
                    content: DirContent::Bitmap(vec![u64::from(p); 8]),
                },
            }
            .encode(p)
            .expect("encodes");
            r.handle(at(1), Event::Datagram { from: Some(p), data: &bitmap }, &NoDocs);
        }
        assert_eq!(r.replicated_peers(), vec![2, 3, 4, 5]);
        for p in [2u32, 3, 4, 5] {
            let bits = r.replica_bits(p).expect("installed");
            assert_eq!(bits.as_words()[0], u64::from(p), "replica {p} intact");
        }
        // The lock-free snapshot merges across shards in peer order.
        let snap = r.replica_cell().load();
        assert_eq!(
            snap.peers().iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn stripe_of_matches_shard_of() {
        for url in ["http://a/x", "http://b/y", "http://c.example/long/path"] {
            let key = UrlKey::new(url.as_bytes());
            for n in [1usize, 2, 4, 8] {
                assert_eq!(stripe_of(url, n), shard_of(&key, n));
            }
        }
    }
}
