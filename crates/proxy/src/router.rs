//! The shard router: the control plane of the shard-per-core runtime.
//!
//! The router owns everything that must be globally ordered or that
//! crosses shard boundaries, and routes everything else to the owning
//! [`Shard`]:
//!
//! * **request numbers**: one allocator, so DIRREQ/DIRUPDATE numbering
//!   is identical at every shard count;
//! * **peer liveness**: SECHO bookkeeping, the failure sweep, and
//!   recovery reinitialization (Section VI-B);
//! * **the publish ledger**: generation, baseline bitmap, the shared
//!   flip log, and the update policy. A publish is the canonical
//!   *cross-shard merge step*: the shard directory slices are OR-ed
//!   word-wise into one full-width bitmap, diffed against the baseline
//!   — exactly the unsharded [`ProxySummary::publish`] arithmetic —
//!   and the diff is appended to the flip log;
//! * **per-peer update lanes**: each peer consumes the flip log at its
//!   own cursor with its own seq stream, serviced in a stagger slot
//!   derived from `(proxy, peer)` so keep-alive and update fanout
//!   spreads across ticks instead of bursting — the big-N scaling
//!   design (DESIGN.md §14). A lane far enough behind that the delta
//!   backlog outweighs a bitmap gets a full restatement instead,
//!   Golomb–Rice coded when the peer negotiated `DIRFULL_GR` support
//!   via the DIRREQ options word;
//! * **the replica snapshot cell**: whenever any shard reports
//!   [`ShardOutput::ReplicasChanged`], the router re-merges every
//!   shard's installed replicas into one immutable
//!   [`ReplicaSnapshot`] for the lock-free read path.
//!
//! Determinism: the router processes one event at a time and drains
//! each shard's outputs synchronously, so the output stream for a
//! given event sequence is identical for every shard count — that is
//! what lets the simnet assert bit-for-bit equal journals for shards
//! ∈ {1, 2, 4} under the same seed (see DESIGN.md §13 for the full
//! argument, including the counter-saturation caveat).
//!
//! Like the machine it replaces, this module is sans-I/O (sc-check
//! rule 6 covers it): no sockets, no real clocks, no sleeps.

use crate::machine::{
    Dest, DirectoryView, Effect, Event, Output, Send, SendKind, VirtualTime,
    FAILURE_KEEPALIVE_PERIODS, FLIPS_PER_DATAGRAM, GR_SEGMENT_BITS,
};
use crate::replica::{ReplicaCell, ReplicaSnapshot};
use crate::shard::{mix64, owner_of, shard_of, Shard, ShardEvent, ShardOutput};
use sc_bloom::{BitVec, Flip, HashSpec, UrlKey};
use sc_util::fxhash::FxHashMap;
use sc_wire::icp::{
    DirContent, DirUpdate, IcpMessage, DIRFULL_GR_SEGMENT_LEN, DIRUPDATE_HEADER_LEN, HEADER_LEN,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;
use summary_cache_core::{
    filter_candidates, wire_cost, ProxySummary, SummarySnapshot, UpdatePolicy,
};

/// One read-only introspection surface over a directory owner — the
/// router, the [`crate::machine::Machine`] facade, and the live
/// [`crate::daemon::Daemon`] all implement it, so tests and admin
/// endpoints ask one trait instead of reaching through layers.
pub trait DirectoryInspect {
    /// Peer ids whose summary replicas are currently installed (i.e.
    /// synced — a bitmap has arrived and no gap has discarded it).
    fn replicated_peers(&self) -> Vec<u32>;
    /// The bit array of the installed replica of `peer`, if synced.
    fn replica_bits(&self, peer: u32) -> Option<BitVec>;
    /// This proxy's own *published* summary bit array (SC mode only) —
    /// what every in-sync peer replica of this proxy must equal.
    fn published_bits(&self) -> Option<BitVec>;
    /// Documents currently reflected in the local directory.
    fn cached_docs(&self) -> u64;
}

/// Failure-detection state for one peer (Section VI-B: the prototype
/// "leverages Squid's built-in support to detect failure and recovery
/// of neighbor proxies, and reinitializes a failed neighbor's bit array
/// when it recovers").
struct PeerLiveness {
    last_heard: VirtualTime,
    failed: bool,
}

/// The publish ledger: the control-plane half of summary-cache mode.
/// The per-URL counters live in the shards; everything here is global —
/// the published baseline, the shared flip log the per-peer lanes
/// consume, the generation lineage, and the policy counters the publish
/// decision reads. Sequence numbers are *per lane* now: each peer sees
/// its own gap-free seq stream, which is what lets fanout stagger and
/// per-peer full restatements coexist (a unicast send can never create
/// a seq some other peer reads as a gap).
struct ScControl {
    spec: HashSpec,
    /// The published bitmap — the state at the flip log's head; what a
    /// peer whose lane cursor is current holds.
    baseline: BitVec,
    /// Cached `baseline.count_ones()`, refreshed at publish — feeds the
    /// cheap Golomb–Rice size estimate in the per-lane §V-D choice.
    baseline_ones: usize,
    generation: u32,
    policy: UpdatePolicy,
    /// Documents currently in the directory (inserts minus removes).
    docs: u64,
    /// Inserts since the last publish (Section V-A threshold input).
    fresh: u64,
    requests_since_publish: u64,
    last_publish: VirtualTime,
    /// The shared flip log: every publish appends its baseline diff
    /// here; lanes consume it at their own pace and it is trimmed to
    /// the slowest live lane's cursor.
    log: VecDeque<Flip>,
    /// Absolute index of `log.front()` (cursors are absolute, so
    /// trimming never renumbers).
    log_base: u64,
}

/// One peer's update lane: where it stands in the flip log and in its
/// private seq stream.
struct PeerLane {
    /// Seq of the last update datagram sent down this lane.
    seq: u32,
    /// Absolute flip-log index of the next flip this peer has not seen.
    cursor: u64,
    /// The next service must restate the full bitmap (set when the
    /// failure sweep snapped the cursor past flips the peer will never
    /// get as deltas).
    needs_full: bool,
    /// The peer advertised `DIRFULL_GR` support in a DIRREQ options
    /// word; full restatements to it go Golomb–Rice coded.
    accepts_gr: bool,
    /// Which fanout tick services this lane (stable jittered phase,
    /// hashed from `(proxy, peer)`).
    slot: u32,
}

/// The routed protocol state for one proxy: N shards plus the control
/// plane. [`Router::new`] with one shard is exactly the old unsharded
/// machine; the [`crate::machine::Machine`] facade is that special
/// case.
pub struct Router {
    id: u32,
    peers: Vec<u32>,
    keepalive_ms: u64,
    shards: Vec<Shard>,
    liveness: FxHashMap<u32, PeerLiveness>,
    sc: Option<ScControl>,
    /// Per-peer update lanes (every configured peer has one; only SC
    /// mode uses the log fields, but the stagger slot drives keep-alive
    /// fanout in every mode).
    lanes: FxHashMap<u32, PeerLane>,
    /// How many stagger slots the fanout is spread over; a driver must
    /// tick `fanout_slots` times per keep-alive period so every peer is
    /// still serviced once per period.
    fanout_slots: u32,
    /// Ticks seen so far; `tick_no % fanout_slots` is the slot a tick
    /// services.
    tick_no: u64,
    /// The lock-free read-path cell: after replica mutations the router
    /// merges an immutable snapshot of all shards' replicas here, so
    /// SC-mode candidate selection never takes the router lock.
    cell: Arc<ReplicaCell>,
    /// Set when a shard reported a replica-set change that has not yet
    /// been merged into the cell. Deferring the merge to
    /// [`Router::flush_replicas`] is what lets a batch of delta
    /// datagrams share one copy-on-write of each touched filter: an
    /// eager per-datagram publish would re-`Arc` every filter, so every
    /// following `Arc::make_mut` would deep-copy again.
    replicas_dirty: bool,
    next_reqnum: u32,
}

impl Router {
    /// A router for proxy `id` peering with `peers`, partitioned over
    /// `shards` lanes with peer fanout staggered across `fanout_slots`
    /// ticks (both clamp 0 to 1). `sc` carries the summary (with its
    /// generation already set by the driver — fresh randomness is I/O)
    /// and publish policy in summary-cache mode; the summary's
    /// *published* snapshot seeds the ledger, and its Bloom spec sizes
    /// every shard's directory slice. Non-Bloom summaries are not
    /// routable (nothing constructs them here; the unsharded publish
    /// path treated them as unreachable) and degrade to no-SC mode.
    /// `now` initializes every peer's last-heard time.
    pub fn new(
        id: u32,
        peers: Vec<u32>,
        keepalive_ms: u64,
        shards: usize,
        fanout_slots: usize,
        sc: Option<(ProxySummary, UpdatePolicy)>,
        now: VirtualTime,
    ) -> Router {
        let shards = shards.max(1);
        let fanout_slots = fanout_slots.max(1) as u32;
        let liveness = peers
            .iter()
            .map(|&p| {
                (
                    p,
                    PeerLiveness {
                        last_heard: now,
                        failed: false,
                    },
                )
            })
            .collect();
        let sc = sc.and_then(|(summary, policy)| {
            let SummarySnapshot::Bloom { spec, bits } = summary.snapshot_published() else {
                return None;
            };
            Some((summary.seq(), ScControl {
                spec,
                baseline_ones: bits.count_ones(),
                baseline: bits,
                generation: summary.generation(),
                policy,
                docs: summary.docs(),
                fresh: summary.fresh_docs(),
                requests_since_publish: 0,
                last_publish: now,
                log: VecDeque::new(),
                log_base: 0,
            }))
        });
        let lane_seq = sc.as_ref().map_or(0, |&(seq, _)| seq);
        let sc = sc.map(|(_, sc)| sc);
        let lanes = peers
            .iter()
            .map(|&p| {
                (
                    p,
                    PeerLane {
                        seq: lane_seq,
                        cursor: 0,
                        needs_full: false,
                        accepts_gr: false,
                        slot: (mix64((u64::from(id) << 32) | u64::from(p))
                            % u64::from(fanout_slots)) as u32,
                    },
                )
            })
            .collect();
        let slice_cfg = sc.as_ref().map(|sc| sc_bloom::FilterConfig {
            bits: sc.spec.table_bits(),
            hashes: sc.spec.k(),
            function_bits: sc.spec.function_bits(),
        });
        Router {
            id,
            peers,
            keepalive_ms,
            shards: (0..shards).map(|i| Shard::new(i, slice_cfg)).collect(),
            liveness,
            sc,
            lanes,
            fanout_slots,
            tick_no: 0,
            cell: ReplicaCell::new(),
            replicas_dirty: false,
            next_reqnum: 1,
        }
    }

    /// This proxy's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// How many shard lanes this router partitions state over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// How many stagger slots the peer fanout is spread over. A driver
    /// must deliver [`Event::Tick`] `fanout_slots` times per keep-alive
    /// period (i.e. every `keepalive_ms / fanout_slots` ms) so each
    /// peer keeps its once-per-period cadence.
    pub fn fanout_slots(&self) -> u32 {
        self.fanout_slots
    }

    /// The shared replica-snapshot cell. The driver clones this once at
    /// startup and serves SC-mode candidate selection from it without
    /// ever locking the router.
    pub fn replica_cell(&self) -> Arc<ReplicaCell> {
        self.cell.clone()
    }

    /// Publish pending replica changes to the read-path cell, if any
    /// shard reported one since the last flush. Batch drivers call this
    /// once per event batch (and [`Router::handle`] calls it per event
    /// for single-event callers), so N delta datagrams in one batch
    /// cost one snapshot merge and at most one copy-on-write per
    /// touched filter instead of N.
    pub fn flush_replicas(&mut self) {
        if self.replicas_dirty {
            self.replicas_dirty = false;
            self.publish_replicas();
        }
    }

    /// Merge every shard's installed replicas into one immutable
    /// snapshot (in configured peer order, matching
    /// [`Router::candidates`]'s probe order) and publish it to the
    /// cell.
    fn publish_replicas(&self) {
        let peers = self
            .peers
            .iter()
            .filter_map(|&p| {
                self.shards[owner_of(p, self.shards.len())]
                    .replica_filter(p)
                    .map(|f| (p, f.clone()))
            })
            .collect();
        self.cell.swap(Arc::new(ReplicaSnapshot::new(peers)));
    }

    /// Feed one event; returns the sends and effects it decided on, in
    /// order. Identical output stream at every shard count.
    pub fn handle(&mut self, now: VirtualTime, event: Event<'_>, dir: &dyn DirectoryView) -> Vec<Output> {
        let mut out = Vec::new();
        self.handle_into(now, event, dir, &mut out);
        self.flush_replicas();
        out
    }

    /// [`handle`](Self::handle) into a caller-owned output buffer: `out`
    /// is cleared first and its capacity reused, so a warm driver loop
    /// feeds the steady request stream (store / purge / request-done
    /// with nothing to publish) without a single heap allocation.
    ///
    /// Unlike [`handle`](Self::handle), publication of replica changes
    /// to the read-path cell is *deferred*: a batch driver feeds a whole
    /// batch through here and then calls [`Router::flush_replicas`]
    /// once, so N delta datagrams in the batch share one snapshot merge
    /// and at most one copy-on-write per touched filter.
    pub fn handle_into(
        &mut self,
        now: VirtualTime,
        event: Event<'_>,
        dir: &dyn DirectoryView,
        out: &mut Vec<Output>,
    ) {
        out.clear();
        match event {
            Event::Datagram { from, data } => self.on_datagram(now, from, data, dir, out),
            Event::Tick => self.on_tick(now, out),
            Event::Stored { url, evicted } => {
                if self.sc.is_some() {
                    self.route_insert(url);
                    for victim in evicted {
                        self.route_remove(victim);
                    }
                }
            }
            Event::Purged { url } => {
                if self.sc.is_some() {
                    self.route_remove(url);
                }
            }
            Event::RequestDone => self.on_request_done(now, out),
        }
    }

    /// Insert the document keyed by `key` into the owning shard's
    /// directory slice and bump the ledger counters (docs, Section V-A
    /// freshness). The key arrives pre-hashed — no digest happens here.
    fn route_insert(&mut self, key: &UrlKey) {
        let shard = shard_of(key, self.shards.len());
        let mut sink = Vec::new();
        self.shards[shard].handle(ShardEvent::Insert { url: key }, &mut sink);
        if let Some(sc) = self.sc.as_mut() {
            sc.docs += 1;
            sc.fresh += 1;
        }
        debug_assert!(sink.is_empty(), "directory mutations emit no outputs");
    }

    /// Remove the document keyed by `key` from the owning shard's
    /// directory slice.
    fn route_remove(&mut self, key: &UrlKey) {
        let shard = shard_of(key, self.shards.len());
        let mut sink = Vec::new();
        self.shards[shard].handle(ShardEvent::Remove { url: key }, &mut sink);
        if let Some(sc) = self.sc.as_mut() {
            sc.docs = sc.docs.saturating_sub(1);
        }
        debug_assert!(sink.is_empty(), "directory mutations emit no outputs");
    }

    /// Materialize a shard's routed outputs: effects pass through,
    /// resync decisions become DIRREQ sends (request number allocated
    /// here, so numbering is shard-count independent). Returns whether
    /// the shard reported a replica-set change.
    fn drain_shard_outputs(&mut self, souts: Vec<ShardOutput>, out: &mut Vec<Output>) -> bool {
        let mut replicas_changed = false;
        for sout in souts {
            match sout {
                ShardOutput::Effect(e) => out.push(Output::Effect(e)),
                ShardOutput::Resync {
                    peer,
                    last_generation,
                } => {
                    let request_number = self.next_reqnum;
                    self.next_reqnum = self.next_reqnum.wrapping_add(1);
                    out.push(Output::Send(Send {
                        to: Dest::Sender,
                        msg: IcpMessage::DirReq {
                            request_number,
                            sender: self.id,
                            generation: last_generation,
                            // We decode DIRFULL_GR, so every resync we
                            // originate advertises it.
                            accepts_gr: true,
                        },
                        kind: SendKind::Resync {
                            peer,
                            last_generation,
                        },
                    }));
                }
                ShardOutput::ReplicasChanged => replicas_changed = true,
            }
        }
        replicas_changed
    }

    // -- read-only views the driver needs ---------------------------------

    /// Peers not currently marked failed (what ICP mode queries).
    pub fn live_peers(&self) -> Vec<u32> {
        self.peers
            .iter()
            .filter(|p| self.liveness.get(p).is_none_or(|l| !l.failed))
            .copied()
            .collect()
    }

    /// Peers whose installed summary replica advertises `url`, probed
    /// through the shared `SummaryProbe` path (peers without a synced
    /// replica cannot be candidates).
    pub fn candidates(&self, url: &[u8]) -> Vec<u32> {
        filter_candidates(
            self.peers.iter().filter_map(|&p| {
                self.shards[owner_of(p, self.shards.len())]
                    .replica_filter(p)
                    .map(|f| (p, &**f))
            }),
            url,
            &[],
        )
    }

    /// [`candidates`](Self::candidates) through the hash-once key path,
    /// into a caller-owned buffer (cleared first; capacity reused): the
    /// key's memoized index set is derived once and tested against
    /// every installed replica, where the byte path would re-hash the
    /// URL per peer. Same probe order, same result set.
    pub fn candidates_key_into(&self, url: &UrlKey, out: &mut Vec<u32>) {
        out.clear();
        for &p in &self.peers {
            if self.shards[owner_of(p, self.shards.len())]
                .replica_filter(p)
                .is_some_and(|f| f.contains_key(url))
            {
                out.push(p);
            }
        }
    }

    /// Is a replica of `peer` currently installed?
    pub fn replica_installed(&self, peer: u32) -> bool {
        self.shards[owner_of(peer, self.shards.len())].replica_installed(peer)
    }

    /// The summary's current generation (SC mode only).
    pub fn generation(&self) -> Option<u32> {
        self.sc.as_ref().map(|sc| sc.generation)
    }

    /// Saturated-counter increments summed over every shard's slice —
    /// the only condition under which the shard OR-merge can diverge
    /// from an unsharded directory (DESIGN.md §13).
    pub fn saturations(&self) -> u64 {
        self.shards.iter().map(Shard::local_saturations).sum()
    }

    // -- event handlers ---------------------------------------------------

    fn on_datagram(
        &mut self,
        now: VirtualTime,
        from: Option<u32>,
        data: &[u8],
        dir: &dyn DirectoryView,
        out: &mut Vec<Output>,
    ) {
        let Ok(msg) = IcpMessage::decode(data) else {
            return; // malformed datagrams are dropped, as in Squid
        };
        if let Some(peer_id) = from {
            if self.mark_heard(now, peer_id) {
                // The peer just came back (Section VI-B): reinitialize
                // both directions through the resync machinery —
                // restate our bitmap so its replica of us recovers, and
                // ask for its bitmap to rebuild the one we dropped at
                // failure time.
                out.push(Output::Effect(Effect::PeerRecovered { peer: peer_id }));
                self.send_full_to(peer_id, out);
                let owner = owner_of(peer_id, self.shards.len());
                let mut souts = Vec::new();
                self.shards[owner].handle(
                    ShardEvent::PeerReturned { now, peer: peer_id },
                    &mut souts,
                );
                if self.drain_shard_outputs(souts, out) {
                    self.replicas_dirty = true;
                }
            }
        }
        match msg {
            IcpMessage::Query {
                request_number,
                url,
                ..
            } => {
                out.push(Output::Effect(Effect::QueryServed));
                let have = dir.contains(&url);
                let reply = if have {
                    IcpMessage::Hit {
                        request_number,
                        url,
                    }
                } else {
                    IcpMessage::Miss {
                        request_number,
                        url,
                    }
                };
                out.push(Output::Send(Send {
                    to: Dest::Sender,
                    msg: reply,
                    kind: SendKind::QueryReply,
                }));
            }
            IcpMessage::Hit { request_number, .. } => {
                out.push(Output::Effect(Effect::ReplyReceived {
                    request_number,
                    hit_from: from,
                    replier: from,
                }));
            }
            IcpMessage::Miss { request_number, .. }
            | IcpMessage::MissNoFetch { request_number, .. }
            | IcpMessage::Denied { request_number, .. }
            | IcpMessage::Err { request_number, .. } => {
                out.push(Output::Effect(Effect::ReplyReceived {
                    request_number,
                    hit_from: None,
                    replier: from,
                }));
            }
            IcpMessage::Secho { .. } => {
                // Keep-alive: nothing beyond the liveness marking above.
            }
            IcpMessage::DirUpdate { sender, update, .. } => {
                self.apply_update(now, sender, update, out);
            }
            IcpMessage::DirReq { accepts_gr, .. } => {
                // A peer's replica of us is missing or gapped: restate
                // the whole published bitmap. The options word tells us
                // whether this peer decodes compressed restatements —
                // remember it for every later full send to it.
                if let Some(peer) = from {
                    if let Some(lane) = self.lanes.get_mut(&peer) {
                        lane.accepts_gr = accepts_gr;
                    }
                    self.send_full_to(peer, out);
                }
            }
        }
    }

    /// Validate and account a received directory update, then route it
    /// to the shard owning the sender's replica.
    fn apply_update(&mut self, now: VirtualTime, sender: u32, update: DirUpdate, out: &mut Vec<Output>) {
        let Ok(spec) = HashSpec::new(
            update.function_num,
            update.function_bits,
            update.bit_array_size,
        ) else {
            return; // malformed spec: drop, as with any bad datagram
        };
        if !self.peers.contains(&sender) {
            return; // not a configured peer: no replica, no resync
        }
        out.push(Output::Effect(Effect::UpdateReceived));
        let owner = owner_of(sender, self.shards.len());
        let mut souts = Vec::new();
        self.shards[owner].handle(
            ShardEvent::Apply {
                now,
                from: sender,
                spec,
                update,
            },
            &mut souts,
        );
        if self.drain_shard_outputs(souts, out) {
            self.replicas_dirty = true;
        }
    }

    /// Restate the whole published bitmap to `peer` (answering a
    /// DIRREQ, or reinitializing a recovered peer). No-op outside SC
    /// mode. Golomb–Rice coded when the peer negotiated it, raw
    /// otherwise; a coded bitmap too big for one datagram goes out as
    /// several word-aligned segments under one `(generation, seq)`.
    ///
    /// Allocates the lane's *next* sequence number for the restatement:
    /// every datagram that moves a lane forward must burn a number, so
    /// that if the full is lost the following heartbeat's seq no longer
    /// matches the receiver's expectation, the gap fires, and the
    /// resync retries. (A full stamped in place and then lost would
    /// leave the receiver silently stale forever — the cursor has
    /// already snapped past the flips the bitmap was carrying.) The
    /// cursor snaps to the log head — the bitmap already reflects
    /// every logged flip.
    fn send_full_to(&mut self, peer: u32, out: &mut Vec<Output>) {
        let Self { sc, lanes, next_reqnum, id, .. } = self;
        let Some(sc) = sc.as_mut() else { return };
        let Some(lane) = lanes.get_mut(&peer) else { return };
        let request_number = *next_reqnum;
        *next_reqnum = next_reqnum.wrapping_add(1);
        lane.seq = lane.seq.wrapping_add(1);
        lane.cursor = sc.log_base + sc.log.len() as u64;
        lane.needs_full = false;
        for content in full_contents(sc, lane.accepts_gr) {
            out.push(Output::Send(Send {
                to: Dest::Peer(peer),
                msg: IcpMessage::DirUpdate {
                    request_number,
                    sender: *id,
                    update: DirUpdate {
                        function_num: sc.spec.k(),
                        function_bits: sc.spec.function_bits(),
                        bit_array_size: sc.spec.table_bits(),
                        generation: sc.generation,
                        seq: lane.seq,
                        content,
                    },
                },
                kind: SendKind::UpdateFull,
            }));
        }
    }

    /// Bring `peer`'s lane current. The per-lane Section V-D choice: a
    /// full restatement when the lane is marked stale or the logged
    /// backlog now costs more on the wire than a (GR-coded, when
    /// negotiated) bitmap; otherwise the pending flips, chunked per
    /// datagram; otherwise — only when `heartbeat` — the empty
    /// anti-entropy delta that keeps gap detection alive.
    fn service_lane(&mut self, peer: u32, heartbeat: bool, out: &mut Vec<Output>) {
        let Self { sc, lanes, next_reqnum, id, .. } = self;
        let Some(sc) = sc.as_mut() else { return };
        let Some(lane) = lanes.get_mut(&peer) else { return };
        let head = sc.log_base + sc.log.len() as u64;
        let pending = (head - lane.cursor) as usize;
        if pending == 0 && !lane.needs_full && !heartbeat {
            return;
        }
        let full_bytes = if lane.accepts_gr {
            gr_full_bytes_estimate(sc.baseline.len(), sc.baseline_ones)
        } else {
            wire_cost::bloom_full_bytes(sc.baseline.len())
        };
        let full = lane.needs_full
            || (pending > 0 && full_bytes < wire_cost::bloom_delta_bytes(pending));
        let request_number = *next_reqnum;
        *next_reqnum = next_reqnum.wrapping_add(1);
        let spec = sc.spec;
        let generation = sc.generation;
        let sender = *id;
        let mk = move |seq: u32, content: DirContent| IcpMessage::DirUpdate {
            request_number,
            sender,
            update: DirUpdate {
                function_num: spec.k(),
                function_bits: spec.function_bits(),
                bit_array_size: spec.table_bits(),
                generation,
                seq,
                content,
            },
        };
        if full {
            lane.seq = lane.seq.wrapping_add(1);
            lane.cursor = head;
            lane.needs_full = false;
            for content in full_contents(sc, lane.accepts_gr) {
                out.push(Output::Send(Send {
                    to: Dest::Peer(peer),
                    msg: mk(lane.seq, content),
                    kind: SendKind::UpdateFull,
                }));
            }
        } else if pending > 0 {
            let start = (lane.cursor - sc.log_base) as usize;
            let flips: Vec<Flip> = sc.log.iter().skip(start).copied().collect();
            lane.cursor = head;
            for chunk in flips.chunks(FLIPS_PER_DATAGRAM) {
                lane.seq = lane.seq.wrapping_add(1);
                out.push(Output::Send(Send {
                    to: Dest::Peer(peer),
                    msg: mk(lane.seq, DirContent::Flips(chunk.to_vec())),
                    kind: SendKind::UpdateDelta,
                }));
            }
        } else {
            lane.seq = lane.seq.wrapping_add(1);
            out.push(Output::Send(Send {
                to: Dest::Peer(peer),
                msg: mk(lane.seq, DirContent::Flips(Vec::new())),
                kind: SendKind::UpdateDelta,
            }));
        }
    }

    /// Drop log entries every live lane has consumed.
    fn trim_log(&mut self) {
        let Some(sc) = self.sc.as_mut() else { return };
        let head = sc.log_base + sc.log.len() as u64;
        let min = self
            .peers
            .iter()
            .filter(|p| !self.liveness.get(p).is_some_and(|l| l.failed))
            .filter_map(|p| self.lanes.get(p).map(|l| l.cursor))
            .min()
            .unwrap_or(head);
        while sc.log_base < min {
            sc.log.pop_front();
            sc.log_base += 1;
        }
    }

    /// Mark `peer` as heard-from now. Returns `true` if this is a
    /// recovery (the peer was marked failed).
    fn mark_heard(&mut self, now: VirtualTime, peer: u32) -> bool {
        let Some(l) = self.liveness.get_mut(&peer) else {
            return false;
        };
        l.last_heard = now;
        std::mem::replace(&mut l.failed, false)
    }

    /// One fanout tick: service the peers whose stagger slot came up —
    /// keep-alive ping plus (SC mode) the lane update — and run the
    /// failure sweep. With `fanout_slots` slots a driver ticks that
    /// many times per keep-alive period, so each peer keeps its
    /// once-per-period cadence while the per-tick burst shrinks from
    /// N datagrams to ~N/slots.
    fn on_tick(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        let slot = (self.tick_no % u64::from(self.fanout_slots)) as u32;
        self.tick_no = self.tick_no.wrapping_add(1);
        let slot_peers: Vec<u32> = self
            .peers
            .iter()
            .copied()
            .filter(|p| self.lanes.get(p).is_some_and(|l| l.slot == slot))
            .collect();
        for &p in &slot_peers {
            // Failed peers are pinged too: hearing us is how a healed
            // one-way partition recovers.
            out.push(Output::Send(Send {
                to: Dest::Peer(p),
                msg: IcpMessage::Secho {
                    request_number: 0,
                    url: String::new(),
                },
                kind: SendKind::Keepalive,
            }));
        }
        self.sweep_failed_peers(now, out);
        if self.sc.is_some() {
            for &p in &slot_peers {
                if self.liveness.get(&p).is_some_and(|l| l.failed) {
                    continue; // recovery will restate the bitmap instead
                }
                self.service_lane(p, true, out);
            }
            self.trim_log();
        }
    }

    /// Drop the summary replicas of peers we have not heard from
    /// lately. The sweep itself is a control-plane decision; dropping
    /// each replica routes to the shard that owns it.
    fn sweep_failed_peers(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        if self.keepalive_ms == 0 {
            return; // no keep-alives, no liveness signal
        }
        let timeout = Duration::from_millis(self.keepalive_ms) * FAILURE_KEEPALIVE_PERIODS;
        let mut newly_failed = Vec::new();
        for (&id, l) in self.liveness.iter_mut() {
            if !l.failed && now.saturating_since(l.last_heard) > timeout {
                l.failed = true;
                newly_failed.push(id);
            }
        }
        newly_failed.sort_unstable(); // HashMap order must not leak into output order
        let head = self
            .sc
            .as_ref()
            .map_or(0, |sc| sc.log_base + sc.log.len() as u64);
        let mut replicas_dropped = false;
        for id in newly_failed {
            let owner = owner_of(id, self.shards.len());
            let mut souts = Vec::new();
            self.shards[owner].handle(ShardEvent::DropReplica { peer: id }, &mut souts);
            replicas_dropped |= self.drain_shard_outputs(souts, out);
            // A silent peer must not pin the flip log: snap its lane to
            // the head and mark it for a full restatement. Recovery
            // sends the bitmap anyway, so the skipped flips are safe.
            if let Some(lane) = self.lanes.get_mut(&id) {
                lane.cursor = head;
                lane.needs_full = true;
            }
            out.push(Output::Effect(Effect::PeerFailed { peer: id }));
        }
        if replicas_dropped {
            self.replicas_dirty = true;
        }
    }

    /// Post-request publish check (SC mode): when the policy says so,
    /// merge the shard slices and append the diff to the flip log.
    fn on_request_done(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        let Some(sc) = self.sc.as_mut() else { return };
        sc.requests_since_publish += 1;
        let elapsed_ms = now.saturating_since(sc.last_publish).as_millis() as u64;
        if !sc
            .policy
            .should_publish(sc.fresh, sc.docs, sc.requests_since_publish, elapsed_ms)
        {
            return;
        }
        self.publish_update(now, out);
    }

    /// The publish merge step: OR every shard's directory slice into
    /// one full-width bitmap, diff it against the published baseline,
    /// and append the diff to the shared flip log. Nothing is sent yet
    /// unless a lane's backlog reached a full packet — the paper's
    /// "enough changes to fill an IP packet" rule; smaller publishes
    /// coalesce and ride each peer's next staggered fanout tick, so
    /// update cost no longer scales with `publishes × N` bursts.
    fn publish_update(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        // Merge the slices first (immutable borrow of the shards ends
        // before the ledger mutates).
        let merged = {
            let Some(sc) = self.sc.as_ref() else { return };
            let bits = sc.baseline.len();
            let mut words = vec![0u64; bits.div_ceil(64)];
            for shard in &self.shards {
                if let Some(slice) = shard.local_bits() {
                    for (acc, &w) in words.iter_mut().zip(slice.as_words()) {
                        *acc |= w;
                    }
                }
            }
            BitVec::from_words(bits, words)
        };
        let Some(sc) = self.sc.as_mut() else { return };
        let staleness = UpdatePolicy::staleness(sc.fresh, sc.docs);
        sc.fresh = 0;
        sc.requests_since_publish = 0;
        sc.last_publish = now;
        let diff = sc.baseline.diff_indices(&merged);
        let appended = diff.len();
        sc.log.extend(diff.iter().map(|&i| {
            if merged.get(i) {
                Flip::set(i as u32)
            } else {
                Flip::clear(i as u32)
            }
        }));
        sc.baseline = merged;
        sc.baseline_ones = sc.baseline.count_ones();
        let head = sc.log_base + sc.log.len() as u64;
        // Flush any live lane whose backlog now fills a packet; each
        // flushed lane makes its own delta-vs-full choice. With
        // keep-alives disabled nothing ever ticks the fan-out, so every
        // pending lane flushes here instead of coalescing forever.
        let tickless = self.keepalive_ms == 0;
        let flush: Vec<u32> = self
            .peers
            .iter()
            .copied()
            .filter(|p| !self.liveness.get(p).is_some_and(|l| l.failed))
            .filter(|p| {
                self.lanes.get(p).is_some_and(|l| {
                    let pending = (head - l.cursor) as usize;
                    pending >= FLIPS_PER_DATAGRAM || (tickless && (pending > 0 || l.needs_full))
                })
            })
            .collect();
        let before = out.len();
        for p in flush {
            self.service_lane(p, false, out);
        }
        let messages = out[before..]
            .iter()
            .filter(|o| matches!(o, Output::Send(_)))
            .count();
        out.push(Output::Effect(Effect::Published {
            flips: appended,
            staleness,
            messages,
        }));
        self.trim_log();
    }
}

/// The DIRUPDATE payload(s) restating the whole published bitmap:
/// word-aligned Golomb–Rice segments when the receiver negotiated
/// support, one raw bitmap otherwise. Segmentation keeps every coded
/// datagram under [`crate::machine::UDP_PAYLOAD_BUDGET`] (a 200k-bit
/// segment codes to at most ~50 KB even at worst-case fill).
fn full_contents(sc: &ScControl, accepts_gr: bool) -> Vec<DirContent> {
    if !accepts_gr {
        return vec![DirContent::Bitmap(sc.baseline.as_words().to_vec())];
    }
    let len = sc.baseline.len();
    let mut contents = Vec::new();
    let mut start = 0usize;
    while start < len {
        let seg = (len - start).min(GR_SEGMENT_BITS);
        let words = &sc.baseline.as_words()[start / 64..(start + seg).div_ceil(64)];
        let coded = sc_bloom::compress(&BitVec::from_words(seg, words.to_vec()));
        contents.push(DirContent::CompressedBitmap {
            first_bit: start as u32,
            seg_bits: seg as u32,
            ones: coded.ones,
            rice: coded.rice,
            data: coded.data,
        });
        start += seg;
    }
    if contents.is_empty() {
        // Degenerate zero-width spec: fall back to the raw form.
        contents.push(DirContent::Bitmap(Vec::new()));
    }
    contents
}

/// Cheap upper estimate of a Golomb–Rice-coded full restatement's wire
/// bytes, for the per-lane delta-vs-full choice: `ones · (1 + rice)`
/// remainder/terminator bits plus `len >> rice` quotient bits, plus
/// per-segment headers. Avoids actually coding the bitmap on every
/// tick; the estimate errs high, which only delays the switch to full
/// by a few flips.
fn gr_full_bytes_estimate(len: usize, ones: usize) -> usize {
    let rice = usize::from(sc_bloom::rice_parameter(len, ones));
    let coded_bits = ones.saturating_mul(1 + rice) + (len >> rice.min(63));
    let segments = len.div_ceil(GR_SEGMENT_BITS).max(1);
    segments * (HEADER_LEN + DIRUPDATE_HEADER_LEN + DIRFULL_GR_SEGMENT_LEN)
        + coded_bits.div_ceil(8)
}

impl DirectoryInspect for Router {
    fn replicated_peers(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .peers
            .iter()
            .copied()
            .filter(|&p| self.shards[owner_of(p, self.shards.len())].replica_installed(p))
            .collect();
        ids.sort_unstable();
        ids
    }

    fn replica_bits(&self, peer: u32) -> Option<BitVec> {
        self.shards[owner_of(peer, self.shards.len())].replica_bits(peer)
    }

    fn published_bits(&self) -> Option<BitVec> {
        self.sc.as_ref().map(|sc| sc.baseline.clone())
    }

    fn cached_docs(&self) -> u64 {
        self.sc.as_ref().map_or(0, |sc| sc.docs)
    }
}

/// Route one stored document's key the way the router would, without a
/// router — used by drivers that stripe their cache by the same key
/// space. Takes the request's already-computed [`UrlKey`] so striping
/// never re-digests the URL (the hash-once discipline, sc-check rule
/// `hash_once`).
pub fn stripe_of(key: &UrlKey, stripes: usize) -> usize {
    if stripes <= 1 {
        return 0;
    }
    shard_of(key, stripes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use summary_cache_core::SummaryKind;

    struct NoDocs;
    impl DirectoryView for NoDocs {
        fn contains(&self, _url: &str) -> bool {
            false
        }
    }

    fn sc_router(id: u32, peers: Vec<u32>, generation: u32, shards: usize) -> Router {
        sc_router_slotted(id, peers, generation, shards, 1, 64)
    }

    fn sc_router_slotted(
        id: u32,
        peers: Vec<u32>,
        generation: u32,
        shards: usize,
        slots: usize,
        expected_docs: u64,
    ) -> Router {
        let kind = SummaryKind::Bloom { load_factor: 8, hashes: 4 };
        let mut summary = ProxySummary::with_expected_docs(kind, expected_docs);
        summary.set_generation(generation);
        Router::new(
            id,
            peers,
            50,
            shards,
            slots,
            Some((summary, UpdatePolicy::Threshold(0.0))),
            VirtualTime::ZERO,
        )
    }

    fn at(ms: u64) -> VirtualTime {
        VirtualTime::from_micros(ms * 1000)
    }

    fn key(url: &str) -> UrlKey {
        UrlKey::new(url.as_bytes())
    }

    /// Drive the same workload at several shard counts and demand the
    /// byte-identical output stream — the unit-level version of the
    /// simnet convergence sweep.
    #[test]
    fn output_stream_is_shard_count_invariant() {
        let encode_all = |outs: &[Output]| -> Vec<Vec<u8>> {
            outs.iter()
                .filter_map(|o| match o {
                    Output::Send(s) => s.msg.encode(99).ok(),
                    Output::Effect(_) => None,
                })
                .collect()
        };
        let run = |shards: usize| -> Vec<Vec<u8>> {
            let mut r = sc_router(1, vec![2, 3], 7, shards);
            let mut wire = Vec::new();
            let evicted: Vec<UrlKey> = Vec::new();
            for i in 0..40u32 {
                let url = key(&format!("http://server-{}.example/{i}", i % 5));
                wire.extend(encode_all(&r.handle(
                    at(u64::from(i)),
                    Event::Stored { url: &url, evicted: &evicted },
                    &NoDocs,
                )));
                wire.extend(encode_all(&r.handle(at(u64::from(i)), Event::RequestDone, &NoDocs)));
            }
            let victims = vec![key("http://server-1.example/6")];
            wire.extend(encode_all(&r.handle(
                at(50),
                Event::Stored { url: &key("http://server-0.example/new"), evicted: &victims },
                &NoDocs,
            )));
            wire.extend(encode_all(&r.handle(at(50), Event::RequestDone, &NoDocs)));
            wire.extend(encode_all(&r.handle(at(60), Event::Tick, &NoDocs)));
            wire
        };
        let baseline = run(1);
        assert!(!baseline.is_empty(), "the workload must publish something");
        for shards in [2usize, 4, 8] {
            assert_eq!(run(shards), baseline, "shards={shards} diverged from 1-shard wire");
        }
    }

    #[test]
    fn publish_merges_slices_into_the_ledger() {
        let mut r = sc_router(1, vec![2], 3, 4);
        let evicted: Vec<UrlKey> = Vec::new();
        for i in 0..16u32 {
            let url = key(&format!("http://s/{i}"));
            r.handle(at(1), Event::Stored { url: &url, evicted: &evicted }, &NoDocs);
        }
        assert_eq!(r.cached_docs(), 16);
        let outs = r.handle(at(2), Event::RequestDone, &NoDocs);
        let published = outs
            .iter()
            .any(|o| matches!(o, Output::Effect(Effect::Published { .. })));
        assert!(published, "threshold 0 publishes on the first request: {outs:?}");
        let bits = r.published_bits().expect("SC mode has a ledger");
        assert!(bits.count_ones() > 0, "the merged baseline holds the inserts");
    }

    #[test]
    fn replicas_partition_by_owner_shard() {
        let mut r = sc_router(1, vec![2, 3, 4, 5], 9, 4);
        // Install a replica for each peer via full bitmaps.
        for p in [2u32, 3, 4, 5] {
            let bitmap = IcpMessage::DirUpdate {
                request_number: 1,
                sender: p,
                update: DirUpdate {
                    function_num: 4,
                    function_bits: 32,
                    bit_array_size: 512,
                    generation: 100 + p,
                    seq: 0,
                    content: DirContent::Bitmap(vec![u64::from(p); 8]),
                },
            }
            .encode(p)
            .expect("encodes");
            r.handle(at(1), Event::Datagram { from: Some(p), data: &bitmap }, &NoDocs);
        }
        assert_eq!(r.replicated_peers(), vec![2, 3, 4, 5]);
        for p in [2u32, 3, 4, 5] {
            let bits = r.replica_bits(p).expect("installed");
            assert_eq!(bits.as_words()[0], u64::from(p), "replica {p} intact");
        }
        // The lock-free snapshot merges across shards in peer order.
        let snap = r.replica_cell().load();
        assert_eq!(
            snap.peers().iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn stripe_of_matches_shard_of() {
        for url in ["http://a/x", "http://b/y", "http://c.example/long/path"] {
            let key = UrlKey::new(url.as_bytes());
            for n in [1usize, 2, 4, 8] {
                assert_eq!(stripe_of(&key, n), shard_of(&key, n));
            }
        }
    }

    /// The double-digest regression pin: a proxied request costs
    /// exactly ONE MD5 digest of its URL. Everything downstream of
    /// `UrlKey::new` — stripe selection, the ledger insert/remove, the
    /// publish, and the candidate probe — reuses the key and never
    /// re-hashes. `blocks_hashed` is a per-thread counter, so any
    /// stray digest on this path shows up here.
    #[test]
    fn request_path_digests_the_url_exactly_once() {
        let mut r = sc_router(1, vec![2], 7, 4);
        let cell = r.replica_cell();
        let url = "http://server-3.trace.invalid/doc/42";

        let before = sc_md5::blocks_hashed();
        let key = UrlKey::new(url.as_bytes());
        let one_digest = sc_md5::blocks_hashed() - before;
        assert!(one_digest >= 1, "UrlKey::new digests");

        let before = sc_md5::blocks_hashed();
        let _stripe = stripe_of(&key, 4);
        let _ = cell.load().candidates_key(&key);
        r.handle(at(1), Event::Stored { url: &key, evicted: &[] }, &NoDocs);
        r.handle(at(1), Event::RequestDone, &NoDocs);
        r.handle(at(2), Event::Tick, &NoDocs);
        r.handle(at(3), Event::Purged { url: &key }, &NoDocs);
        r.handle(at(3), Event::RequestDone, &NoDocs);
        assert_eq!(
            sc_md5::blocks_hashed() - before,
            0,
            "a request's key must thread through the whole path un-re-hashed"
        );
    }

    /// Collect `(peer, kind)` for every send in a batch.
    fn send_targets(outs: &[Output]) -> Vec<(u32, SendKind)> {
        outs.iter()
            .filter_map(|o| match o {
                Output::Send(Send { to: Dest::Peer(p), kind, .. }) => Some((*p, *kind)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fanout_slots_stagger_peers_across_ticks() {
        let peers = vec![2u32, 3, 4, 5, 6, 7, 8, 9];
        let mut r = sc_router_slotted(1, peers.clone(), 7, 1, 4, 64);
        let mut per_tick: Vec<Vec<u32>> = Vec::new();
        for t in 0..4u64 {
            let outs = r.handle(at(10 + t), Event::Tick, &NoDocs);
            let mut pinged: Vec<u32> = send_targets(&outs)
                .into_iter()
                .filter(|(_, k)| *k == SendKind::Keepalive)
                .map(|(p, _)| p)
                .collect();
            pinged.sort_unstable();
            per_tick.push(pinged);
        }
        let all: Vec<u32> = {
            let mut v: Vec<u32> = per_tick.iter().flatten().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(all, peers, "one service per peer per keep-alive period");
        assert!(
            per_tick.iter().all(|t| t.len() < peers.len()),
            "no tick bursts to the whole peer set: {per_tick:?}"
        );
        // The cycle repeats: tick 4 services the same slot as tick 0.
        let outs = r.handle(at(20), Event::Tick, &NoDocs);
        let mut again: Vec<u32> = send_targets(&outs)
            .into_iter()
            .filter(|(_, k)| *k == SendKind::Keepalive)
            .map(|(p, _)| p)
            .collect();
        again.sort_unstable();
        assert_eq!(again, per_tick[0]);
    }

    #[test]
    fn dirreq_negotiates_compressed_restatements() {
        let mut r = sc_router(1, vec![2, 3], 7, 1);
        let evicted: Vec<UrlKey> = Vec::new();
        for i in 0..16u32 {
            r.handle(
                at(1),
                Event::Stored { url: &key(&format!("http://s/{i}")), evicted: &evicted },
                &NoDocs,
            );
        }
        r.handle(at(1), Event::RequestDone, &NoDocs);
        let published = r.published_bits().expect("ledger");
        let ask = |r: &mut Router, from: u32, accepts_gr: bool| {
            let req = IcpMessage::DirReq {
                request_number: 5,
                sender: from,
                generation: 0,
                accepts_gr,
            }
            .encode(from)
            .expect("encodes");
            r.handle(at(2), Event::Datagram { from: Some(from), data: &req }, &NoDocs)
        };
        // A GR-capable peer gets the coded form, bit-for-bit equal to
        // the published bitmap after decompression.
        let outs = ask(&mut r, 2, true);
        let contents: Vec<_> = outs
            .iter()
            .filter_map(|o| match o {
                Output::Send(Send { msg: IcpMessage::DirUpdate { update, .. }, .. }) => {
                    Some(&update.content)
                }
                _ => None,
            })
            .collect();
        assert_eq!(contents.len(), 1, "small filter fits one segment: {outs:?}");
        let DirContent::CompressedBitmap { seg_bits, ones, rice, data, first_bit } = contents[0]
        else {
            panic!("GR-capable peer must get DIRFULL_GR: {:?}", contents[0]);
        };
        assert_eq!(*first_bit, 0);
        let decoded = sc_bloom::decompress(&sc_bloom::CompressedBits {
            len: *seg_bits,
            ones: *ones,
            rice: *rice,
            data: data.clone(),
        })
        .expect("well-formed code stream");
        assert_eq!(decoded, published, "coded restatement matches the ledger");
        // A legacy peer (options bit clear) falls back to the raw bitmap.
        let outs = ask(&mut r, 3, false);
        assert!(
            outs.iter().any(|o| matches!(
                o,
                Output::Send(Send { msg: IcpMessage::DirUpdate { update, .. }, .. })
                    if matches!(update.content, DirContent::Bitmap(_))
            )),
            "legacy peer must get raw DIRFULL: {outs:?}"
        );
    }

    #[test]
    fn small_publishes_coalesce_until_the_fanout_tick() {
        let mut r = sc_router(1, vec![2, 3], 7, 1);
        let evicted: Vec<UrlKey> = Vec::new();
        // Two publishes, each a handful of flips: nothing goes out at
        // publish time.
        for i in 0..2u32 {
            r.handle(
                at(1),
                Event::Stored { url: &key(&format!("http://s/{i}")), evicted: &evicted },
                &NoDocs,
            );
            let outs = r.handle(at(1), Event::RequestDone, &NoDocs);
            assert!(
                send_targets(&outs).is_empty(),
                "small publishes must coalesce, not burst: {outs:?}"
            );
            assert!(
                outs.iter().any(|o| matches!(
                    o,
                    Output::Effect(Effect::Published { messages: 0, flips, .. }) if *flips > 0
                )),
                "publish still appends to the log: {outs:?}"
            );
        }
        // The tick services every lane with ONE delta each carrying the
        // coalesced flips of both publishes.
        let outs = r.handle(at(2), Event::Tick, &NoDocs);
        for peer in [2u32, 3] {
            let deltas: Vec<_> = outs
                .iter()
                .filter_map(|o| match o {
                    Output::Send(Send {
                        to: Dest::Peer(p),
                        msg: IcpMessage::DirUpdate { update, .. },
                        kind: SendKind::UpdateDelta,
                    }) if *p == peer => Some(update),
                    _ => None,
                })
                .collect();
            assert_eq!(deltas.len(), 1, "one coalesced delta for peer {peer}: {outs:?}");
            let DirContent::Flips(flips) = &deltas[0].content else {
                panic!("delta content expected");
            };
            assert!(!flips.is_empty(), "the delta carries the coalesced flips");
        }
        // Next tick: nothing pending, the empty heartbeat keeps gap
        // detection alive and the seq advances by exactly one.
        let outs = r.handle(at(3), Event::Tick, &NoDocs);
        let heartbeats = outs
            .iter()
            .filter(|o| matches!(
                o,
                Output::Send(Send { msg: IcpMessage::DirUpdate { update, .. }, .. })
                    if matches!(&update.content, DirContent::Flips(f) if f.is_empty())
            ))
            .count();
        assert_eq!(heartbeats, 2, "one empty heartbeat per peer: {outs:?}");
    }

    #[test]
    fn packet_sized_backlog_flushes_at_publish_with_cost_choice() {
        // A big filter (2048 bits) and one huge publish: the backlog
        // tops FLIPS_PER_DATAGRAM, so the publish flushes immediately,
        // and the per-lane cost choice picks the full bitmap (raw: no
        // negotiation has happened) over an oversized delta.
        let mut r = sc_router_slotted(1, vec![2], 7, 1, 1, 256);
        let evicted: Vec<UrlKey> = Vec::new();
        for i in 0..256u32 {
            r.handle(
                at(1),
                Event::Stored { url: &key(&format!("http://s/{i}")), evicted: &evicted },
                &NoDocs,
            );
        }
        let outs = r.handle(at(1), Event::RequestDone, &NoDocs);
        let sends = send_targets(&outs);
        assert_eq!(
            sends,
            vec![(2, SendKind::UpdateFull)],
            "a packet-sized backlog flushes as one full restatement: {outs:?}"
        );
        assert!(
            outs.iter().any(|o| matches!(
                o,
                Output::Effect(Effect::Published { messages: 1, .. })
            )),
            "the effect reports the flush: {outs:?}"
        );
    }
}
