//! Proxy deployment configuration.

use std::net::SocketAddr;
use summary_cache_core::{SummaryKind, UpdatePolicy};

/// Cooperation mode — the three columns of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// No inter-proxy traffic at all.
    NoIcp,
    /// Classic ICP: query every neighbour on every local miss, wait for
    /// the first HIT (or all MISSes / timeout).
    Icp,
    /// Summary-cache enhanced ICP (the paper's SC-ICP): probe local
    /// replicas of peer Bloom summaries, query only candidates, publish
    /// `ICP_OP_DIRUPDATE` deltas under `policy`.
    SummaryCache {
        /// Bloom bits per expected cached document.
        load_factor: u32,
        /// Number of hash functions.
        hashes: u16,
        /// When to publish directory updates.
        policy: UpdatePolicy,
    },
}

impl Mode {
    /// The paper's recommended SC-ICP configuration.
    pub fn summary_cache_default() -> Mode {
        Mode::SummaryCache {
            load_factor: 8,
            hashes: 4,
            policy: UpdatePolicy::Threshold(0.01),
        }
    }

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::NoIcp => "no-ICP",
            Mode::Icp => "ICP",
            Mode::SummaryCache { .. } => "SC-ICP",
        }
    }

    /// The summary kind used by SC-ICP (None otherwise).
    pub fn summary_kind(&self) -> Option<SummaryKind> {
        match *self {
            Mode::SummaryCache {
                load_factor,
                hashes,
                ..
            } => Some(SummaryKind::Bloom {
                load_factor,
                hashes,
            }),
            _ => None,
        }
    }
}

/// A peer proxy's addresses as known to one daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerAddr {
    /// Stable peer id (index in the cluster).
    pub id: u32,
    /// Where the peer listens for ICP datagrams.
    pub icp: SocketAddr,
    /// Where the peer serves HTTP (for remote-hit fetches).
    pub http: SocketAddr,
}

/// Full configuration of one proxy daemon.
///
/// Construct via [`ProxyConfig::builder`]; validation happens once at
/// [`ProxyConfigBuilder::build`], so a daemon never starts on nonsense
/// (zero cache, SC mode with nobody to share with, duplicate peer ids).
/// Fields are read through accessors.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    id: u32,
    cache_bytes: u64,
    expected_docs: u64,
    mode: Mode,
    peers: Vec<PeerAddr>,
    origin: SocketAddr,
    icp_timeout_ms: u64,
    keepalive_ms: u64,
    update_loss: f64,
    shards: usize,
    fanout_slots: usize,
}

impl ProxyConfig {
    /// Start building a configuration (see [`ProxyConfigBuilder`]).
    pub fn builder() -> ProxyConfigBuilder {
        ProxyConfigBuilder::default()
    }

    /// This proxy's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Cache capacity in bytes.
    pub fn cache_bytes(&self) -> u64 {
        self.cache_bytes
    }

    /// Expected cached-document count (sizes the Bloom filter).
    pub fn expected_docs(&self) -> u64 {
        self.expected_docs
    }

    /// Cooperation mode.
    pub fn mode(&self) -> &Mode {
        &self.mode
    }

    /// The other proxies.
    pub fn peers(&self) -> &[PeerAddr] {
        &self.peers
    }

    /// The origin-server emulator every miss ultimately goes to.
    pub fn origin(&self) -> SocketAddr {
        self.origin
    }

    /// How long to wait for ICP replies before treating the query as a
    /// miss everywhere (Squid uses 2 s; experiments use less).
    pub fn icp_timeout_ms(&self) -> u64 {
        self.icp_timeout_ms
    }

    /// Keep-alive (SECHO) interval in milliseconds; 0 disables. Present
    /// in every mode — the paper's no-ICP baseline's only inter-proxy
    /// traffic is keep-alive messages.
    pub fn keepalive_ms(&self) -> u64 {
        self.keepalive_ms
    }

    /// Fault injection: fraction of outgoing directory-update datagrams
    /// (DIRUPDATE / DIRFULL) to silently drop, emulating WAN packet
    /// loss. 0 (the default) disables injection.
    pub fn update_loss(&self) -> f64 {
        self.update_loss
    }

    /// Shard lanes the runtime partitions the directory, cache, and
    /// peer-replica space over (never 0; defaults to the machine's
    /// available parallelism).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Stagger slots the update/keep-alive fan-out is spread over
    /// (never 0; defaults to 1 — every peer serviced on every tick).
    /// With `s` slots the daemon ticks the router `s` times per
    /// keep-alive period and each tick services `1/s` of the peers, so
    /// a big peer group's update bursts de-synchronise instead of all
    /// landing on the same instant.
    pub fn fanout_slots(&self) -> usize {
        self.fanout_slots
    }
}

/// Why a [`ProxyConfigBuilder::build`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `cache_bytes` was 0 — the daemon could cache nothing.
    ZeroCacheBytes,
    /// No origin address was provided.
    MissingOrigin,
    /// Summary-cache mode with an empty peer list: there is nobody to
    /// publish summaries to or probe.
    NoPeersInScMode,
    /// Two peers share this id.
    DuplicatePeerId(u32),
    /// A peer was given this daemon's own id.
    PeerIsSelf(u32),
    /// A query mode (ICP / SC-ICP) with a zero reply timeout would
    /// treat every query as an instant miss everywhere.
    ZeroIcpTimeout,
    /// `update_loss` outside `[0, 1)` (1 would drop every update).
    BadUpdateLoss(f64),
    /// `shards(0)` — the runtime needs at least one lane.
    ZeroShards,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroCacheBytes => write!(f, "cache_bytes must be > 0"),
            ConfigError::MissingOrigin => write!(f, "origin address is required"),
            ConfigError::NoPeersInScMode => {
                write!(f, "summary-cache mode requires at least one peer")
            }
            ConfigError::DuplicatePeerId(id) => write!(f, "duplicate peer id {id}"),
            ConfigError::PeerIsSelf(id) => write!(f, "peer id {id} is this proxy's own id"),
            ConfigError::ZeroIcpTimeout => {
                write!(f, "ICP / SC-ICP mode requires icp_timeout_ms > 0")
            }
            ConfigError::BadUpdateLoss(p) => {
                write!(f, "update_loss {p} outside [0, 1)")
            }
            ConfigError::ZeroShards => write!(f, "shards must be > 0"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`ProxyConfig`]. Unset fields default to the cluster
/// test rig's conventions: id 0, 75 MB cache, no-ICP mode, no peers,
/// 500 ms ICP timeout, 1 s keep-alive; `expected_docs` derives from
/// `cache_bytes` via the paper's 8 KB mean-document assumption when not
/// set explicitly. The origin address is mandatory.
#[derive(Debug, Clone, Default)]
pub struct ProxyConfigBuilder {
    id: u32,
    cache_bytes: Option<u64>,
    expected_docs: Option<u64>,
    mode: Option<Mode>,
    peers: Vec<PeerAddr>,
    origin: Option<SocketAddr>,
    icp_timeout_ms: Option<u64>,
    keepalive_ms: Option<u64>,
    update_loss: Option<f64>,
    shards: Option<usize>,
    fanout_slots: Option<usize>,
}

impl ProxyConfigBuilder {
    /// Set this proxy's id.
    pub fn id(mut self, id: u32) -> Self {
        self.id = id;
        self
    }

    /// Set the cache capacity in bytes.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Override the expected cached-document count (defaults to
    /// `cache_bytes` / 8 KB).
    pub fn expected_docs(mut self, docs: u64) -> Self {
        self.expected_docs = Some(docs);
        self
    }

    /// Set the cooperation mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Replace the peer list.
    pub fn peers(mut self, peers: Vec<PeerAddr>) -> Self {
        self.peers = peers;
        self
    }

    /// Append one peer.
    pub fn peer(mut self, peer: PeerAddr) -> Self {
        self.peers.push(peer);
        self
    }

    /// Set the origin-server address (required).
    pub fn origin(mut self, origin: SocketAddr) -> Self {
        self.origin = Some(origin);
        self
    }

    /// Set the ICP reply timeout.
    pub fn icp_timeout_ms(mut self, ms: u64) -> Self {
        self.icp_timeout_ms = Some(ms);
        self
    }

    /// Set the keep-alive interval (0 disables).
    pub fn keepalive_ms(mut self, ms: u64) -> Self {
        self.keepalive_ms = Some(ms);
        self
    }

    /// Set the injected update-datagram loss fraction (see
    /// [`ProxyConfig::update_loss`]).
    pub fn update_loss(mut self, fraction: f64) -> Self {
        self.update_loss = Some(fraction);
        self
    }

    /// Set the shard-lane count for the runtime (see
    /// [`ProxyConfig::shards`]). 0 is rejected at [`build`]; unset
    /// defaults to `std::thread::available_parallelism`.
    ///
    /// [`build`]: ProxyConfigBuilder::build
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Set the fan-out stagger slot count (see
    /// [`ProxyConfig::fanout_slots`]). 0 is clamped to 1.
    pub fn fanout_slots(mut self, n: usize) -> Self {
        self.fanout_slots = Some(n);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ProxyConfig, ConfigError> {
        let cache_bytes = self.cache_bytes.unwrap_or(75 * 1024 * 1024);
        if cache_bytes == 0 {
            return Err(ConfigError::ZeroCacheBytes);
        }
        let origin = self.origin.ok_or(ConfigError::MissingOrigin)?;
        let mode = self.mode.unwrap_or(Mode::NoIcp);
        let mut seen = std::collections::HashSet::new();
        for p in &self.peers {
            if p.id == self.id {
                return Err(ConfigError::PeerIsSelf(p.id));
            }
            if !seen.insert(p.id) {
                return Err(ConfigError::DuplicatePeerId(p.id));
            }
        }
        if matches!(mode, Mode::SummaryCache { .. }) && self.peers.is_empty() {
            return Err(ConfigError::NoPeersInScMode);
        }
        let icp_timeout_ms = self.icp_timeout_ms.unwrap_or(500);
        if icp_timeout_ms == 0 && !matches!(mode, Mode::NoIcp) {
            return Err(ConfigError::ZeroIcpTimeout);
        }
        let update_loss = self.update_loss.unwrap_or(0.0);
        if !(0.0..1.0).contains(&update_loss) {
            return Err(ConfigError::BadUpdateLoss(update_loss));
        }
        let shards = match self.shards {
            Some(0) => return Err(ConfigError::ZeroShards),
            Some(n) => n,
            None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        };
        Ok(ProxyConfig {
            id: self.id,
            cache_bytes,
            expected_docs: self
                .expected_docs
                .unwrap_or_else(|| summary_cache_core::expected_docs(cache_bytes)),
            mode,
            peers: self.peers,
            origin,
            icp_timeout_ms,
            keepalive_ms: self.keepalive_ms.unwrap_or(1000),
            update_loss,
            shards,
            fanout_slots: self.fanout_slots.unwrap_or(1).max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels() {
        assert_eq!(Mode::NoIcp.label(), "no-ICP");
        assert_eq!(Mode::Icp.label(), "ICP");
        assert_eq!(Mode::summary_cache_default().label(), "SC-ICP");
    }

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().expect("addr")
    }

    fn peer(id: u32) -> PeerAddr {
        PeerAddr {
            id,
            icp: addr(4000 + id as u16),
            http: addr(5000 + id as u16),
        }
    }

    #[test]
    fn builder_fills_defaults_and_derives_docs() {
        let cfg = ProxyConfig::builder()
            .origin(addr(9000))
            .cache_bytes(8 << 20)
            .build()
            .expect("valid");
        assert_eq!(cfg.id(), 0);
        assert_eq!(cfg.cache_bytes(), 8 << 20);
        assert_eq!(cfg.expected_docs(), 1024, "8 MB / 8 KB docs");
        assert_eq!(*cfg.mode(), Mode::NoIcp);
        assert_eq!(cfg.icp_timeout_ms(), 500);
        assert_eq!(cfg.keepalive_ms(), 1000);
        assert_eq!(cfg.update_loss(), 0.0);
        assert!(cfg.peers().is_empty());
    }

    #[test]
    fn builder_rejects_nonsense() {
        let b = || ProxyConfig::builder().origin(addr(9000));
        assert_eq!(
            b().cache_bytes(0).build().unwrap_err(),
            ConfigError::ZeroCacheBytes
        );
        assert_eq!(
            ProxyConfig::builder().build().unwrap_err(),
            ConfigError::MissingOrigin
        );
        assert_eq!(
            b().mode(Mode::summary_cache_default()).build().unwrap_err(),
            ConfigError::NoPeersInScMode
        );
        assert_eq!(
            b().peer(peer(1)).peer(peer(1)).build().unwrap_err(),
            ConfigError::DuplicatePeerId(1)
        );
        assert_eq!(
            b().id(3).peer(peer(3)).build().unwrap_err(),
            ConfigError::PeerIsSelf(3)
        );
        assert_eq!(
            b().mode(Mode::Icp).icp_timeout_ms(0).build().unwrap_err(),
            ConfigError::ZeroIcpTimeout
        );
        // A zero timeout is fine when nothing ever queries.
        assert!(b().icp_timeout_ms(0).build().is_ok());
        assert_eq!(
            b().update_loss(1.0).build().unwrap_err(),
            ConfigError::BadUpdateLoss(1.0)
        );
        assert_eq!(
            b().update_loss(-0.1).build().unwrap_err(),
            ConfigError::BadUpdateLoss(-0.1)
        );
        assert!(b().update_loss(0.05).build().is_ok());
        assert_eq!(b().shards(0).build().unwrap_err(), ConfigError::ZeroShards);
        assert_eq!(b().shards(4).build().expect("valid").shards(), 4);
        assert!(b().build().expect("valid").shards() >= 1, "default is available parallelism");
        let err = ConfigError::DuplicatePeerId(7).to_string();
        assert!(err.contains("7"), "{err}");
    }

    #[test]
    fn summary_kind_only_for_sc() {
        assert!(Mode::NoIcp.summary_kind().is_none());
        assert!(Mode::Icp.summary_kind().is_none());
        assert_eq!(
            Mode::summary_cache_default().summary_kind(),
            Some(SummaryKind::Bloom {
                load_factor: 8,
                hashes: 4
            })
        );
    }
}
