//! Proxy deployment configuration.

use std::net::SocketAddr;
use summary_cache_core::{SummaryKind, UpdatePolicy};

/// Cooperation mode — the three columns of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// No inter-proxy traffic at all.
    NoIcp,
    /// Classic ICP: query every neighbour on every local miss, wait for
    /// the first HIT (or all MISSes / timeout).
    Icp,
    /// Summary-cache enhanced ICP (the paper's SC-ICP): probe local
    /// replicas of peer Bloom summaries, query only candidates, publish
    /// `ICP_OP_DIRUPDATE` deltas under `policy`.
    SummaryCache {
        /// Bloom bits per expected cached document.
        load_factor: u32,
        /// Number of hash functions.
        hashes: u16,
        /// When to publish directory updates.
        policy: UpdatePolicy,
    },
}

impl Mode {
    /// The paper's recommended SC-ICP configuration.
    pub fn summary_cache_default() -> Mode {
        Mode::SummaryCache {
            load_factor: 8,
            hashes: 4,
            policy: UpdatePolicy::Threshold(0.01),
        }
    }

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::NoIcp => "no-ICP",
            Mode::Icp => "ICP",
            Mode::SummaryCache { .. } => "SC-ICP",
        }
    }

    /// The summary kind used by SC-ICP (None otherwise).
    pub fn summary_kind(&self) -> Option<SummaryKind> {
        match *self {
            Mode::SummaryCache {
                load_factor,
                hashes,
                ..
            } => Some(SummaryKind::Bloom {
                load_factor,
                hashes,
            }),
            _ => None,
        }
    }
}

/// A peer proxy's addresses as known to one daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerAddr {
    /// Stable peer id (index in the cluster).
    pub id: u32,
    /// Where the peer listens for ICP datagrams.
    pub icp: SocketAddr,
    /// Where the peer serves HTTP (for remote-hit fetches).
    pub http: SocketAddr,
}

/// Full configuration of one proxy daemon.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// This proxy's id.
    pub id: u32,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Expected cached-document count (sizes the Bloom filter); derive
    /// from `cache_bytes / mean doc size` for the workload.
    pub expected_docs: u64,
    /// Cooperation mode.
    pub mode: Mode,
    /// The other proxies.
    pub peers: Vec<PeerAddr>,
    /// The origin-server emulator every miss ultimately goes to.
    pub origin: SocketAddr,
    /// How long to wait for ICP replies before treating the query as a
    /// miss everywhere (Squid uses 2 s; experiments use less).
    pub icp_timeout_ms: u64,
    /// Keep-alive (SECHO) interval in milliseconds; 0 disables. Present
    /// in every mode — the paper's no-ICP baseline's only inter-proxy
    /// traffic is keep-alive messages.
    pub keepalive_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels() {
        assert_eq!(Mode::NoIcp.label(), "no-ICP");
        assert_eq!(Mode::Icp.label(), "ICP");
        assert_eq!(Mode::summary_cache_default().label(), "SC-ICP");
    }

    #[test]
    fn summary_kind_only_for_sc() {
        assert!(Mode::NoIcp.summary_kind().is_none());
        assert!(Mode::Icp.summary_kind().is_none());
        assert_eq!(
            Mode::summary_cache_default().summary_kind(),
            Some(SummaryKind::Bloom {
                load_factor: 8,
                hashes: 4
            })
        );
    }
}
