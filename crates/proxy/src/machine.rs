//! The replication/ICP protocol as a **sans-I/O state machine**.
//!
//! Everything the daemon *decides* — how to answer a query, when a
//! delta applies to a replica and when it forces a resync, which peers
//! are alive, what a keep-alive tick broadcasts, when the summary
//! publishes — lives here, as a pure function of
//! `(now: VirtualTime, event)`:
//!
//! * **inputs** are an incoming datagram, a timer tick, a local cache
//!   insert/evict, or a completed client request;
//! * **outputs** are a list of `(dest, datagram)` sends plus
//!   journal/metric [`Effect`]s.
//!
//! There are no sockets, no `Instant::now()`, and no sleeps in this
//! module (the sc-check `sans_io` rule enforces exactly that): the live
//! daemon feeds the machine from its real UDP socket and clock, and the
//! deterministic [`crate::simnet`] harness feeds it from a virtual
//! clock and a seeded fault plan. Both drive the *same* decision logic,
//! which is what makes a simnet seed a faithful protocol schedule.
//!
//! Time enters only as [`VirtualTime`] values the caller supplies;
//! durations (resync backoff, failure timeout) are plain arithmetic on
//! those values. Randomness never enters at all — loss injection and
//! generation freshness are the *caller's* business (the daemon uses
//! its seeded loss RNG and the wall clock; the simnet uses its fault
//! plan and deterministic generation numbers).

use crate::replica::{ReplicaCell, ReplicaSnapshot};
use sc_bloom::{BitVec, BloomFilter, HashSpec};
use sc_util::fxhash::FxHashMap;
use sc_wire::icp::{DirContent, DirUpdate, IcpMessage};
use std::sync::Arc;
use std::time::Duration;
use summary_cache_core::{filter_candidates, ProxySummary, PublishOutcome, UpdatePolicy};

/// Max bit flips per DIRUPDATE datagram (keeps messages near one MTU,
/// as the prototype "sends updates whenever there are enough changes to
/// fill an IP packet").
pub const FLIPS_PER_DATAGRAM: usize = 320;

/// Minimum spacing between DIRREQs to one peer: resyncs are idempotent,
/// but a burst of gapped deltas must not become a burst of bitmap
/// requests (each answer is a full bitmap).
pub const RESYNC_BACKOFF: Duration = Duration::from_millis(150);

/// Failure timeout: a peer silent for this many keep-alive periods is
/// considered failed and its summary replica is dropped (probes then
/// treat it as empty — no candidates, no queries).
pub const FAILURE_KEEPALIVE_PERIODS: u32 = 3;

/// A point on the machine's clock: microseconds since an arbitrary
/// epoch chosen by the driver (daemon start, simulation start). The
/// machine only ever *subtracts* two of these — absolute values carry
/// no meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The driver's epoch.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// A time `us` microseconds past the epoch.
    pub fn from_micros(us: u64) -> VirtualTime {
        VirtualTime(us)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This time advanced by `d` (saturating).
    pub fn saturating_add(self, d: Duration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(d.as_micros() as u64))
    }

    /// Elapsed duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: VirtualTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

/// One input to the machine.
#[derive(Debug, Clone, Copy)]
pub enum Event<'a> {
    /// A datagram arrived. `from` is the sending peer's id when the
    /// source address maps to a configured peer (replies to unknown
    /// sources are still served, but carry no liveness or replica
    /// meaning).
    Datagram {
        /// Sending peer, if the source address is a configured peer.
        from: Option<u32>,
        /// The raw datagram bytes (decoded inside the machine).
        data: &'a [u8],
    },
    /// One keep-alive period elapsed: ping peers, sweep liveness, and
    /// (SC mode) broadcast the anti-entropy heartbeat.
    Tick,
    /// A document was stored in the local cache, evicting `evicted`.
    Stored {
        /// URL now cached.
        url: &'a str,
        /// Victims the store pushed out.
        evicted: &'a [String],
    },
    /// A stale local copy was purged from the cache.
    Purged {
        /// URL no longer cached.
        url: &'a str,
    },
    /// A client request finished (drives the update publish policy).
    RequestDone,
}

/// Where a datagram goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// One configured peer, by id.
    Peer(u32),
    /// Every configured peer (the driver encodes once and fans out).
    AllPeers,
    /// Reply to the source of the datagram currently being handled.
    Sender,
}

/// What a send *is*, so the driver can apply the right accounting (and
/// the update-loss fault knob, which only ever drops updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendKind {
    /// HIT/MISS answer to an ICP query.
    QueryReply,
    /// SECHO keep-alive ping.
    Keepalive,
    /// Delta (bit-flip) DIRUPDATE — includes the empty heartbeat delta.
    UpdateDelta,
    /// Full-bitmap DIRUPDATE (broadcast publish or unicast resync
    /// answer / recovery reinitialization).
    UpdateFull,
    /// DIRREQ asking `peer` to restate its bitmap.
    Resync {
        /// The publisher being asked.
        peer: u32,
        /// The generation last seen from it (0 = none), for the journal.
        last_generation: u32,
    },
}

impl SendKind {
    /// Is this datagram subject to the injected update-loss knob?
    pub fn is_update(self) -> bool {
        matches!(self, SendKind::UpdateDelta | SendKind::UpdateFull)
    }
}

/// One datagram the driver must put on the wire.
#[derive(Debug, Clone)]
pub struct Send {
    /// Destination.
    pub to: Dest,
    /// The message (the driver encodes it; an oversized encode is
    /// silently skipped, the documented full-bitmap size limit).
    pub msg: IcpMessage,
    /// Accounting class.
    pub kind: SendKind,
}

/// A journal/metric effect the driver must apply. Each variant maps
/// onto exactly the counters and journal records the pre-refactor
/// daemon emitted inline.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// A directory update from a configured peer was accepted for
    /// processing (`sc_updates_received_total`).
    UpdateReceived,
    /// An ICP query was answered (`sc_icp_queries_served_total`).
    QueryServed,
    /// A replica was (re)installed from a full bitmap.
    ReplicaInstalled {
        /// The publisher.
        peer: u32,
        /// True when no replica existed before (first contact).
        first_contact: bool,
        /// Installed generation.
        generation: u32,
        /// Seq the bitmap was stamped with.
        seq: u32,
        /// Filter size in bits.
        bits: u32,
    },
    /// A lost/reordered update was detected and an installed replica
    /// was discarded pending resync.
    UpdateGap {
        /// The publisher whose replica was discarded.
        peer: u32,
        /// Generation the offending datagram carried.
        got_generation: u32,
        /// Seq the offending datagram carried.
        got_seq: u32,
        /// Generation the replica was installed under.
        expected_generation: u32,
        /// Seq the replica expected next.
        expected_seq: u32,
    },
    /// A peer went silent past the failure timeout; its replica (if
    /// any) was dropped.
    PeerFailed {
        /// The silent peer.
        peer: u32,
    },
    /// A failed peer was heard again; reinitialization sends follow in
    /// the same output batch.
    PeerRecovered {
        /// The returning peer.
        peer: u32,
    },
    /// The local summary published an update.
    Published {
        /// Full bitmap (true) or delta (false).
        full_bitmap: bool,
        /// Staleness at publish time.
        staleness: f64,
        /// Datagrams the publish was split into.
        messages: usize,
        /// Seq of the first datagram.
        seq: u32,
    },
    /// An ICP reply arrived for an outstanding query; the driver owns
    /// the waiting-request table and must dispatch it.
    ReplyReceived {
        /// The query's request number.
        request_number: u32,
        /// `Some(peer)` on a HIT from a configured peer.
        hit_from: Option<u32>,
        /// The replying peer (for RTT attribution), when known.
        replier: Option<u32>,
    },
}

/// One machine output: a send or an effect, in the order the old
/// inline code performed them.
#[derive(Debug, Clone)]
pub enum Output {
    /// Put a datagram on the wire.
    Send(Send),
    /// Apply a journal/metric effect.
    Effect(Effect),
}

/// The machine's read-only view of the local cache directory, used to
/// answer ICP queries. The daemon backs this with the real
/// [`sc_cache::WebCache`]; the simnet backs it with a set model.
pub trait DirectoryView {
    /// Is `url` currently cached locally?
    fn contains(&self, url: &str) -> bool;
}

/// Summary-cache mode state.
struct ScCore {
    summary: ProxySummary,
    policy: UpdatePolicy,
    requests_since_publish: u64,
    last_publish: VirtualTime,
}

/// Failure-detection state for one peer (Section VI-B: the prototype
/// "leverages Squid's built-in support to detect failure and recovery
/// of neighbor proxies, and reinitializes a failed neighbor's bit array
/// when it recovers").
struct PeerLiveness {
    last_heard: VirtualTime,
    failed: bool,
}

/// One peer's summary replica and the sequencing state guarding it.
///
/// A replica is only ever *installed* from a full bitmap; delta flips
/// apply only when they carry exactly the expected `(generation, seq)`.
/// Until a bitmap arrives (`filter` is `None`) probes treat the peer as
/// empty — flips are never guessed onto an empty array.
struct ReplicaState {
    /// The installed replica; `None` on first contact or after a
    /// detected gap discarded the previous one. Shared by `Arc` with
    /// the published [`ReplicaSnapshot`]s; delta flips copy-on-write
    /// (`Arc::make_mut`) only while a reader holds an old snapshot.
    filter: Option<Arc<BloomFilter>>,
    /// Generation of the installed (or last seen) publisher bitmap.
    generation: u32,
    /// Seq the next delta from this peer must carry.
    expected_seq: u32,
    /// When a DIRREQ was last sent, for backoff.
    last_resync_request: Option<VirtualTime>,
}

impl Default for ReplicaState {
    fn default() -> Self {
        ReplicaState {
            filter: None,
            generation: 0,
            expected_seq: 0,
            last_resync_request: None,
        }
    }
}

/// The protocol state machine for one proxy.
pub struct Machine {
    id: u32,
    peers: Vec<u32>,
    keepalive_ms: u64,
    sc: Option<ScCore>,
    replicas: FxHashMap<u32, ReplicaState>,
    liveness: FxHashMap<u32, PeerLiveness>,
    /// The lock-free read-path cell: after every replica mutation the
    /// machine publishes an immutable snapshot here, so SC-mode
    /// candidate selection never takes the machine lock.
    cell: Arc<ReplicaCell>,
    next_reqnum: u32,
}

impl Machine {
    /// A machine for proxy `id` peering with `peers`. `sc` carries the
    /// summary (with its generation already set by the driver — fresh
    /// randomness is I/O) and publish policy in summary-cache mode.
    /// `now` initializes every peer's last-heard time.
    pub fn new(
        id: u32,
        peers: Vec<u32>,
        keepalive_ms: u64,
        sc: Option<(ProxySummary, UpdatePolicy)>,
        now: VirtualTime,
    ) -> Machine {
        let liveness = peers
            .iter()
            .map(|&p| {
                (
                    p,
                    PeerLiveness {
                        last_heard: now,
                        failed: false,
                    },
                )
            })
            .collect();
        Machine {
            id,
            peers,
            keepalive_ms,
            sc: sc.map(|(summary, policy)| ScCore {
                summary,
                policy,
                requests_since_publish: 0,
                last_publish: now,
            }),
            replicas: FxHashMap::default(),
            liveness,
            cell: ReplicaCell::new(),
            next_reqnum: 1,
        }
    }

    /// This proxy's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The shared replica-snapshot cell. The driver clones this once at
    /// startup and serves SC-mode candidate selection from it without
    /// ever locking the machine.
    pub fn replica_cell(&self) -> Arc<ReplicaCell> {
        self.cell.clone()
    }

    /// Publish the current replica set as an immutable snapshot (in
    /// configured peer order, matching [`Machine::candidates`]'s probe
    /// order). Called after every mutation of `replicas`.
    fn publish_replicas(&self) {
        let peers = self
            .peers
            .iter()
            .filter_map(|&p| {
                self.replicas
                    .get(&p)
                    .and_then(|st| st.filter.as_ref())
                    .map(|f| (p, f.clone()))
            })
            .collect();
        self.cell.swap(Arc::new(ReplicaSnapshot::new(peers)));
    }

    /// Feed one event; returns the sends and effects it decided on, in
    /// order.
    pub fn handle(&mut self, now: VirtualTime, event: Event<'_>, dir: &dyn DirectoryView) -> Vec<Output> {
        let mut out = Vec::new();
        match event {
            Event::Datagram { from, data } => self.on_datagram(now, from, data, dir, &mut out),
            Event::Tick => self.on_tick(now, &mut out),
            Event::Stored { url, evicted } => {
                if let Some(sc) = self.sc.as_mut() {
                    sc.summary.insert(url.as_bytes(), server_of(url));
                    for victim in evicted {
                        sc.summary.remove(victim.as_bytes(), server_of(victim));
                    }
                }
            }
            Event::Purged { url } => {
                if let Some(sc) = self.sc.as_mut() {
                    sc.summary.remove(url.as_bytes(), server_of(url));
                }
            }
            Event::RequestDone => self.on_request_done(now, &mut out),
        }
        out
    }

    // -- read-only views the driver needs ---------------------------------

    /// Peers not currently marked failed (what ICP mode queries).
    pub fn live_peers(&self) -> Vec<u32> {
        self.peers
            .iter()
            .filter(|p| self.liveness.get(p).is_none_or(|l| !l.failed))
            .copied()
            .collect()
    }

    /// Peers whose installed summary replica advertises `url`, probed
    /// through the shared `SummaryProbe` path (peers without a synced
    /// replica cannot be candidates).
    pub fn candidates(&self, url: &[u8]) -> Vec<u32> {
        filter_candidates(
            self.peers.iter().filter_map(|&p| {
                self.replicas
                    .get(&p)
                    .and_then(|st| st.filter.as_deref())
                    .map(|f| (p, f))
            }),
            url,
            &[],
        )
    }

    /// Peer ids whose summary replicas are currently installed (i.e.
    /// synced — a bitmap has arrived and no gap has discarded it).
    pub fn replicated_peers(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .replicas
            .iter()
            .filter(|(_, st)| st.filter.is_some())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Is a replica of `peer` currently installed?
    pub fn replica_installed(&self, peer: u32) -> bool {
        self.replicas
            .get(&peer)
            .is_some_and(|st| st.filter.is_some())
    }

    /// The bit array of the installed replica of `peer`, if synced.
    pub fn replica_bits(&self, peer: u32) -> Option<BitVec> {
        self.replicas
            .get(&peer)
            .and_then(|st| st.filter.as_deref())
            .map(|f| f.bits().clone())
    }

    /// This proxy's own *published* summary bit array (SC mode only) —
    /// what every in-sync peer replica of this proxy must equal.
    pub fn published_bits(&self) -> Option<BitVec> {
        let sc = self.sc.as_ref()?;
        match sc.summary.snapshot_published() {
            summary_cache_core::SummarySnapshot::Bloom { bits, .. } => Some(bits),
            _ => None,
        }
    }

    /// The summary's current generation (SC mode only).
    pub fn generation(&self) -> Option<u32> {
        self.sc.as_ref().map(|sc| sc.summary.generation())
    }

    // -- event handlers ---------------------------------------------------

    fn on_datagram(
        &mut self,
        now: VirtualTime,
        from: Option<u32>,
        data: &[u8],
        dir: &dyn DirectoryView,
        out: &mut Vec<Output>,
    ) {
        let Ok(msg) = IcpMessage::decode(data) else {
            return; // malformed datagrams are dropped, as in Squid
        };
        if let Some(peer_id) = from {
            if self.mark_heard(now, peer_id) {
                // The peer just came back (Section VI-B): reinitialize
                // both directions through the resync machinery —
                // restate our bitmap so its replica of us recovers, and
                // ask for its bitmap to rebuild the one we dropped at
                // failure time.
                out.push(Output::Effect(Effect::PeerRecovered { peer: peer_id }));
                self.send_full_bitmap(Dest::Sender, out);
                let st = self.replicas.entry(peer_id).or_default();
                Self::request_resync(st, now, &mut self.next_reqnum, self.id, peer_id, out);
            }
        }
        match msg {
            IcpMessage::Query {
                request_number,
                url,
                ..
            } => {
                out.push(Output::Effect(Effect::QueryServed));
                let have = dir.contains(&url);
                let reply = if have {
                    IcpMessage::Hit {
                        request_number,
                        url,
                    }
                } else {
                    IcpMessage::Miss {
                        request_number,
                        url,
                    }
                };
                out.push(Output::Send(Send {
                    to: Dest::Sender,
                    msg: reply,
                    kind: SendKind::QueryReply,
                }));
            }
            IcpMessage::Hit { request_number, .. } => {
                out.push(Output::Effect(Effect::ReplyReceived {
                    request_number,
                    hit_from: from,
                    replier: from,
                }));
            }
            IcpMessage::Miss { request_number, .. }
            | IcpMessage::MissNoFetch { request_number, .. }
            | IcpMessage::Denied { request_number, .. }
            | IcpMessage::Err { request_number, .. } => {
                out.push(Output::Effect(Effect::ReplyReceived {
                    request_number,
                    hit_from: None,
                    replier: from,
                }));
            }
            IcpMessage::Secho { .. } => {
                // Keep-alive: nothing beyond the liveness marking above.
            }
            IcpMessage::DirUpdate { sender, update, .. } => {
                self.apply_update(now, sender, update, out);
            }
            IcpMessage::DirReq { .. } => {
                // A peer's replica of us is missing or gapped: restate
                // the whole published bitmap.
                if from.is_some() {
                    self.send_full_bitmap(Dest::Sender, out);
                }
            }
        }
    }

    /// Apply a received directory update to the sender's local replica.
    ///
    /// Sequencing discipline: a replica is only ever *installed* from a
    /// full bitmap, and delta flips apply only when they carry exactly
    /// the expected `(generation, seq)`. Anything else is evidence of
    /// loss, reordering, or a publisher restart — the replica is
    /// discarded and a DIRREQ asks the publisher to restate its bitmap.
    fn apply_update(&mut self, now: VirtualTime, sender: u32, update: DirUpdate, out: &mut Vec<Output>) {
        let Ok(spec) = HashSpec::new(
            update.function_num,
            update.function_bits,
            update.bit_array_size,
        ) else {
            return; // malformed spec: drop, as with any bad datagram
        };
        if !self.peers.contains(&sender) {
            return; // not a configured peer: no replica, no resync
        }
        out.push(Output::Effect(Effect::UpdateReceived));
        let st = self.replicas.entry(sender).or_default();
        // Did this update change the replica set? Republish the
        // lock-free snapshot afterwards if so.
        let mut replicas_changed = false;
        match update.content {
            DirContent::Bitmap(words) => {
                if words.len() != (spec.table_bits() as usize).div_ceil(64) {
                    return;
                }
                // Mask any overhang bits the sender left set.
                let mut words = words;
                let rem = spec.table_bits() as usize % 64;
                if rem != 0 {
                    if let Some(last) = words.last_mut() {
                        *last &= (1u64 << rem) - 1;
                    }
                }
                let first_contact = st.filter.is_none();
                st.filter = Some(Arc::new(BloomFilter::from_parts(
                    spec,
                    BitVec::from_words(spec.table_bits() as usize, words),
                )));
                st.generation = update.generation;
                st.expected_seq = update.seq.wrapping_add(1);
                st.last_resync_request = None;
                replicas_changed = true;
                out.push(Output::Effect(Effect::ReplicaInstalled {
                    peer: sender,
                    first_contact,
                    generation: update.generation,
                    seq: update.seq,
                    bits: spec.table_bits(),
                }));
            }
            DirContent::Flips(flips) => {
                let in_sync = st.generation == update.generation
                    && st.filter.as_deref().is_some_and(|f| f.spec() == spec);
                if in_sync && update.seq == st.expected_seq {
                    st.expected_seq = st.expected_seq.wrapping_add(1);
                    if let Some(filter) = st.filter.as_mut() {
                        if !flips.is_empty() {
                            // Copy-on-write: clones the filter only if a
                            // reader still holds an older snapshot.
                            let filter = Arc::make_mut(filter);
                            for f in flips {
                                if f.index() < spec.table_bits() {
                                    filter.apply_flip(f.index(), f.set_bit());
                                }
                            }
                            replicas_changed = true;
                        }
                    }
                } else if in_sync && update.seq.wrapping_sub(st.expected_seq) > u32::MAX / 2 {
                    // duplicate / late datagram from the past: already reflected
                } else {
                    // Seq gap ahead, generation or spec change, or no
                    // replica at all (first contact / awaiting a bitmap).
                    if st.filter.take().is_some() {
                        replicas_changed = true;
                        out.push(Output::Effect(Effect::UpdateGap {
                            peer: sender,
                            got_generation: update.generation,
                            got_seq: update.seq,
                            expected_generation: st.generation,
                            expected_seq: st.expected_seq,
                        }));
                    }
                    Self::request_resync(st, now, &mut self.next_reqnum, self.id, sender, out);
                }
            }
        }
        if replicas_changed {
            self.publish_replicas();
        }
    }

    /// Ask `peer` (reachable as the current datagram's sender) to
    /// restate its full bitmap, unless a request went out within
    /// [`RESYNC_BACKOFF`]. Retries ride the next delta or heartbeat
    /// that finds the replica still missing.
    fn request_resync(
        st: &mut ReplicaState,
        now: VirtualTime,
        next_reqnum: &mut u32,
        my_id: u32,
        peer: u32,
        out: &mut Vec<Output>,
    ) {
        if st
            .last_resync_request
            .is_some_and(|at| now.saturating_since(at) < RESYNC_BACKOFF)
        {
            return;
        }
        st.last_resync_request = Some(now);
        let request_number = *next_reqnum;
        *next_reqnum = next_reqnum.wrapping_add(1);
        out.push(Output::Send(Send {
            to: Dest::Sender,
            msg: IcpMessage::DirReq {
                request_number,
                sender: my_id,
                generation: st.generation,
            },
            kind: SendKind::Resync {
                peer,
                last_generation: st.generation,
            },
        }));
    }

    /// Our complete current published bitmap, unicast (answering a
    /// DIRREQ, or reinitializing a recovered peer). No-op outside SC
    /// mode.
    ///
    /// Stamps the *current* sequence number without advancing it: a
    /// unicast bitmap must not create a seq the other peers never see
    /// (they would read the skipped number as a gap). The receiver
    /// resumes expecting `seq + 1`, which is exactly the next delta we
    /// will broadcast.
    fn send_full_bitmap(&mut self, to: Dest, out: &mut Vec<Output>) {
        let Some(sc) = self.sc.as_ref() else { return };
        let snapshot = sc.summary.snapshot_published();
        let summary_cache_core::SummarySnapshot::Bloom { spec, bits } = snapshot else {
            return;
        };
        let request_number = self.next_reqnum;
        self.next_reqnum = self.next_reqnum.wrapping_add(1);
        out.push(Output::Send(Send {
            to,
            msg: IcpMessage::DirUpdate {
                request_number,
                sender: self.id,
                update: DirUpdate {
                    function_num: spec.k(),
                    function_bits: spec.function_bits(),
                    bit_array_size: spec.table_bits(),
                    generation: sc.summary.generation(),
                    seq: sc.summary.seq(),
                    content: DirContent::Bitmap(bits.as_words().to_vec()),
                },
            },
            kind: SendKind::UpdateFull,
        }));
    }

    /// Mark `peer` as heard-from now. Returns `true` if this is a
    /// recovery (the peer was marked failed).
    fn mark_heard(&mut self, now: VirtualTime, peer: u32) -> bool {
        let Some(l) = self.liveness.get_mut(&peer) else {
            return false;
        };
        l.last_heard = now;
        std::mem::replace(&mut l.failed, false)
    }

    fn on_tick(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        if !self.peers.is_empty() {
            out.push(Output::Send(Send {
                to: Dest::AllPeers,
                msg: IcpMessage::Secho {
                    request_number: 0,
                    url: String::new(),
                },
                kind: SendKind::Keepalive,
            }));
        }
        self.sweep_failed_peers(now, out);
        self.heartbeat(out);
    }

    /// Drop the summary replicas of peers we have not heard from lately.
    fn sweep_failed_peers(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        if self.keepalive_ms == 0 {
            return; // no keep-alives, no liveness signal
        }
        let timeout = Duration::from_millis(self.keepalive_ms) * FAILURE_KEEPALIVE_PERIODS;
        let mut newly_failed = Vec::new();
        for (&id, l) in self.liveness.iter_mut() {
            if !l.failed && now.saturating_since(l.last_heard) > timeout {
                l.failed = true;
                newly_failed.push(id);
            }
        }
        newly_failed.sort_unstable(); // HashMap order must not leak into output order
        let mut replicas_dropped = false;
        for id in newly_failed {
            replicas_dropped |= self
                .replicas
                .remove(&id)
                .is_some_and(|st| st.filter.is_some());
            out.push(Output::Effect(Effect::PeerFailed { peer: id }));
        }
        if replicas_dropped {
            self.publish_replicas();
        }
    }

    /// SC-mode anti-entropy heartbeat, part of every tick: broadcast an
    /// empty delta carrying the current `(generation, seq)`. In-sync
    /// replicas apply it as a no-op; a receiver that lost the tail of
    /// the update stream (or never got a bitmap) sees the gap and
    /// resyncs — without this, a lost *last* delta would go undetected
    /// until the next publish.
    fn heartbeat(&mut self, out: &mut Vec<Output>) {
        let Some(sc) = self.sc.as_mut() else { return };
        let snapshot = sc.summary.snapshot_published();
        let summary_cache_core::SummarySnapshot::Bloom { spec, .. } = snapshot else {
            return;
        };
        let generation = sc.summary.generation();
        let seq = sc.summary.advance_seq();
        let request_number = self.next_reqnum;
        self.next_reqnum = self.next_reqnum.wrapping_add(1);
        out.push(Output::Send(Send {
            to: Dest::AllPeers,
            msg: IcpMessage::DirUpdate {
                request_number,
                sender: self.id,
                update: DirUpdate {
                    function_num: spec.k(),
                    function_bits: spec.function_bits(),
                    bit_array_size: spec.table_bits(),
                    generation,
                    seq,
                    content: DirContent::Flips(Vec::new()),
                },
            },
            kind: SendKind::UpdateDelta,
        }));
    }

    /// Post-request publish check (SC mode): when the policy says so,
    /// publish and fan the update out. The first datagram carries the
    /// seq the publish allocated; when the delta is split across
    /// datagrams, each further chunk allocates the next seq so the loss
    /// of *any* chunk is a detectable gap.
    fn on_request_done(&mut self, now: VirtualTime, out: &mut Vec<Output>) {
        let Some(sc) = self.sc.as_mut() else { return };
        sc.requests_since_publish += 1;
        let elapsed_ms = now.saturating_since(sc.last_publish).as_millis() as u64;
        if !sc.policy.should_publish(
            sc.summary.fresh_docs(),
            sc.summary.docs(),
            sc.requests_since_publish,
            elapsed_ms,
        ) {
            return;
        }
        let outcome = sc.summary.publish();
        sc.requests_since_publish = 0;
        sc.last_publish = now;
        let messages = Self::build_update_messages(
            &mut sc.summary,
            &outcome,
            self.id,
            &mut self.next_reqnum,
        );
        let count = messages.len();
        let kind = if outcome.full_bitmap {
            SendKind::UpdateFull
        } else {
            SendKind::UpdateDelta
        };
        for msg in messages {
            out.push(Output::Send(Send {
                to: Dest::AllPeers,
                msg,
                kind,
            }));
        }
        out.push(Output::Effect(Effect::Published {
            full_bitmap: outcome.full_bitmap,
            staleness: outcome.staleness,
            messages: count,
            seq: outcome.seq,
        }));
    }

    /// Build the DIRUPDATE/DIRFULL message(s) for a publish.
    fn build_update_messages(
        summary: &mut ProxySummary,
        outcome: &PublishOutcome,
        my_id: u32,
        next_reqnum: &mut u32,
    ) -> Vec<IcpMessage> {
        let snapshot = summary.snapshot_published();
        let summary_cache_core::SummarySnapshot::Bloom { spec, bits } = snapshot else {
            unreachable!("SC mode always uses Bloom summaries");
        };
        let reqnum = *next_reqnum;
        *next_reqnum = next_reqnum.wrapping_add(1);
        let mk = |seq: u32, content| IcpMessage::DirUpdate {
            request_number: reqnum,
            sender: my_id,
            update: DirUpdate {
                function_num: spec.k(),
                function_bits: spec.function_bits(),
                bit_array_size: spec.table_bits(),
                generation: outcome.generation,
                seq,
                content,
            },
        };
        if outcome.full_bitmap {
            vec![mk(outcome.seq, DirContent::Bitmap(bits.as_words().to_vec()))]
        } else if outcome.flips.is_empty() {
            // The publish allocated a seq, so something must travel or
            // the next delta reads as a gap; an empty delta is a legal
            // no-op.
            vec![mk(outcome.seq, DirContent::Flips(Vec::new()))]
        } else {
            outcome
                .flips
                .chunks(FLIPS_PER_DATAGRAM)
                .enumerate()
                .map(|(i, chunk)| {
                    let seq = if i == 0 { outcome.seq } else { summary.advance_seq() };
                    mk(seq, DirContent::Flips(chunk.to_vec()))
                })
                .collect()
        }
    }
}

/// The server-name component of a URL (host part), for summaries. Any
/// `scheme://` prefix is stripped — not just `http://` — so `https://`
/// (or `ftp://`) URLs group under their host instead of collapsing into
/// one bogus `"scheme:"` server entry.
pub fn server_of(url: &str) -> &[u8] {
    let rest = match url.find("://") {
        // Only a separator before any '/' is a scheme delimiter.
        Some(i) if !url[..i].contains('/') => &url[i + 3..],
        _ => url,
    };
    let end = rest.find('/').unwrap_or(rest.len());
    &rest.as_bytes()[..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use summary_cache_core::SummaryKind;

    struct NoDocs;
    impl DirectoryView for NoDocs {
        fn contains(&self, _url: &str) -> bool {
            false
        }
    }

    fn sc_machine(id: u32, peers: Vec<u32>, generation: u32) -> Machine {
        let kind = SummaryKind::Bloom { load_factor: 8, hashes: 4 };
        let mut summary = ProxySummary::with_expected_docs(kind, 64);
        summary.set_generation(generation);
        Machine::new(
            id,
            peers,
            50,
            Some((summary, UpdatePolicy::Threshold(0.0))),
            VirtualTime::ZERO,
        )
    }

    fn sends(outputs: &[Output]) -> Vec<&Send> {
        outputs
            .iter()
            .filter_map(|o| match o {
                Output::Send(s) => Some(s),
                Output::Effect(_) => None,
            })
            .collect()
    }

    fn at(ms: u64) -> VirtualTime {
        VirtualTime::from_micros(ms * 1000)
    }

    #[test]
    fn server_of_extracts_host() {
        assert_eq!(server_of("http://a.example.com/x/y"), b"a.example.com");
        assert_eq!(server_of("http://bare"), b"bare");
        assert_eq!(server_of("no-scheme/path"), b"no-scheme");
        assert_eq!(server_of("http://h/"), b"h");
        assert_eq!(server_of("https://h/x"), b"h");
        assert_eq!(server_of("ftp://files.example.org/pub"), b"files.example.org");
        assert_eq!(server_of("host/redirect?to=http://other"), b"host");
    }

    #[test]
    fn flips_chunking_constant_fits_a_packet() {
        // 320 flips x 4 bytes + 32 bytes of headers stays under the
        // typical 1500-byte MTU, per the prototype's packet-fill intent.
        const { assert!(FLIPS_PER_DATAGRAM * 4 + 32 < 1500) };
    }

    #[test]
    fn delta_to_fresh_machine_requests_resync_not_install() {
        let mut publisher = sc_machine(1, vec![2], 7);
        let mut receiver = sc_machine(2, vec![1], 8);
        // Publisher stores a doc and publishes a delta.
        let evicted: Vec<String> = Vec::new();
        publisher.handle(
            at(1),
            Event::Stored { url: "http://s/a", evicted: &evicted },
            &NoDocs,
        );
        let outs = publisher.handle(at(1), Event::RequestDone, &NoDocs);
        let update_bytes = sends(&outs)
            .iter()
            .find(|s| s.kind == SendKind::UpdateDelta)
            .map(|s| s.msg.encode(1).expect("encodes"))
            .expect("a delta was published");
        // The receiver must NOT install from the delta: replica stays
        // absent and a DIRREQ goes out.
        let outs = receiver.handle(
            at(2),
            Event::Datagram { from: Some(1), data: &update_bytes },
            &NoDocs,
        );
        assert!(!receiver.replica_installed(1), "no install from a delta alone");
        assert!(
            sends(&outs)
                .iter()
                .any(|s| matches!(s.kind, SendKind::Resync { peer: 1, .. })),
            "gapless first contact still resyncs: {outs:?}"
        );
    }

    #[test]
    fn resync_backoff_limits_dirreqs() {
        let mut receiver = sc_machine(2, vec![1], 8);
        let publisher = {
            let mut m = sc_machine(1, vec![2], 7);
            let evicted: Vec<String> = Vec::new();
            m.handle(at(0), Event::Stored { url: "http://s/a", evicted: &evicted }, &NoDocs);
            m
        };
        let _ = publisher;
        let delta = IcpMessage::DirUpdate {
            request_number: 9,
            sender: 1,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 512,
                generation: 7,
                seq: 3,
                content: DirContent::Flips(Vec::new()),
            },
        }
        .encode(1)
        .expect("encodes");
        let first = receiver.handle(at(10), Event::Datagram { from: Some(1), data: &delta }, &NoDocs);
        assert_eq!(sends(&first).len(), 1, "first gap asks for a bitmap");
        let again = receiver.handle(at(20), Event::Datagram { from: Some(1), data: &delta }, &NoDocs);
        assert!(sends(&again).is_empty(), "within backoff: no second DIRREQ");
        let later = receiver.handle(at(300), Event::Datagram { from: Some(1), data: &delta }, &NoDocs);
        assert_eq!(sends(&later).len(), 1, "after backoff the retry rides the next delta");
    }

    #[test]
    fn tick_sweeps_silent_peers_and_heartbeats() {
        let mut m = sc_machine(1, vec![2, 3], 5);
        // First tick at t=10ms: nobody has timed out (threshold 150ms).
        let outs = m.handle(at(10), Event::Tick, &NoDocs);
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Send(Send { kind: SendKind::Keepalive, .. })
        )));
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Send(Send { kind: SendKind::UpdateDelta, .. })
        )));
        assert!(!outs.iter().any(|o| matches!(o, Output::Effect(Effect::PeerFailed { .. }))));
        // Hear from peer 2 only; at t=200ms peer 3 fails.
        let secho = IcpMessage::Secho { request_number: 0, url: String::new() }
            .encode(2)
            .expect("encodes");
        m.handle(at(100), Event::Datagram { from: Some(2), data: &secho }, &NoDocs);
        let outs = m.handle(at(220), Event::Tick, &NoDocs);
        let failed: Vec<u32> = outs
            .iter()
            .filter_map(|o| match o {
                Output::Effect(Effect::PeerFailed { peer }) => Some(*peer),
                _ => None,
            })
            .collect();
        assert_eq!(failed, vec![3]);
        assert_eq!(m.live_peers(), vec![2]);
        // Peer 3 speaks again: recovery restates our bitmap and DIRREQs theirs.
        let outs = m.handle(at(230), Event::Datagram { from: Some(3), data: &secho }, &NoDocs);
        assert!(outs.iter().any(|o| matches!(o, Output::Effect(Effect::PeerRecovered { peer: 3 }))));
        let kinds: Vec<_> = sends(&outs).iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SendKind::UpdateFull));
        assert!(kinds.iter().any(|k| matches!(k, SendKind::Resync { peer: 3, .. })));
    }

    #[test]
    fn queries_answered_from_directory_view() {
        struct OneDoc;
        impl DirectoryView for OneDoc {
            fn contains(&self, url: &str) -> bool {
                url == "http://s/have"
            }
        }
        let mut m = Machine::new(1, vec![2], 0, None, VirtualTime::ZERO);
        let q = |url: &str| {
            IcpMessage::Query {
                request_number: 77,
                requester: 2,
                url: url.to_string(),
            }
            .encode(2)
            .expect("encodes")
        };
        let outs = m.handle(at(1), Event::Datagram { from: Some(2), data: &q("http://s/have") }, &OneDoc);
        assert!(matches!(
            sends(&outs)[0].msg,
            IcpMessage::Hit { request_number: 77, .. }
        ));
        let outs = m.handle(at(1), Event::Datagram { from: Some(2), data: &q("http://s/miss") }, &OneDoc);
        assert!(matches!(
            sends(&outs)[0].msg,
            IcpMessage::Miss { request_number: 77, .. }
        ));
    }
}
