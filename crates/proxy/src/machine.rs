//! The replication/ICP protocol as a **sans-I/O state machine**.
//!
//! Everything the daemon *decides* — how to answer a query, when a
//! delta applies to a replica and when it forces a resync, which peers
//! are alive, what a keep-alive tick broadcasts, when the summary
//! publishes — lives here, as a pure function of
//! `(now: VirtualTime, event)`:
//!
//! * **inputs** are an incoming datagram, a timer tick, a local cache
//!   insert/evict, or a completed client request;
//! * **outputs** are a list of `(dest, datagram)` sends plus
//!   journal/metric [`Effect`]s.
//!
//! There are no sockets, no `Instant::now()`, and no sleeps in this
//! module (the sc-check `sans_io` rule enforces exactly that): the live
//! daemon feeds the machine from its real UDP socket and clock, and the
//! deterministic [`crate::simnet`] harness feeds it from a virtual
//! clock and a seeded fault plan. Both drive the *same* decision logic,
//! which is what makes a simnet seed a faithful protocol schedule.
//!
//! Since the shard-per-core redesign the decision logic itself lives in
//! [`crate::shard`] (partitioned directory + replica state) and
//! [`crate::router`] (control plane, cross-shard merges); this module
//! keeps the shared protocol vocabulary — [`Event`], [`Output`],
//! [`Effect`], [`VirtualTime`], the wire constants — and [`Machine`],
//! the single-shard facade over a [`Router`].
//!
//! Time enters only as [`VirtualTime`] values the caller supplies;
//! durations (resync backoff, failure timeout) are plain arithmetic on
//! those values. Randomness never enters at all — loss injection and
//! generation freshness are the *caller's* business (the daemon uses
//! its seeded loss RNG and the wall clock; the simnet uses its fault
//! plan and deterministic generation numbers).

use crate::replica::ReplicaCell;
use crate::router::{DirectoryInspect, Router};
use sc_bloom::{BitVec, UrlKey};
use sc_wire::icp::IcpMessage;
use std::sync::Arc;
use std::time::Duration;
use summary_cache_core::{ProxySummary, UpdatePolicy};

/// Max bit flips per DIRUPDATE datagram (keeps messages near one MTU,
/// as the prototype "sends updates whenever there are enough changes to
/// fill an IP packet").
pub const FLIPS_PER_DATAGRAM: usize = 320;

/// Payload budget for one update datagram: comfortably under ICP's
/// 64 KiB frame limit and what a UDP/IPv4 stack will actually carry.
/// Full-bitmap restatements whose coded form exceeds it are split into
/// word-aligned DIRFULL_GR segments.
pub const UDP_PAYLOAD_BUDGET: usize = 60_000;

/// Bits per DIRFULL_GR segment when a compressed full bitmap must be
/// split. Golomb–Rice coding of `n` bits is at worst ~2 bits per set
/// bit plus the quotient stream — bounded by `2n` coded bits — so a
/// 200k-bit segment never exceeds ~50 KB, inside
/// [`UDP_PAYLOAD_BUDGET`]. Multiple of 64 keeps every segment boundary
/// word-aligned, which the receiver's splice path requires.
pub const GR_SEGMENT_BITS: usize = 200_000;

/// Minimum spacing between DIRREQs to one peer: resyncs are idempotent,
/// but a burst of gapped deltas must not become a burst of bitmap
/// requests (each answer is a full bitmap).
pub const RESYNC_BACKOFF: Duration = Duration::from_millis(150);

/// Failure timeout: a peer silent for this many keep-alive periods is
/// considered failed and its summary replica is dropped (probes then
/// treat it as empty — no candidates, no queries).
pub const FAILURE_KEEPALIVE_PERIODS: u32 = 3;

/// A point on the machine's clock: microseconds since an arbitrary
/// epoch chosen by the driver (daemon start, simulation start). The
/// machine only ever *subtracts* two of these — absolute values carry
/// no meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The driver's epoch.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// A time `us` microseconds past the epoch.
    pub fn from_micros(us: u64) -> VirtualTime {
        VirtualTime(us)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This time advanced by `d` (saturating).
    pub fn saturating_add(self, d: Duration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(d.as_micros() as u64))
    }

    /// Elapsed duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: VirtualTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

/// One input to the machine.
#[derive(Debug, Clone, Copy)]
pub enum Event<'a> {
    /// A datagram arrived. `from` is the sending peer's id when the
    /// source address maps to a configured peer (replies to unknown
    /// sources are still served, but carry no liveness or replica
    /// meaning).
    Datagram {
        /// Sending peer, if the source address is a configured peer.
        from: Option<u32>,
        /// The raw datagram bytes (decoded inside the machine).
        data: &'a [u8],
    },
    /// One keep-alive period elapsed: ping peers, sweep liveness, and
    /// (SC mode) broadcast the anti-entropy heartbeat.
    Tick,
    /// A document was stored in the local cache, evicting `evicted`.
    /// Keys arrive pre-hashed: the driver digests each URL exactly once
    /// (at request time) and threads the [`UrlKey`] through — the
    /// machine never re-digests.
    Stored {
        /// Pre-hashed key of the URL now cached.
        url: &'a UrlKey,
        /// Pre-hashed keys of the victims the store pushed out.
        evicted: &'a [UrlKey],
    },
    /// A stale local copy was purged from the cache.
    Purged {
        /// Pre-hashed key of the URL no longer cached.
        url: &'a UrlKey,
    },
    /// A client request finished (drives the update publish policy).
    RequestDone,
}

/// Where a datagram goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// One configured peer, by id.
    Peer(u32),
    /// Every configured peer (the driver encodes once and fans out).
    AllPeers,
    /// Reply to the source of the datagram currently being handled.
    Sender,
}

/// What a send *is*, so the driver can apply the right accounting (and
/// the update-loss fault knob, which only ever drops updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendKind {
    /// HIT/MISS answer to an ICP query.
    QueryReply,
    /// SECHO keep-alive ping.
    Keepalive,
    /// Delta (bit-flip) DIRUPDATE — includes the empty heartbeat delta.
    UpdateDelta,
    /// Full-bitmap DIRUPDATE (broadcast publish or unicast resync
    /// answer / recovery reinitialization).
    UpdateFull,
    /// DIRREQ asking `peer` to restate its bitmap.
    Resync {
        /// The publisher being asked.
        peer: u32,
        /// The generation last seen from it (0 = none), for the journal.
        last_generation: u32,
    },
}

impl SendKind {
    /// Is this datagram subject to the injected update-loss knob?
    pub fn is_update(self) -> bool {
        matches!(self, SendKind::UpdateDelta | SendKind::UpdateFull)
    }
}

/// One datagram the driver must put on the wire.
#[derive(Debug, Clone)]
pub struct Send {
    /// Destination.
    pub to: Dest,
    /// The message (the driver encodes it; an oversized encode is
    /// silently skipped, the documented full-bitmap size limit).
    pub msg: IcpMessage,
    /// Accounting class.
    pub kind: SendKind,
}

/// A journal/metric effect the driver must apply. Each variant maps
/// onto exactly the counters and journal records the pre-refactor
/// daemon emitted inline.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// A directory update from a configured peer was accepted for
    /// processing (`sc_updates_received_total`).
    UpdateReceived,
    /// An ICP query was answered (`sc_icp_queries_served_total`).
    QueryServed,
    /// A replica was (re)installed from a full bitmap.
    ReplicaInstalled {
        /// The publisher.
        peer: u32,
        /// True when no replica existed before (first contact).
        first_contact: bool,
        /// Installed generation.
        generation: u32,
        /// Seq the bitmap was stamped with.
        seq: u32,
        /// Filter size in bits.
        bits: u32,
    },
    /// A lost/reordered update was detected and an installed replica
    /// was discarded pending resync.
    UpdateGap {
        /// The publisher whose replica was discarded.
        peer: u32,
        /// Generation the offending datagram carried.
        got_generation: u32,
        /// Seq the offending datagram carried.
        got_seq: u32,
        /// Generation the replica was installed under.
        expected_generation: u32,
        /// Seq the replica expected next.
        expected_seq: u32,
    },
    /// A peer went silent past the failure timeout; its replica (if
    /// any) was dropped.
    PeerFailed {
        /// The silent peer.
        peer: u32,
    },
    /// A failed peer was heard again; reinitialization sends follow in
    /// the same output batch.
    PeerRecovered {
        /// The returning peer.
        peer: u32,
    },
    /// The local summary published an update into the shared flip log.
    /// Datagrams no longer leave at publish time unless a lane's
    /// backlog reached a full packet — smaller publishes coalesce and
    /// ride each peer's staggered fanout tick.
    Published {
        /// Bit flips this publish appended to the update log.
        flips: usize,
        /// Staleness at publish time.
        staleness: f64,
        /// Update datagrams flushed immediately (0 = everything is
        /// riding the fanout ticks).
        messages: usize,
    },
    /// An ICP reply arrived for an outstanding query; the driver owns
    /// the waiting-request table and must dispatch it.
    ReplyReceived {
        /// The query's request number.
        request_number: u32,
        /// `Some(peer)` on a HIT from a configured peer.
        hit_from: Option<u32>,
        /// The replying peer (for RTT attribution), when known.
        replier: Option<u32>,
    },
}

/// One machine output: a send or an effect, in the order the old
/// inline code performed them.
#[derive(Debug, Clone)]
pub enum Output {
    /// Put a datagram on the wire.
    Send(Send),
    /// Apply a journal/metric effect.
    Effect(Effect),
}

/// The machine's read-only view of the local cache directory, used to
/// answer ICP queries. The daemon backs this with the real
/// [`sc_cache::WebCache`]; the simnet backs it with a set model.
pub trait DirectoryView {
    /// Is `url` currently cached locally?
    fn contains(&self, url: &str) -> bool;
}

/// The protocol state machine for one proxy — since the shard-per-core
/// redesign, a thin facade over a single-shard [`Router`]. The routed
/// runtime ([`crate::shard`] + [`crate::router`]) carries all the
/// decision logic; this type pins the historical single-shard API (and
/// its unit tests pin the ported semantics).
pub struct Machine {
    router: Router,
}

impl Machine {
    /// A machine for proxy `id` peering with `peers`. `sc` carries the
    /// summary (with its generation already set by the driver — fresh
    /// randomness is I/O) and publish policy in summary-cache mode.
    /// `now` initializes every peer's last-heard time.
    pub fn new(
        id: u32,
        peers: Vec<u32>,
        keepalive_ms: u64,
        sc: Option<(ProxySummary, UpdatePolicy)>,
        now: VirtualTime,
    ) -> Machine {
        Machine {
            router: Router::new(id, peers, keepalive_ms, 1, 1, sc, now),
        }
    }

    /// This proxy's id.
    pub fn id(&self) -> u32 {
        self.router.id()
    }

    /// The shared replica-snapshot cell. The driver clones this once at
    /// startup and serves SC-mode candidate selection from it without
    /// ever locking the machine.
    pub fn replica_cell(&self) -> Arc<ReplicaCell> {
        self.router.replica_cell()
    }

    /// Feed one event; returns the sends and effects it decided on, in
    /// order.
    pub fn handle(&mut self, now: VirtualTime, event: Event<'_>, dir: &dyn DirectoryView) -> Vec<Output> {
        self.router.handle(now, event, dir)
    }

    // -- read-only views the driver needs ---------------------------------

    /// Peers not currently marked failed (what ICP mode queries).
    pub fn live_peers(&self) -> Vec<u32> {
        self.router.live_peers()
    }

    /// Peers whose installed summary replica advertises `url`, probed
    /// through the shared `SummaryProbe` path (peers without a synced
    /// replica cannot be candidates).
    pub fn candidates(&self, url: &[u8]) -> Vec<u32> {
        self.router.candidates(url)
    }

    /// Is a replica of `peer` currently installed?
    pub fn replica_installed(&self, peer: u32) -> bool {
        self.router.replica_installed(peer)
    }

    /// The summary's current generation (SC mode only).
    pub fn generation(&self) -> Option<u32> {
        self.router.generation()
    }
}

impl DirectoryInspect for Machine {
    fn replicated_peers(&self) -> Vec<u32> {
        self.router.replicated_peers()
    }

    fn replica_bits(&self, peer: u32) -> Option<BitVec> {
        self.router.replica_bits(peer)
    }

    fn published_bits(&self) -> Option<BitVec> {
        self.router.published_bits()
    }

    fn cached_docs(&self) -> u64 {
        self.router.cached_docs()
    }
}

/// The server-name component of a URL (host part), for summaries. Any
/// `scheme://` prefix is stripped — not just `http://` — so `https://`
/// (or `ftp://`) URLs group under their host instead of collapsing into
/// one bogus `"scheme:"` server entry.
pub fn server_of(url: &str) -> &[u8] {
    let rest = match url.find("://") {
        // Only a separator before any '/' is a scheme delimiter.
        Some(i) if !url[..i].contains('/') => &url[i + 3..],
        _ => url,
    };
    let end = rest.find('/').unwrap_or(rest.len());
    &rest.as_bytes()[..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_wire::icp::{DirContent, DirUpdate};
    use summary_cache_core::SummaryKind;

    struct NoDocs;
    impl DirectoryView for NoDocs {
        fn contains(&self, _url: &str) -> bool {
            false
        }
    }

    fn sc_machine(id: u32, peers: Vec<u32>, generation: u32) -> Machine {
        let kind = SummaryKind::Bloom { load_factor: 8, hashes: 4 };
        let mut summary = ProxySummary::with_expected_docs(kind, 64);
        summary.set_generation(generation);
        Machine::new(
            id,
            peers,
            50,
            Some((summary, UpdatePolicy::Threshold(0.0))),
            VirtualTime::ZERO,
        )
    }

    fn sends(outputs: &[Output]) -> Vec<&Send> {
        outputs
            .iter()
            .filter_map(|o| match o {
                Output::Send(s) => Some(s),
                Output::Effect(_) => None,
            })
            .collect()
    }

    fn at(ms: u64) -> VirtualTime {
        VirtualTime::from_micros(ms * 1000)
    }

    #[test]
    fn server_of_extracts_host() {
        assert_eq!(server_of("http://a.example.com/x/y"), b"a.example.com");
        assert_eq!(server_of("http://bare"), b"bare");
        assert_eq!(server_of("no-scheme/path"), b"no-scheme");
        assert_eq!(server_of("http://h/"), b"h");
        assert_eq!(server_of("https://h/x"), b"h");
        assert_eq!(server_of("ftp://files.example.org/pub"), b"files.example.org");
        assert_eq!(server_of("host/redirect?to=http://other"), b"host");
    }

    #[test]
    fn flips_chunking_constant_fits_a_packet() {
        // 320 flips x 4 bytes + 32 bytes of headers stays under the
        // typical 1500-byte MTU, per the prototype's packet-fill intent.
        const { assert!(FLIPS_PER_DATAGRAM * 4 + 32 < 1500) };
    }

    #[test]
    fn delta_to_fresh_machine_requests_resync_not_install() {
        let mut publisher = sc_machine(1, vec![2], 7);
        let mut receiver = sc_machine(2, vec![1], 8);
        // Publisher stores a doc and publishes; the sub-packet batch
        // coalesces until the fan-out tick carries it out as a delta.
        let evicted: Vec<UrlKey> = Vec::new();
        let key = UrlKey::new(b"http://s/a");
        publisher.handle(
            at(1),
            Event::Stored { url: &key, evicted: &evicted },
            &NoDocs,
        );
        publisher.handle(at(1), Event::RequestDone, &NoDocs);
        let outs = publisher.handle(at(2), Event::Tick, &NoDocs);
        let update_bytes = sends(&outs)
            .iter()
            .find(|s| s.kind == SendKind::UpdateDelta)
            .map(|s| s.msg.encode(1).expect("encodes"))
            .expect("a delta was published");
        // The receiver must NOT install from the delta: replica stays
        // absent and a DIRREQ goes out.
        let outs = receiver.handle(
            at(2),
            Event::Datagram { from: Some(1), data: &update_bytes },
            &NoDocs,
        );
        assert!(!receiver.replica_installed(1), "no install from a delta alone");
        assert!(
            sends(&outs)
                .iter()
                .any(|s| matches!(s.kind, SendKind::Resync { peer: 1, .. })),
            "gapless first contact still resyncs: {outs:?}"
        );
    }

    #[test]
    fn resync_backoff_limits_dirreqs() {
        let mut receiver = sc_machine(2, vec![1], 8);
        let publisher = {
            let mut m = sc_machine(1, vec![2], 7);
            let evicted: Vec<UrlKey> = Vec::new();
            let key = UrlKey::new(b"http://s/a");
            m.handle(at(0), Event::Stored { url: &key, evicted: &evicted }, &NoDocs);
            m
        };
        let _ = publisher;
        let delta = IcpMessage::DirUpdate {
            request_number: 9,
            sender: 1,
            update: DirUpdate {
                function_num: 4,
                function_bits: 32,
                bit_array_size: 512,
                generation: 7,
                seq: 3,
                content: DirContent::Flips(Vec::new()),
            },
        }
        .encode(1)
        .expect("encodes");
        let first = receiver.handle(at(10), Event::Datagram { from: Some(1), data: &delta }, &NoDocs);
        assert_eq!(sends(&first).len(), 1, "first gap asks for a bitmap");
        let again = receiver.handle(at(20), Event::Datagram { from: Some(1), data: &delta }, &NoDocs);
        assert!(sends(&again).is_empty(), "within backoff: no second DIRREQ");
        let later = receiver.handle(at(300), Event::Datagram { from: Some(1), data: &delta }, &NoDocs);
        assert_eq!(sends(&later).len(), 1, "after backoff the retry rides the next delta");
    }

    #[test]
    fn tick_sweeps_silent_peers_and_heartbeats() {
        let mut m = sc_machine(1, vec![2, 3], 5);
        // First tick at t=10ms: nobody has timed out (threshold 150ms).
        let outs = m.handle(at(10), Event::Tick, &NoDocs);
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Send(Send { kind: SendKind::Keepalive, .. })
        )));
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Send(Send { kind: SendKind::UpdateDelta, .. })
        )));
        assert!(!outs.iter().any(|o| matches!(o, Output::Effect(Effect::PeerFailed { .. }))));
        // Hear from peer 2 only; at t=200ms peer 3 fails.
        let secho = IcpMessage::Secho { request_number: 0, url: String::new() }
            .encode(2)
            .expect("encodes");
        m.handle(at(100), Event::Datagram { from: Some(2), data: &secho }, &NoDocs);
        let outs = m.handle(at(220), Event::Tick, &NoDocs);
        let failed: Vec<u32> = outs
            .iter()
            .filter_map(|o| match o {
                Output::Effect(Effect::PeerFailed { peer }) => Some(*peer),
                _ => None,
            })
            .collect();
        assert_eq!(failed, vec![3]);
        assert_eq!(m.live_peers(), vec![2]);
        // Peer 3 speaks again: recovery restates our bitmap and DIRREQs theirs.
        let outs = m.handle(at(230), Event::Datagram { from: Some(3), data: &secho }, &NoDocs);
        assert!(outs.iter().any(|o| matches!(o, Output::Effect(Effect::PeerRecovered { peer: 3 }))));
        let kinds: Vec<_> = sends(&outs).iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SendKind::UpdateFull));
        assert!(kinds.iter().any(|k| matches!(k, SendKind::Resync { peer: 3, .. })));
    }

    #[test]
    fn queries_answered_from_directory_view() {
        struct OneDoc;
        impl DirectoryView for OneDoc {
            fn contains(&self, url: &str) -> bool {
                url == "http://s/have"
            }
        }
        let mut m = Machine::new(1, vec![2], 0, None, VirtualTime::ZERO);
        let q = |url: &str| {
            IcpMessage::Query {
                request_number: 77,
                requester: 2,
                url: url.to_string(),
            }
            .encode(2)
            .expect("encodes")
        };
        let outs = m.handle(at(1), Event::Datagram { from: Some(2), data: &q("http://s/have") }, &OneDoc);
        assert!(matches!(
            sends(&outs)[0].msg,
            IcpMessage::Hit { request_number: 77, .. }
        ));
        let outs = m.handle(at(1), Event::Datagram { from: Some(2), data: &q("http://s/miss") }, &OneDoc);
        assert!(matches!(
            sends(&outs)[0].msg,
            IcpMessage::Miss { request_number: 77, .. }
        ));
    }
}
