//! One shard of the partitioned protocol state.
//!
//! The shard-per-core runtime splits the proxy's mutable directory
//! state along two axes, both keyed by stable hashes so every shard
//! count yields the same global state:
//!
//! * **local directory**: each shard owns a full-width counting Bloom
//!   filter slice holding only the URLs whose [`UrlKey`] digest routes
//!   here ([`shard_of`]). Because a URL's counters live in exactly one
//!   shard, OR-ing the shard bit arrays reproduces the unsharded bit
//!   array exactly (up to 4-bit counter saturation, which the paper
//!   bounds at ~1.4e-15 per bit — see DESIGN.md §13);
//! * **peer replicas**: each peer's installed summary replica and its
//!   `(generation, seq)` sequencing state live wholly in the owner
//!   shard ([`owner_of`]), so delta application parallelizes across
//!   publishers without any cross-shard coordination.
//!
//! A shard is single-owner, sans-I/O state: no sockets, no clocks, no
//! sleeps, and no interior locking of any kind (the sc-check `shards`
//! rule enforces the latter). The only way in is the
//! [`ShardEvent`]/[`ShardOutput`] contract: the [`crate::router`]
//! routes events here and materializes the outputs — effects are
//! forwarded verbatim, [`ShardOutput::Resync`] decisions become DIRREQ
//! sends (the router owns request-number allocation), and
//! [`ShardOutput::ReplicasChanged`] triggers a snapshot re-merge.
//! Anything that crosses shards — publishing the merged directory,
//! answering a DIRREQ with the full bitmap, sweeping failed peers — is
//! an explicit merge step in the router, never shared state.

use crate::machine::{Effect, VirtualTime, RESYNC_BACKOFF};
use sc_bloom::{BitVec, BloomFilter, CountingBloomFilter, FilterConfig, Flip, HashSpec, UrlKey};
use sc_util::fxhash::FxHashMap;
use sc_wire::icp::{DirContent, DirUpdate};
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    /// Copy-on-write deep copies taken when applying delta flips (a
    /// `make_mut` that found the filter still shared with a published
    /// snapshot). The batched flip-apply design pins this: with replica
    /// publication deferred to batch boundaries, a batch of N delta
    /// datagrams costs at most one copy per touched filter, not N.
    static COW_COPIES: Cell<u64> = const { Cell::new(0) };
}

/// Number of replica-filter deep copies this thread's delta
/// applications have taken so far (monotonic; diff around a workload
/// to count its copies — same pattern as [`sc_md5::blocks_hashed`]).
pub fn cow_copies() -> u64 {
    COW_COPIES.with(|c| c.get())
}

/// The shard that owns `key`'s directory entry: the low 64 bits of the
/// key's (already computed) MD5 digest, reduced mod `shards`.
///
/// [`sc_bloom::HashSpec`] consumes digest bits from the front of the
/// digest, so taking the *tail* keeps shard routing and Bloom indices
/// decorrelated for every spec the paper's experiments use.
pub fn shard_of(key: &UrlKey, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let digest = key.digest();
    let mut tail = [0u8; 8];
    tail.copy_from_slice(&digest[8..]);
    (u64::from_le_bytes(tail) % shards as u64) as usize
}

/// The shard that owns `peer`'s summary replica: highest-random-weight
/// (rendezvous) consistent hashing over `(peer, shard)` pairs.
///
/// The old dense `peer % shards` mapping assumed peer ids are a
/// contiguous 0..N — at big N with sparse or churning id spaces it
/// piles whole id ranges onto one shard and reshuffles *every* peer
/// when the shard count changes. Rendezvous hashing keeps the
/// assignment uniform for arbitrary id sets and moves only the peers
/// whose winning shard disappeared when the lane count shrinks
/// (expected `1/shards` of them), so a resharded daemon re-installs
/// the minimum number of replicas.
pub fn owner_of(peer: u32, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut best = 0usize;
    let mut best_weight = 0u64;
    for shard in 0..shards {
        let weight = mix64(((peer as u64) << 32) | shard as u64);
        if shard == 0 || weight > best_weight {
            best = shard;
            best_weight = weight;
        }
    }
    best
}

/// The splitmix64 finalizer — a full-avalanche mix for rendezvous
/// weights and fanout stagger slots (deterministic, endian-free, no
/// external state).
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One routed input to a shard. Events carry the key or peer the router
/// used to pick this shard; `now` rides along where the shard's own
/// state (resync backoff) needs a clock reading.
#[derive(Debug)]
pub enum ShardEvent<'a> {
    /// A document keyed by `url` entered the local cache: insert it
    /// into this shard's directory slice.
    Insert {
        /// The stored document's pre-hashed key.
        url: &'a UrlKey,
    },
    /// A document keyed by `url` left the local cache (eviction or
    /// purge): remove it from this shard's directory slice.
    Remove {
        /// The removed document's pre-hashed key.
        url: &'a UrlKey,
    },
    /// A DIRUPDATE from peer `from` (already spec-validated and
    /// accounted by the router) for the replica this shard owns.
    Apply {
        /// Clock reading, for resync backoff.
        now: VirtualTime,
        /// The publishing peer.
        from: u32,
        /// The update's validated hash spec.
        spec: HashSpec,
        /// The update payload.
        update: DirUpdate,
    },
    /// A failed peer was heard from again: ensure its replica slot
    /// exists and decide whether to ask for its bitmap.
    PeerReturned {
        /// Clock reading, for resync backoff.
        now: VirtualTime,
        /// The recovered peer.
        peer: u32,
    },
    /// The router's failure sweep declared `peer` dead: drop its
    /// replica state.
    DropReplica {
        /// The failed peer.
        peer: u32,
    },
}

/// One routed output from a shard, in decision order. The router
/// materializes these: effects pass through, resync decisions become
/// DIRREQ sends, and replica-set changes re-merge the lock-free
/// snapshot.
#[derive(Debug)]
pub enum ShardOutput {
    /// Forward this journal/metric effect verbatim.
    Effect(Effect),
    /// Ask the current datagram's sender to restate its full bitmap
    /// (backoff already checked and stamped in-shard). The router
    /// allocates the request number and builds the DIRREQ.
    Resync {
        /// The publisher being asked.
        peer: u32,
        /// The generation last seen from it (0 = none).
        last_generation: u32,
    },
    /// This shard's replica set changed; the router must re-merge the
    /// published snapshot.
    ReplicasChanged,
}

/// One peer's summary replica and the sequencing state guarding it
/// (moved verbatim from the pre-shard `Machine`).
///
/// A replica is only ever *installed* from a full bitmap; delta flips
/// apply only when they carry exactly the expected `(generation, seq)`.
/// Until a bitmap arrives (`filter` is `None`) probes treat the peer as
/// empty — flips are never guessed onto an empty array.
struct ReplicaState {
    /// The installed replica; `None` on first contact or after a
    /// detected gap discarded the previous one. Shared by `Arc` with
    /// the published [`crate::replica::ReplicaSnapshot`]s; delta flips
    /// copy-on-write (`Arc::make_mut`) only while a reader holds an old
    /// snapshot.
    filter: Option<Arc<BloomFilter>>,
    /// Generation of the installed (or last seen) publisher bitmap.
    generation: u32,
    /// Seq the next delta from this peer must carry.
    expected_seq: u32,
    /// When a DIRREQ was last sent, for backoff.
    last_resync_request: Option<VirtualTime>,
    /// A partially assembled split DIRFULL_GR bitmap. Segments sharing
    /// one `(generation, seq)` stamp splice in order; the assembly only
    /// becomes the replica once it covers the whole array, so the
    /// install-from-full-bitmap-only invariant holds under loss and
    /// reordering (a broken sequence is simply discarded and the next
    /// resync retries).
    staging: Option<GrStaging>,
}

/// In-flight assembly of a segmented compressed bitmap.
struct GrStaging {
    generation: u32,
    seq: u32,
    bits: BitVec,
    /// First bit the next segment must start at.
    next_bit: u32,
}

impl Default for ReplicaState {
    fn default() -> Self {
        ReplicaState {
            filter: None,
            generation: 0,
            expected_seq: 0,
            last_resync_request: None,
            staging: None,
        }
    }
}

/// One shard: a full-width slice of the local counting Bloom directory
/// plus the replicas of the peers this shard owns.
pub struct Shard {
    index: usize,
    /// SC mode: this shard's slice of the local directory. Full spec
    /// width; only keys routed here are ever inserted.
    filter: Option<CountingBloomFilter>,
    /// Replicas of the peers owned by this shard ([`owner_of`]).
    replicas: FxHashMap<u32, ReplicaState>,
    /// Warm flip buffer for directory mutations: the router publishes
    /// by diffing merged slices against the baseline, so per-insert
    /// flips are discarded here — collected into this scratch instead
    /// of a fresh `Vec` so the steady-state store path never allocates.
    flip_scratch: Vec<Flip>,
}

impl Shard {
    /// A shard at `index`. `filter` carries the directory spec in
    /// summary-cache mode (every shard gets the full-width config).
    pub fn new(index: usize, filter: Option<FilterConfig>) -> Shard {
        Shard {
            index,
            filter: filter.map(CountingBloomFilter::new),
            replicas: FxHashMap::default(),
            flip_scratch: Vec::new(),
        }
    }

    /// This shard's index in the router's shard table.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Feed one routed event; outputs append to `out` in decision order.
    pub fn handle(&mut self, event: ShardEvent<'_>, out: &mut Vec<ShardOutput>) {
        match event {
            ShardEvent::Insert { url } => {
                if let Some(filter) = self.filter.as_mut() {
                    self.flip_scratch.clear();
                    filter.insert_key_into(url, &mut self.flip_scratch);
                }
            }
            ShardEvent::Remove { url } => {
                if let Some(filter) = self.filter.as_mut() {
                    self.flip_scratch.clear();
                    filter.remove_key_into(url, &mut self.flip_scratch);
                }
            }
            ShardEvent::Apply {
                now,
                from,
                spec,
                update,
            } => self.apply_update(now, from, spec, update, out),
            ShardEvent::PeerReturned { now, peer } => {
                let st = self.replicas.entry(peer).or_default();
                Self::request_resync(st, now, peer, out);
            }
            ShardEvent::DropReplica { peer } => {
                if self
                    .replicas
                    .remove(&peer)
                    .is_some_and(|st| st.filter.is_some())
                {
                    out.push(ShardOutput::ReplicasChanged);
                }
            }
        }
    }

    /// Apply a received directory update to the sender's replica.
    ///
    /// Sequencing discipline (unchanged from the unsharded machine): a
    /// replica is only ever *installed* from a full bitmap, and delta
    /// flips apply only when they carry exactly the expected
    /// `(generation, seq)`. Anything else is evidence of loss,
    /// reordering, or a publisher restart — the replica is discarded
    /// and a resync decision goes out.
    fn apply_update(
        &mut self,
        now: VirtualTime,
        sender: u32,
        spec: HashSpec,
        update: DirUpdate,
        out: &mut Vec<ShardOutput>,
    ) {
        let st = self.replicas.entry(sender).or_default();
        let mut replicas_changed = false;
        match update.content {
            DirContent::Bitmap(words) => {
                if words.len() != (spec.table_bits() as usize).div_ceil(64) {
                    return;
                }
                // Mask any overhang bits the sender left set.
                let mut words = words;
                let rem = spec.table_bits() as usize % 64;
                if rem != 0 {
                    if let Some(last) = words.last_mut() {
                        *last &= (1u64 << rem) - 1;
                    }
                }
                let first_contact = st.filter.is_none();
                st.filter = Some(Arc::new(BloomFilter::from_parts(
                    spec,
                    BitVec::from_words(spec.table_bits() as usize, words),
                )));
                st.generation = update.generation;
                st.expected_seq = update.seq.wrapping_add(1);
                st.last_resync_request = None;
                st.staging = None;
                replicas_changed = true;
                out.push(ShardOutput::Effect(Effect::ReplicaInstalled {
                    peer: sender,
                    first_contact,
                    generation: update.generation,
                    seq: update.seq,
                    bits: spec.table_bits(),
                }));
            }
            DirContent::CompressedBitmap {
                first_bit,
                seg_bits,
                ones,
                rice,
                data,
            } => {
                let total = spec.table_bits();
                if update.bit_array_size != total
                    || first_bit % 64 != 0
                    || seg_bits == 0
                    || first_bit as u64 + seg_bits as u64 > total as u64
                {
                    return;
                }
                let coded = sc_bloom::CompressedBits {
                    len: seg_bits,
                    ones,
                    rice,
                    data,
                };
                let Ok(segment) = sc_bloom::decompress(&coded) else {
                    // Malformed code stream: drop the datagram (and any
                    // partial assembly it would have extended).
                    st.staging = None;
                    return;
                };
                let staged = st.staging.take_if(|s| {
                    s.generation == update.generation
                        && s.seq == update.seq
                        && s.next_bit == first_bit
                });
                let mut assembly = match (first_bit, staged) {
                    (0, _) => {
                        // A fresh attempt supersedes whatever was staged.
                        st.staging = None;
                        GrStaging {
                            generation: update.generation,
                            seq: update.seq,
                            bits: BitVec::new(total as usize),
                            next_bit: 0,
                        }
                    }
                    (_, Some(staged)) => staged,
                    (_, None) => {
                        // Mid-bitmap segment with no matching prefix: an
                        // earlier segment was lost, reordered, or belongs
                        // to a superseded attempt. Discard it but KEEP
                        // any in-progress assembly — a stale straggler
                        // must not destroy a live one.
                        return;
                    }
                };
                for i in segment.iter_ones() {
                    assembly.bits.set(first_bit as usize + i, true);
                }
                assembly.next_bit = first_bit + seg_bits;
                if assembly.next_bit == total {
                    let first_contact = st.filter.is_none();
                    st.filter = Some(Arc::new(BloomFilter::from_parts(spec, assembly.bits)));
                    st.generation = update.generation;
                    st.expected_seq = update.seq.wrapping_add(1);
                    st.last_resync_request = None;
                    replicas_changed = true;
                    out.push(ShardOutput::Effect(Effect::ReplicaInstalled {
                        peer: sender,
                        first_contact,
                        generation: update.generation,
                        seq: update.seq,
                        bits: total,
                    }));
                } else {
                    st.staging = Some(assembly);
                }
            }
            DirContent::Flips(flips) => {
                let in_sync = st.generation == update.generation
                    && st.filter.as_deref().is_some_and(|f| f.spec() == spec);
                if in_sync && update.seq == st.expected_seq {
                    st.expected_seq = st.expected_seq.wrapping_add(1);
                    if let Some(filter) = st.filter.as_mut() {
                        if !flips.is_empty() {
                            // Copy-on-write: clones the filter only if a
                            // reader still holds an older snapshot.
                            if Arc::strong_count(filter) > 1 {
                                COW_COPIES.with(|c| c.set(c.get() + 1));
                            }
                            let filter = Arc::make_mut(filter);
                            for f in flips {
                                if f.index() < spec.table_bits() {
                                    filter.apply_flip(f.index(), f.set_bit());
                                }
                            }
                            replicas_changed = true;
                        }
                    }
                } else if in_sync && update.seq.wrapping_sub(st.expected_seq) > u32::MAX / 2 {
                    // duplicate / late datagram from the past: already reflected
                } else {
                    // Seq gap ahead, generation or spec change, or no
                    // replica at all (first contact / awaiting a bitmap).
                    if st.filter.take().is_some() {
                        replicas_changed = true;
                        out.push(ShardOutput::Effect(Effect::UpdateGap {
                            peer: sender,
                            got_generation: update.generation,
                            got_seq: update.seq,
                            expected_generation: st.generation,
                            expected_seq: st.expected_seq,
                        }));
                    }
                    Self::request_resync(st, now, sender, out);
                }
            }
        }
        if replicas_changed {
            out.push(ShardOutput::ReplicasChanged);
        }
    }

    /// Decide whether to ask `peer` for its full bitmap, honoring the
    /// [`RESYNC_BACKOFF`] stamp kept in-shard. Retries ride the next
    /// delta or heartbeat that finds the replica still missing.
    fn request_resync(
        st: &mut ReplicaState,
        now: VirtualTime,
        peer: u32,
        out: &mut Vec<ShardOutput>,
    ) {
        if st
            .last_resync_request
            .is_some_and(|at| now.saturating_since(at) < RESYNC_BACKOFF)
        {
            return;
        }
        st.last_resync_request = Some(now);
        out.push(ShardOutput::Resync {
            peer,
            last_generation: st.generation,
        });
    }

    // -- read-only views the router merges over ---------------------------

    /// This shard's directory slice bits (SC mode), for the router's
    /// OR-merge at publish time.
    pub fn local_bits(&self) -> Option<&BitVec> {
        self.filter.as_ref().map(|f| f.bits())
    }

    /// Saturated-counter increments observed in this shard's slice —
    /// the only condition under which the OR-merge can diverge from an
    /// unsharded directory.
    pub fn local_saturations(&self) -> u64 {
        self.filter.as_ref().map_or(0, |f| f.saturations())
    }

    /// The installed replica of `peer`, if this shard owns one.
    pub fn replica_filter(&self, peer: u32) -> Option<&Arc<BloomFilter>> {
        self.replicas.get(&peer).and_then(|st| st.filter.as_ref())
    }

    /// Is a replica of `peer` currently installed in this shard?
    pub fn replica_installed(&self, peer: u32) -> bool {
        self.replicas
            .get(&peer)
            .is_some_and(|st| st.filter.is_some())
    }

    /// The bit array of the installed replica of `peer`, if synced.
    pub fn replica_bits(&self, peer: u32) -> Option<BitVec> {
        self.replicas
            .get(&peer)
            .and_then(|st| st.filter.as_deref())
            .map(|f| f.bits().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 4, 8] {
            for i in 0..64u32 {
                let key = UrlKey::new(format!("http://s/{i}").as_bytes());
                let a = shard_of(&key, n);
                let b = shard_of(&key, n);
                assert_eq!(a, b, "routing must be deterministic");
                assert!(a < n);
            }
        }
        let key = UrlKey::new(b"http://s/one-shard");
        assert_eq!(shard_of(&key, 1), 0);
        assert_eq!(shard_of(&key, 0), 0, "degenerate count clamps to one lane");
    }

    #[test]
    fn owner_of_is_uniform_and_stable_under_resharding() {
        for shards in [1usize, 2, 4, 8] {
            let mut seen = vec![0usize; shards];
            for peer in 0..256u32 {
                let a = owner_of(peer, shards);
                assert_eq!(a, owner_of(peer, shards), "deterministic");
                assert!(a < shards);
                seen[a] += 1;
            }
            if shards > 1 {
                assert!(
                    seen.iter().all(|&c| c > 256 / shards / 4),
                    "every lane owns a fair share at {shards} shards: {seen:?}"
                );
            }
        }
        // The consistent-hash property the dense peer % shards mapping
        // lacked: growing 4 -> 8 lanes only moves peers to the *new*
        // lanes; survivors never trade peers among themselves.
        let mut moved = 0;
        for peer in 0..256u32 {
            let old = owner_of(peer, 4);
            let new = owner_of(peer, 8);
            if new != old {
                assert!(new >= 4, "peer {peer} shuffled between survivors: {old} -> {new}");
                moved += 1;
            }
        }
        assert!(moved > 0, "some peers should adopt the new lanes");
    }

    #[test]
    fn owner_of_spreads_sparse_id_strides() {
        // Under peer % shards, ids with stride 64 all collided onto lane
        // 0; rendezvous hashing keeps sparse id spaces spread.
        let shards = 4;
        let mut seen = vec![0usize; shards];
        for i in 0..32u32 {
            seen[owner_of(i * 64, shards)] += 1;
        }
        assert!(
            seen.iter().filter(|&&c| c > 0).count() > 1,
            "stride-64 ids must not pile onto one lane: {seen:?}"
        );
    }

    #[test]
    fn shard_routing_spreads_keys() {
        let n = 4usize;
        let mut seen = vec![0usize; n];
        for i in 0..256u32 {
            let key = UrlKey::new(format!("http://server-{}.x/{i}", i % 7).as_bytes());
            seen[shard_of(&key, n)] += 1;
        }
        assert!(
            seen.iter().all(|&c| c > 0),
            "every shard should own some keys: {seen:?}"
        );
    }

    #[test]
    fn insert_remove_round_trips_the_slice() {
        let cfg = FilterConfig {
            bits: 512,
            hashes: 4,
            function_bits: 32,
        };
        let mut shard = Shard::new(0, Some(cfg));
        let key = UrlKey::new(b"http://s/doc");
        let mut out = Vec::new();
        shard.handle(ShardEvent::Insert { url: &key }, &mut out);
        assert!(out.is_empty(), "directory mutations emit no outputs");
        assert!(shard.local_bits().is_some_and(|b| b.count_ones() > 0));
        shard.handle(ShardEvent::Remove { url: &key }, &mut out);
        assert!(shard.local_bits().is_some_and(|b| b.count_ones() == 0));
    }

    #[test]
    fn delta_without_bitmap_resyncs_with_backoff() {
        let mut shard = Shard::new(0, None);
        let spec = HashSpec::paper_default(4, 512).unwrap();
        let delta = |seq| DirUpdate {
            function_num: 4,
            function_bits: 32,
            bit_array_size: 512,
            generation: 7,
            seq,
            content: DirContent::Flips(Vec::new()),
        };
        let at = |ms: u64| VirtualTime::from_micros(ms * 1000);
        let mut out = Vec::new();
        shard.handle(
            ShardEvent::Apply { now: at(10), from: 1, spec, update: delta(3) },
            &mut out,
        );
        assert!(
            matches!(out.as_slice(), [ShardOutput::Resync { peer: 1, last_generation: 0 }]),
            "first gap decides to resync: {out:?}"
        );
        out.clear();
        shard.handle(
            ShardEvent::Apply { now: at(20), from: 1, spec, update: delta(3) },
            &mut out,
        );
        assert!(out.is_empty(), "within backoff: no second decision: {out:?}");
        out.clear();
        shard.handle(
            ShardEvent::Apply { now: at(300), from: 1, spec, update: delta(3) },
            &mut out,
        );
        assert_eq!(out.len(), 1, "after backoff the retry rides the next delta");
        assert!(!shard.replica_installed(1), "no install from a delta alone");
    }

    /// Compress the `[start, start + len)` slice of `bits` into the
    /// wire fields of one DIRFULL_GR segment.
    fn gr_segment(bits: &BitVec, start: usize, len: usize) -> DirContent {
        let mut sub = BitVec::new(len);
        for i in 0..len {
            if bits.get(start + i) {
                sub.set(i, true);
            }
        }
        let c = sc_bloom::compress(&sub);
        DirContent::CompressedBitmap {
            first_bit: start as u32,
            seg_bits: len as u32,
            ones: c.ones,
            rice: c.rice,
            data: c.data,
        }
    }

    fn gr_update(generation: u32, seq: u32, content: DirContent) -> DirUpdate {
        DirUpdate {
            function_num: 4,
            function_bits: 32,
            bit_array_size: 512,
            generation,
            seq,
            content,
        }
    }

    fn sample_bits() -> BitVec {
        let mut bits = BitVec::new(512);
        for i in [0usize, 17, 63, 64, 200, 255, 256, 300, 511] {
            bits.set(i, true);
        }
        bits
    }

    #[test]
    fn compressed_bitmap_installs_like_a_raw_one() {
        let spec = HashSpec::paper_default(4, 512).unwrap();
        let bits = sample_bits();
        let mut shard = Shard::new(0, None);
        let mut out = Vec::new();
        shard.handle(
            ShardEvent::Apply {
                now: VirtualTime::ZERO,
                from: 2,
                spec,
                update: gr_update(5, 9, gr_segment(&bits, 0, 512)),
            },
            &mut out,
        );
        assert!(shard.replica_installed(2), "single GR segment installs");
        assert_eq!(shard.replica_bits(2).unwrap(), bits, "bit-for-bit");
        assert!(
            out.iter().any(|o| matches!(
                o,
                ShardOutput::Effect(Effect::ReplicaInstalled { peer: 2, seq: 9, .. })
            )),
            "install effect: {out:?}"
        );
        // Sequencing matches the raw-bitmap discipline: the next delta
        // at seq 10 applies cleanly.
        out.clear();
        shard.handle(
            ShardEvent::Apply {
                now: VirtualTime::ZERO,
                from: 2,
                spec,
                update: gr_update(5, 10, DirContent::Flips(vec![sc_bloom::Flip::set(7)])),
            },
            &mut out,
        );
        assert!(shard.replica_bits(2).unwrap().get(7), "delta applied after GR install");
    }

    #[test]
    fn split_segments_install_only_when_complete_and_in_order() {
        let spec = HashSpec::paper_default(4, 512).unwrap();
        let bits = sample_bits();
        let apply = |shard: &mut Shard, seq: u32, content: DirContent| {
            let mut out = Vec::new();
            shard.handle(
                ShardEvent::Apply {
                    now: VirtualTime::ZERO,
                    from: 3,
                    spec,
                    update: gr_update(7, seq, content),
                },
                &mut out,
            );
            out
        };

        // In-order halves assemble and install once complete.
        let mut shard = Shard::new(0, None);
        apply(&mut shard, 4, gr_segment(&bits, 0, 256));
        assert!(!shard.replica_installed(3), "half a bitmap never installs");
        apply(&mut shard, 4, gr_segment(&bits, 256, 256));
        assert!(shard.replica_installed(3));
        assert_eq!(shard.replica_bits(3).unwrap(), bits);

        // A lost first segment leaves the tail orphaned: no install.
        let mut shard = Shard::new(0, None);
        apply(&mut shard, 4, gr_segment(&bits, 256, 256));
        assert!(!shard.replica_installed(3), "tail without head is discarded");

        // A fresh attempt (first_bit 0) supersedes stale staging.
        let mut shard = Shard::new(0, None);
        apply(&mut shard, 4, gr_segment(&bits, 0, 256));
        apply(&mut shard, 5, gr_segment(&bits, 0, 256)); // retry at a newer seq
        apply(&mut shard, 4, gr_segment(&bits, 256, 256)); // stale tail: dropped
        assert!(!shard.replica_installed(3), "stale tail must not complete the retry");
        apply(&mut shard, 5, gr_segment(&bits, 256, 256));
        assert!(shard.replica_installed(3), "matching tail completes the retry");
    }

    #[test]
    fn drop_replica_reports_changes_only_when_installed() {
        let mut shard = Shard::new(0, None);
        let mut out = Vec::new();
        shard.handle(ShardEvent::DropReplica { peer: 9 }, &mut out);
        assert!(out.is_empty(), "no replica, nothing changed");
        let spec = HashSpec::paper_default(4, 512).unwrap();
        let bitmap = DirUpdate {
            function_num: 4,
            function_bits: 32,
            bit_array_size: 512,
            generation: 3,
            seq: 0,
            content: DirContent::Bitmap(vec![0u64; 8]),
        };
        shard.handle(
            ShardEvent::Apply { now: VirtualTime::ZERO, from: 9, spec, update: bitmap },
            &mut out,
        );
        assert!(shard.replica_installed(9));
        out.clear();
        shard.handle(ShardEvent::DropReplica { peer: 9 }, &mut out);
        assert!(
            matches!(out.as_slice(), [ShardOutput::ReplicasChanged]),
            "dropping an installed replica must re-merge: {out:?}"
        );
    }
}
