//! The origin-server emulator.
//!
//! Section IV's benchmark servers "delay the replies to emulate Internet
//! latencies" — each forked server process "waits for one second before
//! sending the reply". This emulator does the same on plain threads: it
//! answers any GET with a synthesized body of the size the request asks
//! for (via the `X-Doc-Size` header, as the trace replay of Section VII
//! encodes sizes in requests), echoing `X-Doc-LM` as `Last-Modified`,
//! after a configurable delay.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long the accept loop naps when no connection is waiting.
pub(crate) const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Counters the origin keeps (for sanity checks in experiments).
#[derive(Debug, Default)]
pub struct OriginStats {
    /// GETs served.
    pub requests: AtomicU64,
    /// Body bytes written.
    pub bytes: AtomicU64,
}

/// Handle to a running origin emulator.
pub struct Origin {
    /// Bound address.
    pub addr: SocketAddr,
    /// Live counters.
    pub stats: Arc<OriginStats>,
    shutdown: Arc<AtomicBool>,
}

impl Origin {
    /// Spawn an origin on an ephemeral loopback port that delays every
    /// reply by `delay`.
    pub fn spawn(delay: Duration) -> std::io::Result<Origin> {
        Self::spawn_at(SocketAddr::from(([127, 0, 0, 1], 0)), delay)
    }

    /// Spawn an origin on a specific address.
    pub fn spawn_at(bind: SocketAddr, delay: Duration) -> std::io::Result<Origin> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(OriginStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let st = stats.clone();
        let stop = shutdown.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Request/response exchanges are small; Nagle +
                        // delayed ACK would add ~40 ms per turn.
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_nonblocking(false);
                        let st = st.clone();
                        std::thread::spawn(move || {
                            let _ = serve_conn(stream, delay, st);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Origin {
            addr,
            stats,
            shutdown,
        })
    }

    /// Stop accepting connections.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for Origin {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one connection; supports sequential keep-alive GETs.
fn serve_conn(
    mut stream: TcpStream,
    delay: Duration,
    stats: Arc<OriginStats>,
) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        // Read until a full head is buffered.
        let req = loop {
            match sc_wire::http::parse_request(&buf) {
                Ok(sc_wire::http::Parse::Done { value, consumed }) => {
                    buf.drain(..consumed);
                    break value;
                }
                Ok(sc_wire::http::Parse::NeedMore) => {
                    let mut chunk = [0u8; 4096];
                    let n = stream.read(&mut chunk)?;
                    if n == 0 {
                        return Ok(()); // clean close between requests
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(_) => {
                    let head =
                        sc_wire::http::build_response(400, "Bad Request", &[("Content-Length", "0")]);
                    stream.write_all(head.as_bytes())?;
                    return Ok(());
                }
            }
        };

        let size: u64 = sc_wire::http::header(&req.headers, "x-doc-size")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1024);
        let lm = sc_wire::http::header(&req.headers, "x-doc-lm")
            .unwrap_or("0")
            .to_string();

        // The paper's artificial Internet latency.
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }

        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats.bytes.fetch_add(size, Ordering::Relaxed);

        let head = sc_wire::http::build_response(
            200,
            "OK",
            &[
                ("Content-Length", &size.to_string()),
                ("X-Doc-LM", &lm),
                ("Connection", "keep-alive"),
            ],
        );
        stream.write_all(head.as_bytes())?;
        write_body(&mut stream, size)?;
    }
}

/// Write `size` synthesized body bytes in chunks.
pub fn write_body<W: Write>(w: &mut W, size: u64) -> std::io::Result<()> {
    const CHUNK: usize = 16 * 1024;
    static FILL: [u8; CHUNK] = [b'x'; CHUNK];
    let mut left = size;
    while left > 0 {
        let n = (left as usize).min(CHUNK);
        w.write_all(&FILL[..n])?;
        left -= n as u64;
    }
    Ok(())
}

/// Read and discard exactly `size` body bytes.
pub fn drain_body<R: Read>(r: &mut R, size: u64) -> std::io::Result<()> {
    let mut left = size;
    let mut chunk = [0u8; 16 * 1024];
    while left > 0 {
        let want = (left as usize).min(chunk.len());
        let n = r.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "body truncated",
            ));
        }
        left -= n as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, size: u64, lm: &str) -> (u16, u64, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        let req = sc_wire::http::build_request(
            "http://server-0.trace.invalid/doc/1",
            &[("X-Doc-Size", &size.to_string()), ("X-Doc-LM", lm)],
        );
        s.write_all(req.as_bytes()).unwrap();
        let mut buf = Vec::new();
        let resp = loop {
            match sc_wire::http::parse_response(&buf).unwrap() {
                sc_wire::http::Parse::Done { value, consumed } => {
                    buf.drain(..consumed);
                    break value;
                }
                sc_wire::http::Parse::NeedMore => {
                    let mut chunk = [0u8; 4096];
                    let n = s.read(&mut chunk).unwrap();
                    assert!(n > 0);
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        };
        let len = sc_wire::http::content_length(&resp.headers).unwrap();
        let mut got = buf.len() as u64;
        let mut chunk = [0u8; 4096];
        while got < len {
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0);
            got += n as u64;
        }
        let lm_out = sc_wire::http::header(&resp.headers, "x-doc-lm").unwrap().to_string();
        (resp.status, got, lm_out)
    }

    #[test]
    fn serves_requested_size_and_echoes_version() {
        let origin = Origin::spawn(Duration::ZERO).unwrap();
        let (status, body, lm) = get(origin.addr, 5000, "77");
        assert_eq!(status, 200);
        assert_eq!(body, 5000);
        assert_eq!(lm, "77");
        assert_eq!(origin.stats.requests.load(Ordering::Relaxed), 1);
        assert_eq!(origin.stats.bytes.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn delay_is_applied() {
        let origin = Origin::spawn(Duration::from_millis(80)).unwrap();
        let t0 = std::time::Instant::now();
        let (status, body, _) = get(origin.addr, 10, "0");
        assert_eq!((status, body), (200, 10));
        assert!(
            t0.elapsed() >= Duration::from_millis(75),
            "reply arrived too fast: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn keep_alive_serves_sequential_requests() {
        let origin = Origin::spawn(Duration::ZERO).unwrap();
        let mut s = TcpStream::connect(origin.addr).unwrap();
        for i in 1..=3u64 {
            let req = sc_wire::http::build_request(
                "http://server-0.trace.invalid/doc/2",
                &[("X-Doc-Size", &(i * 100).to_string()), ("X-Doc-LM", "1")],
            );
            s.write_all(req.as_bytes()).unwrap();
            let mut buf = Vec::new();
            let resp = loop {
                match sc_wire::http::parse_response(&buf).unwrap() {
                    sc_wire::http::Parse::Done { value, consumed } => {
                        buf.drain(..consumed);
                        break value;
                    }
                    sc_wire::http::Parse::NeedMore => {
                        let mut chunk = [0u8; 4096];
                        let n = s.read(&mut chunk).unwrap();
                        assert!(n > 0, "iteration {i}");
                        buf.extend_from_slice(&chunk[..n]);
                    }
                }
            };
            let len = sc_wire::http::content_length(&resp.headers).unwrap();
            assert_eq!(len, i * 100);
            let mut left = len - buf.len() as u64;
            let mut chunk = [0u8; 4096];
            while left > 0 {
                let n = s.read(&mut chunk[..(left as usize).min(4096)]).unwrap();
                left -= n as u64;
            }
        }
        assert_eq!(origin.stats.requests.load(Ordering::Relaxed), 3);
    }
}
