//! The origin-server emulator.
//!
//! Section IV's benchmark servers "delay the replies to emulate Internet
//! latencies" — each forked server process "waits for one second before
//! sending the reply". This emulator does the same on tokio: it answers
//! any GET with a synthesized body of the size the request asks for
//! (via the `X-Doc-Size` header, as the trace replay of Section VII
//! encodes sizes in requests), echoing `X-Doc-LM` as `Last-Modified`,
//! after a configurable delay.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// Counters the origin keeps (for sanity checks in experiments).
#[derive(Debug, Default)]
pub struct OriginStats {
    /// GETs served.
    pub requests: AtomicU64,
    /// Body bytes written.
    pub bytes: AtomicU64,
}

/// Handle to a running origin emulator.
pub struct Origin {
    /// Bound address.
    pub addr: SocketAddr,
    /// Live counters.
    pub stats: Arc<OriginStats>,
    shutdown: tokio::sync::watch::Sender<bool>,
}

impl Origin {
    /// Spawn an origin on an ephemeral loopback port that delays every
    /// reply by `delay`.
    pub async fn spawn(delay: Duration) -> std::io::Result<Origin> {
        Self::spawn_at("127.0.0.1:0".parse().unwrap(), delay).await
    }

    /// Spawn an origin on a specific address.
    pub async fn spawn_at(bind: SocketAddr, delay: Duration) -> std::io::Result<Origin> {
        let listener = TcpListener::bind(bind).await?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(OriginStats::default());
        let (tx, rx) = tokio::sync::watch::channel(false);
        let st = stats.clone();
        tokio::spawn(async move {
            let mut rx = rx;
            loop {
                tokio::select! {
                    _ = rx.changed() => break,
                    accepted = listener.accept() => {
                        let Ok((stream, _)) = accepted else { break };
                        let _ = stream.set_nodelay(true);
                        let st = st.clone();
                        tokio::spawn(async move {
                            let _ = serve_conn(stream, delay, st).await;
                        });
                    }
                }
            }
        });
        Ok(Origin {
            addr,
            stats,
            shutdown: tx,
        })
    }

    /// Stop accepting connections.
    pub fn shutdown(&self) {
        let _ = self.shutdown.send(true);
    }
}

/// Serve one connection; supports sequential keep-alive GETs.
async fn serve_conn(
    mut stream: TcpStream,
    delay: Duration,
    stats: Arc<OriginStats>,
) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        // Read until a full head is buffered.
        let req = loop {
            match sc_wire::http::parse_request(&buf) {
                Ok(sc_wire::http::Parse::Done { value, consumed }) => {
                    buf.drain(..consumed);
                    break value;
                }
                Ok(sc_wire::http::Parse::NeedMore) => {
                    let mut chunk = [0u8; 4096];
                    let n = stream.read(&mut chunk).await?;
                    if n == 0 {
                        return Ok(()); // clean close between requests
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(_) => {
                    let head = sc_wire::http::build_response(400, "Bad Request", &[("Content-Length", "0")]);
                    stream.write_all(head.as_bytes()).await?;
                    return Ok(());
                }
            }
        };

        let size: u64 = sc_wire::http::header(&req.headers, "x-doc-size")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1024);
        let lm = sc_wire::http::header(&req.headers, "x-doc-lm")
            .unwrap_or("0")
            .to_string();

        // The paper's artificial Internet latency.
        if !delay.is_zero() {
            tokio::time::sleep(delay).await;
        }

        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats.bytes.fetch_add(size, Ordering::Relaxed);

        let head = sc_wire::http::build_response(
            200,
            "OK",
            &[
                ("Content-Length", &size.to_string()),
                ("X-Doc-LM", &lm),
                ("Connection", "keep-alive"),
            ],
        );
        stream.write_all(head.as_bytes()).await?;
        write_body(&mut stream, size).await?;
    }
}

/// Write `size` synthesized body bytes in chunks.
pub async fn write_body<W: AsyncWriteExt + Unpin>(w: &mut W, size: u64) -> std::io::Result<()> {
    const CHUNK: usize = 16 * 1024;
    static FILL: [u8; CHUNK] = [b'x'; CHUNK];
    let mut left = size;
    while left > 0 {
        let n = (left as usize).min(CHUNK);
        w.write_all(&FILL[..n]).await?;
        left -= n as u64;
    }
    Ok(())
}

/// Read and discard exactly `size` body bytes.
pub async fn drain_body<R: AsyncReadExt + Unpin>(r: &mut R, size: u64) -> std::io::Result<()> {
    let mut left = size;
    let mut chunk = [0u8; 16 * 1024];
    while left > 0 {
        let want = (left as usize).min(chunk.len());
        let n = r.read(&mut chunk[..want]).await?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "body truncated",
            ));
        }
        left -= n as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    async fn get(addr: SocketAddr, size: u64, lm: &str) -> (u16, u64, String) {
        let mut s = TcpStream::connect(addr).await.unwrap();
        let req = sc_wire::http::build_request(
            "http://server-0.trace.invalid/doc/1",
            &[("X-Doc-Size", &size.to_string()), ("X-Doc-LM", lm)],
        );
        s.write_all(req.as_bytes()).await.unwrap();
        let mut buf = Vec::new();
        let resp = loop {
            match sc_wire::http::parse_response(&buf).unwrap() {
                sc_wire::http::Parse::Done { value, consumed } => {
                    buf.drain(..consumed);
                    break value;
                }
                sc_wire::http::Parse::NeedMore => {
                    let mut chunk = [0u8; 4096];
                    let n = s.read(&mut chunk).await.unwrap();
                    assert!(n > 0);
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        };
        let len = sc_wire::http::content_length(&resp.headers).unwrap();
        let mut got = buf.len() as u64;
        let mut chunk = [0u8; 4096];
        while got < len {
            let n = s.read(&mut chunk).await.unwrap();
            assert!(n > 0);
            got += n as u64;
        }
        let lm_out = sc_wire::http::header(&resp.headers, "x-doc-lm").unwrap().to_string();
        (resp.status, got, lm_out)
    }

    #[tokio::test]
    async fn serves_requested_size_and_echoes_version() {
        let origin = Origin::spawn(Duration::ZERO).await.unwrap();
        let (status, body, lm) = get(origin.addr, 5000, "77").await;
        assert_eq!(status, 200);
        assert_eq!(body, 5000);
        assert_eq!(lm, "77");
        assert_eq!(origin.stats.requests.load(Ordering::Relaxed), 1);
        assert_eq!(origin.stats.bytes.load(Ordering::Relaxed), 5000);
    }

    #[tokio::test]
    async fn delay_is_applied() {
        let origin = Origin::spawn(Duration::from_millis(80)).await.unwrap();
        let t0 = std::time::Instant::now();
        let (status, body, _) = get(origin.addr, 10, "0").await;
        assert_eq!((status, body), (200, 10));
        assert!(
            t0.elapsed() >= Duration::from_millis(75),
            "reply arrived too fast: {:?}",
            t0.elapsed()
        );
    }

    #[tokio::test]
    async fn keep_alive_serves_sequential_requests() {
        let origin = Origin::spawn(Duration::ZERO).await.unwrap();
        let mut s = TcpStream::connect(origin.addr).await.unwrap();
        for i in 1..=3u64 {
            let req = sc_wire::http::build_request(
                "http://server-0.trace.invalid/doc/2",
                &[("X-Doc-Size", &(i * 100).to_string()), ("X-Doc-LM", "1")],
            );
            s.write_all(req.as_bytes()).await.unwrap();
            let mut buf = Vec::new();
            let resp = loop {
                match sc_wire::http::parse_response(&buf).unwrap() {
                    sc_wire::http::Parse::Done { value, consumed } => {
                        buf.drain(..consumed);
                        break value;
                    }
                    sc_wire::http::Parse::NeedMore => {
                        let mut chunk = [0u8; 4096];
                        let n = s.read(&mut chunk).await.unwrap();
                        assert!(n > 0, "iteration {i}");
                        buf.extend_from_slice(&chunk[..n]);
                    }
                }
            };
            let len = sc_wire::http::content_length(&resp.headers).unwrap();
            assert_eq!(len, i * 100);
            let mut left = len - buf.len() as u64;
            let mut chunk = [0u8; 4096];
            while left > 0 {
                let n = s.read(&mut chunk[..(left as usize).min(4096)]).await.unwrap();
                left -= n as u64;
            }
        }
        assert_eq!(origin.stats.requests.load(Ordering::Relaxed), 3);
    }
}
