//! Latency percentile summaries — a thin façade over [`sc_obs`]'s
//! log-bucketed histogram.
//!
//! The paper reports mean client latency; tail latency is where ICP's
//! query round-trips actually hurt (a miss waits for the slowest
//! neighbour or the timeout), so the cluster records full distributions.
//! The bucket layout (1024 logarithmic buckets, 16 per octave, ~4.4 %
//! width) lives in `sc_obs`; this module keeps the percentile-summary
//! surface the proxy and bench binaries consume.

use sc_obs::{bucket_floor, Histogram, HistogramSnapshot};

/// Concurrent histogram of microsecond latencies.
///
/// A detached [`sc_obs::Histogram`] with a percentile-oriented snapshot
/// method; the daemon's registry-attached latency histogram produces
/// the same summaries via [`summarize`].
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    inner: Histogram,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            inner: Histogram::new(),
        }
    }

    /// Record one latency in microseconds.
    pub fn record(&self, us: u64) {
        self.inner.record(us);
    }

    /// Freeze into a summary with the requested percentiles.
    pub fn snapshot(&self, percentiles: &[f64]) -> LatencySummary {
        summarize(&self.inner.snapshot(), percentiles)
    }
}

/// Build a percentile summary from a frozen histogram.
///
/// Each reported value is the *floor* of the bucket holding the
/// percentile's sample, so results under-report by at most one
/// sub-bucket (~4.4 %). Panics if a percentile is outside `[0,1]`.
pub fn summarize(snap: &HistogramSnapshot, percentiles: &[f64]) -> LatencySummary {
    let total = snap.samples();
    let mut out = Vec::with_capacity(percentiles.len());
    for &p in percentiles {
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0,1]");
        if total == 0 {
            out.push((p, 0));
            continue;
        }
        let target = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut acc = 0;
        let mut value = 0;
        for (i, &c) in snap.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                value = bucket_floor(i);
                break;
            }
        }
        out.push((p, value));
    }
    LatencySummary {
        samples: total,
        percentiles_us: out,
    }
}

/// A frozen percentile summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub samples: u64,
    /// `(percentile, microseconds)` pairs in request order.
    pub percentiles_us: Vec<(f64, u64)>,
}

impl LatencySummary {
    /// The value for a percentile previously requested, in milliseconds.
    pub fn ms(&self, p: f64) -> Option<f64> {
        self.percentiles_us
            .iter()
            .find(|(q, _)| (q - p).abs() < 1e-9)
            .map(|&(_, us)| us as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_obs::bucket_of;
    use sc_util::prop::{check, vec_of};

    #[test]
    fn buckets_are_monotone_and_cover() {
        let mut prev = 0;
        for us in [1u64, 2, 3, 7, 8, 100, 1_000, 65_536, 10_000_000] {
            let b = bucket_of(us);
            assert!(b >= prev, "bucket order at {us}");
            prev = b;
            assert!(bucket_floor(b) <= us, "floor({b}) = {} > {us}", bucket_floor(b));
        }
        assert_eq!(bucket_of(0), bucket_of(1), "zero clamps to the first bucket");
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast (1 ms), 10 slow (1 s).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot(&[0.5, 0.89, 0.95, 1.0]);
        assert_eq!(s.samples, 100);
        let p50 = s.ms(0.5).unwrap();
        // Bucket floors under-report by up to one sub-bucket (~4.4%).
        assert!((0.95..=1.0).contains(&p50), "p50 {p50} ms");
        let p95 = s.ms(0.95).unwrap();
        assert!((900.0..1100.0).contains(&p95), "p95 {p95} ms");
        assert!(s.ms(0.89).unwrap() < 2.0);
    }

    #[test]
    fn summarize_matches_wrapper() {
        let h = LatencyHistogram::new();
        let attached = Histogram::new();
        for v in [10u64, 200, 3_000, 3_000, 40_000] {
            h.record(v);
            attached.record(v);
        }
        assert_eq!(
            h.snapshot(&[0.5, 0.99]),
            summarize(&attached.snapshot(), &[0.5, 0.99]),
            "façade and registry paths summarize identically"
        );
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot(&[0.5, 0.99]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.ms(0.5), Some(0.0));
        assert_eq!(s.ms(0.42), None, "unrequested percentile");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_percentile() {
        LatencyHistogram::new().snapshot(&[1.5]);
    }

    /// The reported percentile is always <= the true value and within
    /// one sub-bucket (~10%) below it.
    #[test]
    fn prop_percentile_accuracy() {
        check("prop_percentile_accuracy", 256, |rng| {
            let mut values = vec_of(rng, 1..300, |r| r.gen_range(1u64..10_000_000));
            let h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            let s = h.snapshot(&[0.5]);
            let true_p50 = values[(values.len() - 1) / 2];
            let got = s.percentiles_us[0].1;
            assert!(got <= true_p50, "floor property: {got} > {true_p50}");
            assert!(
                (got as f64) >= true_p50 as f64 * 0.90,
                "bucket error too large: {got} vs {true_p50}"
            );
        });
    }

    #[test]
    fn prop_bucket_floor_inverts() {
        check("prop_bucket_floor_inverts", 512, |rng| {
            let us = rng.gen_range(1u64..1_000_000_000);
            let b = bucket_of(us);
            assert!(bucket_floor(b) <= us);
            // Below 2^4 an octave has fewer distinct values than
            // sub-buckets, so adjacent buckets can share a floor.
            if b + 1 < sc_obs::BUCKETS && us >= 16 {
                assert!(bucket_floor(b + 1) > us, "next bucket starts past {us}");
            }
        });
    }
}
