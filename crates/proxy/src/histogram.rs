//! A lock-free log-bucketed latency histogram.
//!
//! The paper reports mean client latency; tail latency is where ICP's
//! query round-trips actually hurt (a miss waits for the slowest
//! neighbour or the timeout), so the cluster records full distributions:
//! 1024 logarithmic buckets (16 per octave, ~4.4 % width) cover the full
//! u64 microsecond range, each an `AtomicU64`, safe to hammer from every
//! connection thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per power of two (16 ⇒ ~4.4 % bucket width).
const SUBBUCKETS: u64 = 16;
/// Total bucket count: 64 octaves × 16 sub-buckets covers the full u64
/// microsecond range.
const BUCKETS: usize = 1024;

/// Concurrent histogram of microsecond latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    /// Always exactly `BUCKETS` long.
    buckets: Box<[AtomicU64]>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a microsecond value: `SUBBUCKETS` linear slices per
/// octave.
fn bucket_of(us: u64) -> usize {
    let v = us.max(1);
    let octave = 63 - v.leading_zeros() as u64;
    let base = octave * SUBBUCKETS;
    let within = if octave == 0 {
        0
    } else {
        // Position of v within [2^octave, 2^(octave+1)).
        ((v - (1 << octave)) * SUBBUCKETS) >> octave
    };
    ((base + within) as usize).min(BUCKETS - 1)
}

/// Lower bound (µs) of a bucket, for reporting.
fn bucket_floor(idx: usize) -> u64 {
    let octave = idx as u64 / SUBBUCKETS;
    let within = idx as u64 % SUBBUCKETS;
    if octave == 0 {
        within + 1
    } else {
        (1 << octave) + ((within << octave) / SUBBUCKETS)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one latency in microseconds.
    pub fn record(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Freeze into a summary with the requested percentiles.
    pub fn snapshot(&self, percentiles: &[f64]) -> LatencySummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let mut out = Vec::with_capacity(percentiles.len());
        for &p in percentiles {
            assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0,1]");
            if total == 0 {
                out.push((p, 0));
                continue;
            }
            let target = ((p * total as f64).ceil() as u64).clamp(1, total);
            let mut acc = 0;
            let mut value = 0;
            for (i, &c) in counts.iter().enumerate() {
                acc += c;
                if acc >= target {
                    value = bucket_floor(i);
                    break;
                }
            }
            out.push((p, value));
        }
        LatencySummary {
            samples: total,
            percentiles_us: out,
        }
    }
}

/// A frozen percentile summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub samples: u64,
    /// `(percentile, microseconds)` pairs in request order.
    pub percentiles_us: Vec<(f64, u64)>,
}

impl LatencySummary {
    /// The value for a percentile previously requested, in milliseconds.
    pub fn ms(&self, p: f64) -> Option<f64> {
        self.percentiles_us
            .iter()
            .find(|(q, _)| (q - p).abs() < 1e-9)
            .map(|&(_, us)| us as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_util::prop::{check, vec_of};

    #[test]
    fn buckets_are_monotone_and_cover() {
        let mut prev = 0;
        for us in [1u64, 2, 3, 7, 8, 100, 1_000, 65_536, 10_000_000] {
            let b = bucket_of(us);
            assert!(b >= prev, "bucket order at {us}");
            prev = b;
            assert!(bucket_floor(b) <= us, "floor({b}) = {} > {us}", bucket_floor(b));
        }
        assert_eq!(bucket_of(0), bucket_of(1), "zero clamps to the first bucket");
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast (1 ms), 10 slow (1 s).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot(&[0.5, 0.89, 0.95, 1.0]);
        assert_eq!(s.samples, 100);
        let p50 = s.ms(0.5).unwrap();
        // Bucket floors under-report by up to one sub-bucket (~4.4%).
        assert!((0.95..=1.0).contains(&p50), "p50 {p50} ms");
        let p95 = s.ms(0.95).unwrap();
        assert!((900.0..1100.0).contains(&p95), "p95 {p95} ms");
        assert!(s.ms(0.89).unwrap() < 2.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot(&[0.5, 0.99]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.ms(0.5), Some(0.0));
        assert_eq!(s.ms(0.42), None, "unrequested percentile");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_percentile() {
        LatencyHistogram::new().snapshot(&[1.5]);
    }

    /// The reported percentile is always <= the true value and within
    /// one sub-bucket (~10%) below it.
    #[test]
    fn prop_percentile_accuracy() {
        check("prop_percentile_accuracy", 256, |rng| {
            let mut values = vec_of(rng, 1..300, |r| r.gen_range(1u64..10_000_000));
            let h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            let s = h.snapshot(&[0.5]);
            let true_p50 = values[(values.len() - 1) / 2];
            let got = s.percentiles_us[0].1;
            assert!(got <= true_p50, "floor property: {got} > {true_p50}");
            assert!(
                (got as f64) >= true_p50 as f64 * 0.90,
                "bucket error too large: {got} vs {true_p50}"
            );
        });
    }

    #[test]
    fn prop_bucket_floor_inverts() {
        check("prop_bucket_floor_inverts", 512, |rng| {
            let us = rng.gen_range(1u64..1_000_000_000);
            let b = bucket_of(us);
            assert!(bucket_floor(b) <= us);
            if b + 1 < BUCKETS {
                assert!(bucket_floor(b + 1) > us, "next bucket starts past {us}");
            }
        });
    }
}
