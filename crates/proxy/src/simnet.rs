//! Deterministic simulation of a summary-cache cluster — FoundationDB
//! style: N [`crate::router::Router`]s (each partitioned into
//! [`SimConfig::shards`] lanes), one virtual clock, one event
//! priority-queue, and a seeded fault plan. Nothing here touches a
//! socket or the wall clock (the sc-check `sans_io` rule enforces it),
//! so a seed *is* a schedule: the same seed always produces the same
//! event journal, byte-for-byte — at *every* shard count, which is the
//! routed runtime's determinism contract (DESIGN.md §13).
//!
//! The fault plan injects, all from one [`sc_util::Rng`]:
//!
//! * **loss** — any datagram (including keep-alives, which exercises
//!   failure detection) vanishes with probability `loss`;
//! * **duplication** — a second copy is delivered with an independent
//!   delay with probability `duplicate`;
//! * **reordering** — every delivery draws a random delay, so datagrams
//!   overtake each other;
//! * **crash + restart** — a proxy goes silent, then comes back with a
//!   fresh generation and an empty cache, forcing peers through the
//!   restart-resync path;
//! * **partition + heal** — the cluster splits in two; cross-partition
//!   datagrams are dropped until the heal.
//!
//! After the fault window, faults stop and the run enters a *settle*
//! phase driven by [`sc_util::poll::converge`]: keep-alive ticks keep
//! firing until every live proxy's replica of every other proxy matches
//! the owner's published filter **bit for bit** (or a step budget runs
//! out, which fails the run).
//!
//! While the simulation runs it checks, on every output batch, the
//! protocol's safety invariants:
//!
//! * a replica is only ever present after a full-bitmap install — never
//!   conjured from a delta alone;
//! * a detected seq gap produces *exactly one* DIRREQ, unless a DIRREQ
//!   to that publisher is still inside [`RESYNC_BACKOFF`], in which case
//!   it produces none.
//!
//! The same harness doubles as the **scenario driver**: build with
//! [`Sim::with_scenario`] (or call [`run_scenario`] / [`run_named`]) to
//! replay a composable, seeded [`sc_trace::scenario::Scenario`] —
//! client requests, scripted crashes, evict-everywhere storms — on top
//! of the random fault plan, and get back a [`ScenarioReport`]: the
//! per-scenario "good ruler" (hit ratio over time windows, summary
//! staleness, false-hit rate, per-opcode message distribution, tail
//! latency in virtual time), projected from an sc-obs snapshot.

use crate::machine::{
    Dest, DirectoryView, Effect, Event, Output, SendKind, VirtualTime, RESYNC_BACKOFF,
};
use crate::router::{DirectoryInspect, Router};
use sc_bloom::UrlKey;
use sc_obs::Registry;
use sc_trace::model::render_url;
use sc_trace::scenario::{Scenario, ScenarioKind};
use sc_util::Rng;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::rc::Rc;
use summary_cache_core::{ProxySummary, SummaryKind, UpdatePolicy};

/// Knobs for one simulation run. The defaults describe an aggressive
/// schedule — every fault class enabled — that still converges.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of simulated proxies (ids `0..proxies`).
    pub proxies: usize,
    /// Local cache-insert operations scheduled across the fault window
    /// (each triggers a publish under the threshold-0 policy).
    pub local_ops: usize,
    /// Length of the fault window in virtual milliseconds.
    pub horizon_ms: u64,
    /// Keep-alive / heartbeat period (virtual milliseconds).
    pub keepalive_ms: u64,
    /// Per-proxy document capacity of the model cache; small enough
    /// that inserts cause evictions (exercising summary removals).
    pub cache_docs: usize,
    /// Expected documents for summary sizing (small keeps filters tiny
    /// and runs fast).
    pub expected_docs: u64,
    /// Bloom load factor (bits per document).
    pub load_factor: u32,
    /// Bloom hash count.
    pub hashes: u16,
    /// Probability an in-flight datagram is dropped (fault window only).
    pub loss: f64,
    /// Probability a datagram is delivered twice (fault window only).
    pub duplicate: f64,
    /// Delivery delay range in virtual microseconds; the spread is what
    /// produces reordering. Outside the fault window every delivery
    /// takes `delay_us.0` (FIFO, so settling is fast).
    pub delay_us: (u64, u64),
    /// Number of distinct proxies to crash and restart.
    pub crashes: usize,
    /// Number of partition windows to schedule.
    pub partitions: usize,
    /// Settle budget: keep-alive windows to run after the fault window
    /// before declaring the cluster non-convergent.
    pub settle_ticks: usize,
    /// Shard lanes per simulated proxy. Every count must produce the
    /// same journal byte-for-byte (the router's determinism contract);
    /// the default honors the `SC_SIM_SHARDS` override so the whole
    /// seeded suite can be re-run sharded without code changes.
    pub shards: usize,
    /// Fanout stagger slots per router: peers are serviced in
    /// `fanout_slots` groups and ticks fire `fanout_slots` times per
    /// keep-alive period, so each peer keeps its once-per-period
    /// cadence while per-tick bursts shrink. 1 = the historical
    /// lock-step fanout.
    pub fanout_slots: usize,
    /// Seq every router's publish lanes start from (via
    /// [`ProxySummary::set_seq`]). Defaults to 0; set near `u32::MAX`
    /// to drive the sequence-wraparound path under faults.
    pub initial_seq: u32,
}

/// The `SC_SIM_SHARDS` override for [`SimConfig::default`]: unset or
/// unparsable means 1 lane (the historical machine); any positive count
/// partitions every simulated proxy that many ways.
fn env_shards() -> usize {
    env_knob("SC_SIM_SHARDS", 1)
}

/// The `SC_SIM_PEERS` override for [`SimConfig::default`]: how many
/// proxies the default cluster simulates (the big-N scaling knob; CI's
/// big-N smoke sets 64). Unset or unparsable means the historical 4.
fn env_peers() -> usize {
    env_knob("SC_SIM_PEERS", 4)
}

fn env_knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            proxies: env_peers(),
            local_ops: 240,
            horizon_ms: 2_000,
            keepalive_ms: 50,
            cache_docs: 48,
            expected_docs: 64,
            load_factor: 8,
            hashes: 4,
            loss: 0.12,
            duplicate: 0.08,
            delay_us: (200, 40_000),
            crashes: 2,
            partitions: 2,
            settle_ticks: 400,
            shards: env_shards(),
            fanout_slots: 1,
            initial_seq: 0,
        }
    }
}

/// What one run produced.
#[derive(Debug)]
pub struct SimReport {
    /// The seed the run was built from.
    pub seed: u64,
    /// Total events popped off the priority queue (deliveries, ticks,
    /// local ops, crashes, restarts, partition edges).
    pub events_processed: u64,
    /// Did every live (observer, publisher) pair converge bit-for-bit?
    pub converged: bool,
    /// Settle keep-alive windows consumed before convergence (`None`
    /// when the budget ran out).
    pub settle_steps: Option<usize>,
    /// The deterministic event journal (one line per send, delivery,
    /// effect, and fault-plan action, each stamped with virtual time).
    pub journal: Vec<String>,
    /// Seq gaps detected across all proxies.
    pub gaps_seen: u64,
    /// DIRREQs sent across all proxies.
    pub resyncs_requested: u64,
    /// Full-bitmap replica installs across all proxies.
    pub replicas_installed: u64,
    /// Datagrams the fault plan dropped (loss + partition cuts + down
    /// receivers).
    pub datagrams_dropped: u64,
    /// Datagrams the fault plan duplicated.
    pub datagrams_duplicated: u64,
    /// Peer-failure declarations across all proxies.
    pub failures: u64,
    /// Peer-recovery detections across all proxies.
    pub recoveries: u64,
    /// Encoded bytes of DIRUPDATE traffic (deltas + fulls) put on the
    /// wire across all proxies, before any fault-plan drops — the
    /// numerator of the scaleout bench's bytes/proxy/sec curve.
    pub update_bytes_sent: u64,
    /// Encoded bytes of everything else (keep-alives, DIRREQs, query
    /// traffic) across all proxies.
    pub other_bytes_sent: u64,
    /// Update datagrams (deltas + fulls) across all proxies.
    pub update_datagrams_sent: u64,
}

enum SimEvent {
    /// A datagram arrives at `to`.
    Deliver { to: usize, from: usize, bytes: Vec<u8> },
    /// `node`'s keep-alive timer fires (self-rescheduling).
    Tick { node: usize },
    /// A local client stores a fresh document at `node`.
    Insert { node: usize },
    /// `node` crashes (drops off the network, loses all state).
    Crash { node: usize },
    /// `node` restarts with a fresh generation and empty cache.
    Restart { node: usize },
    /// The network splits; `sides[i]` says which half node `i` is in.
    PartitionStart { sides: Vec<bool> },
    /// The partition heals.
    PartitionHeal,
    /// A scenario client of `node` requests `url` (scenario runs only).
    Request { node: usize, url: String },
    /// `url` is evicted from every cache that holds it while the
    /// summaries keep advertising it — the false-hit-storm trigger
    /// (scenario runs only).
    PurgeEverywhere { url: String },
    /// End-of-window staleness sample point (scenario runs only).
    WindowMark { idx: usize },
}

struct QueueEntry {
    at: u64,
    order: u64,
    ev: SimEvent,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.order == other.order
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first,
        // with the scheduling order as a deterministic tie-break.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.order.cmp(&self.order))
    }
}

/// The model cache directory: which URLs a node currently holds.
struct SetView<'a>(&'a HashSet<String>);

impl DirectoryView for SetView<'_> {
    fn contains(&self, url: &str) -> bool {
        self.0.contains(url)
    }
}

struct Node {
    router: Router,
    /// Insertion-ordered model cache (FIFO eviction at `cache_docs`).
    docs: VecDeque<String>,
    /// Membership view of `docs` for query answering.
    dir: HashSet<String>,
    up: bool,
    incarnation: u32,
}

/// One deterministic simulation. Build with [`Sim::new`], execute with
/// [`Sim::run`].
pub struct Sim {
    cfg: SimConfig,
    seed: u64,
    rng: Rng,
    now: u64,
    order: u64,
    queue: BinaryHeap<QueueEntry>,
    nodes: Vec<Node>,
    partition: Option<Vec<bool>>,
    faults: bool,
    next_doc: u64,
    journal: Vec<String>,
    events_processed: u64,
    /// Mirror of "node i has an installed replica of peer j", maintained
    /// purely from ReplicaInstalled/UpdateGap/PeerFailed effects — the
    /// machine's actual replica presence must never diverge from it
    /// (that divergence would mean a replica appeared without a bitmap).
    installed: Vec<Vec<bool>>,
    /// When node i last sent a DIRREQ to peer j, mirroring the
    /// machine's backoff stamp, for the exactly-one-DIRREQ invariant.
    last_dirreq: Vec<Vec<Option<u64>>>,
    gaps_seen: u64,
    resyncs_requested: u64,
    replicas_installed: u64,
    datagrams_dropped: u64,
    datagrams_duplicated: u64,
    failures: u64,
    recoveries: u64,
    update_bytes_sent: u64,
    other_bytes_sent: u64,
    update_datagrams_sent: u64,
    /// Reusable router-output sink: every event drives the router
    /// through this one warm buffer ([`Sim::drive`]).
    out_scratch: Vec<Output>,
    /// Reusable candidate buffer for the request loop's replica probe.
    cand_scratch: Vec<u32>,
    /// Pooled request keys: [`Sim::store_doc`] re-digests them in place
    /// (`UrlKey::reset`) instead of allocating per stored document.
    key_scratch: Vec<UrlKey>,
    /// Scenario bookkeeping; `None` for plain fault-plan runs.
    scn: Option<ScnState>,
}

/// Per-run scenario state: the sc-obs registry every request outcome,
/// window sample, and opcode count is recorded into, plus the latency
/// model's knobs and the storm probe set.
struct ScnState {
    /// All scenario metrics live here; the report is rendered from its
    /// snapshot after settle.
    reg: Rc<Registry>,
    /// Width of one report window in virtual microseconds.
    window_us: u64,
    /// Number of report windows over the scenario horizon.
    windows: usize,
    /// Virtual round-trip to the origin server, charged on every miss
    /// and false hit.
    origin_rtt_us: u64,
    /// Virtual local service time, charged on every served request.
    local_service_us: u64,
    /// URLs hit by [`SimEvent::PurgeEverywhere`] — the set the
    /// after-settle staleness probe walks.
    tracked_evicted: Vec<String>,
}

/// Deterministic per-incarnation generation number: what the daemon
/// derives from the wall clock, the simulation derives from identity.
fn generation_for(node: usize, incarnation: u32) -> u32 {
    (node as u32 + 1) * 100_000 + incarnation + 1
}

impl Sim {
    /// Build a simulation: construct the machines and schedule the whole
    /// fault plan (local ops, ticks, crashes, partitions) up front from
    /// `seed`.
    pub fn new(cfg: SimConfig, seed: u64) -> Sim {
        assert!(cfg.proxies >= 2, "a cluster needs at least two proxies");
        assert!(cfg.crashes < cfg.proxies, "leave at least one proxy standing");
        assert!(cfg.keepalive_ms > 0, "the heartbeat drives anti-entropy");
        assert!(cfg.delay_us.0 < cfg.delay_us.1, "delay range must be non-empty");
        let rng = Rng::seed_from_u64(seed ^ 0x5EED_CAFE_F00D_D00D);
        let n = cfg.proxies;
        let nodes: Vec<Node> = (0..n)
            .map(|i| Node {
                router: fresh_router(&cfg, i, 0),
                docs: VecDeque::new(),
                dir: HashSet::new(),
                up: true,
                incarnation: 0,
            })
            .collect();
        let mut sim = Sim {
            seed,
            rng,
            now: 0,
            order: 0,
            queue: BinaryHeap::new(),
            nodes,
            partition: None,
            faults: true,
            next_doc: 0,
            journal: Vec::new(),
            events_processed: 0,
            installed: vec![vec![false; n]; n],
            last_dirreq: vec![vec![None; n]; n],
            gaps_seen: 0,
            resyncs_requested: 0,
            replicas_installed: 0,
            datagrams_dropped: 0,
            out_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            key_scratch: Vec::new(),
            datagrams_duplicated: 0,
            failures: 0,
            recoveries: 0,
            update_bytes_sent: 0,
            other_bytes_sent: 0,
            update_datagrams_sent: 0,
            scn: None,
            cfg,
        };
        let horizon = sim.cfg.horizon_ms * 1_000;
        let ka = sim.cfg.keepalive_ms * 1_000;
        // Staggered self-rescheduling ticks: with fanout slots each
        // tick fires `fanout_slots` times per keep-alive period (and
        // services a different slot of peers), keeping every peer's
        // once-per-period cadence.
        let tick_every = sim.tick_interval();
        for i in 0..n {
            let phase = (i as u64 + 1) * ka / (n as u64 + 1) % tick_every.max(1);
            sim.schedule(phase, SimEvent::Tick { node: i });
        }
        // Local inserts, uniform over the fault window.
        for _ in 0..sim.cfg.local_ops {
            let at = sim.rng.gen_range(0..horizon);
            let node = sim.rng.gen_range(0..n);
            sim.schedule(at, SimEvent::Insert { node });
        }
        // Crash plan: distinct nodes, mid-window, each restarting.
        let mut victims: Vec<usize> = (0..n).collect();
        sim.rng.shuffle(&mut victims);
        for &node in victims.iter().take(sim.cfg.crashes) {
            let crash_at = sim.rng.gen_range(horizon / 4..horizon * 3 / 4);
            let down_for = sim.rng.gen_range(100_000..400_000u64);
            sim.schedule(crash_at, SimEvent::Crash { node });
            sim.schedule(crash_at + down_for, SimEvent::Restart { node });
        }
        // Partition plan: random two-coloring, never trivial.
        for _ in 0..sim.cfg.partitions {
            let start = sim.rng.gen_range(0..horizon * 3 / 4);
            let width = sim.rng.gen_range(200_000..600_000u64);
            let mut sides: Vec<bool> = (0..n).map(|_| sim.rng.gen_bool(0.5)).collect();
            if sides.iter().all(|&s| s == sides[0]) {
                sides[0] = !sides[0];
            }
            sim.schedule(start, SimEvent::PartitionStart { sides });
            sim.schedule(start + width, SimEvent::PartitionHeal);
        }
        sim
    }

    /// Virtual microseconds between Tick events: the keep-alive period
    /// divided by the fanout slot count (clamped to at least one
    /// microsecond).
    fn tick_interval(&self) -> u64 {
        (self.cfg.keepalive_ms * 1_000 / self.cfg.fanout_slots.max(1) as u64).max(1)
    }

    fn schedule(&mut self, at: u64, ev: SimEvent) {
        let order = self.order;
        self.order += 1;
        self.queue.push(QueueEntry { at, order, ev });
    }

    /// Like [`Sim::run`], but also hands back each node's router for
    /// post-run inspection (which replica diverged, and by how much).
    pub fn run_with_state(self) -> (SimReport, Vec<Router>) {
        let mut sim = self;
        let report = sim.run_inner();
        (report, sim.nodes.into_iter().map(|n| n.router).collect())
    }

    /// Run the fault window, then settle; returns the report. Panics
    /// (with the offending virtual time and nodes) if a safety
    /// invariant breaks mid-run.
    pub fn run(mut self) -> SimReport {
        self.run_inner()
    }

    fn run_inner(&mut self) -> SimReport {
        let horizon = self.cfg.horizon_ms * 1_000;
        self.advance(horizon);
        // Fault window over: heal everything and let the protocol's own
        // machinery (heartbeats, gap detection, DIRREQ resync) converge
        // the replicas.
        self.faults = false;
        self.partition = None;
        let note = format!("{}us -- settle: faults off --", self.now);
        self.journal.push(note);
        let ka = self.cfg.keepalive_ms * 1_000;
        let budget = self.cfg.settle_ticks;
        let settle_steps = sc_util::poll::converge(
            &mut *self,
            budget,
            |s| {
                let t = s.now + ka;
                s.advance(t);
            },
            |s| s.converged(),
        );
        SimReport {
            seed: self.seed,
            events_processed: self.events_processed,
            converged: settle_steps.is_some(),
            settle_steps,
            journal: std::mem::take(&mut self.journal),
            gaps_seen: self.gaps_seen,
            resyncs_requested: self.resyncs_requested,
            replicas_installed: self.replicas_installed,
            datagrams_dropped: self.datagrams_dropped,
            datagrams_duplicated: self.datagrams_duplicated,
            failures: self.failures,
            recoveries: self.recoveries,
            update_bytes_sent: self.update_bytes_sent,
            other_bytes_sent: self.other_bytes_sent,
            update_datagrams_sent: self.update_datagrams_sent,
        }
    }

    /// Has every live (observer, publisher) pair converged bit-for-bit?
    fn converged(&self) -> bool {
        (0..self.nodes.len()).all(|i| {
            !self.nodes[i].up
                || (0..self.nodes.len()).all(|j| {
                    i == j
                        || !self.nodes[j].up
                        || self.nodes[i].router.replica_bits(j as u32)
                            == self.nodes[j].router.published_bits()
                })
        })
    }

    /// Process every queued event with `at <= until`, then move the
    /// clock to `until`.
    fn advance(&mut self, until: u64) {
        while self.queue.peek().is_some_and(|e| e.at <= until) {
            let Some(entry) = self.queue.pop() else { break };
            self.now = self.now.max(entry.at);
            self.events_processed += 1;
            self.process(entry.ev);
        }
        self.now = self.now.max(until);
    }

    /// Feed one event to `node`'s router through the reusable output
    /// scratch and dispatch the results. Replica-cell publication is
    /// never flushed here: the simnet probes candidates through the
    /// shards directly, so deferring the snapshot merge forever keeps
    /// every delta apply copy-free (`Arc::make_mut` always sees a
    /// uniquely owned filter) without changing a single output.
    fn drive(&mut self, node: usize, sender: Option<usize>, ev: Event<'_>) {
        let mut outputs = std::mem::take(&mut self.out_scratch);
        let n = &mut self.nodes[node];
        n.router.handle_into(
            VirtualTime::from_micros(self.now),
            ev,
            &SetView(&n.dir),
            &mut outputs,
        );
        self.dispatch(node, sender, &mut outputs);
        self.out_scratch = outputs;
    }

    fn process(&mut self, ev: SimEvent) {
        match ev {
            SimEvent::Deliver { to, from, bytes } => {
                if !self.nodes[to].up {
                    self.datagrams_dropped += 1;
                    return;
                }
                self.journal
                    .push(format!("{}us n{to} <- n{from} {}B", self.now, bytes.len()));
                self.drive(
                    to,
                    Some(from),
                    Event::Datagram {
                        from: Some(from as u32),
                        data: &bytes,
                    },
                );
            }
            SimEvent::Tick { node } => {
                let tick_every = self.tick_interval();
                self.schedule(self.now + tick_every, SimEvent::Tick { node });
                if !self.nodes[node].up {
                    return;
                }
                self.drive(node, None, Event::Tick);
            }
            SimEvent::Insert { node } => {
                if !self.nodes[node].up {
                    return;
                }
                let url = format!("http://server-{node}.sim.invalid/doc/{}", self.next_doc);
                self.next_doc += 1;
                self.store_doc(node, url, "insert");
            }
            SimEvent::Crash { node } => {
                self.journal.push(format!("{}us n{node} CRASH", self.now));
                self.nodes[node].up = false;
            }
            SimEvent::Restart { node } => {
                let inc = self.nodes[node].incarnation + 1;
                self.journal.push(format!(
                    "{}us n{node} RESTART gen {}",
                    self.now,
                    generation_for(node, inc)
                ));
                let n = &mut self.nodes[node];
                n.up = true;
                n.incarnation = inc;
                n.router = fresh_router(&self.cfg, node, inc);
                n.docs.clear();
                n.dir.clear();
                // All replica/backoff state died with the process.
                for j in 0..self.nodes.len() {
                    self.installed[node][j] = false;
                    self.last_dirreq[node][j] = None;
                }
            }
            SimEvent::PartitionStart { sides } => {
                let a: Vec<usize> = (0..sides.len()).filter(|&i| sides[i]).collect();
                self.journal
                    .push(format!("{}us PARTITION {a:?} | rest", self.now));
                self.partition = Some(sides);
            }
            SimEvent::PartitionHeal => {
                self.journal.push(format!("{}us HEAL", self.now));
                self.partition = None;
            }
            SimEvent::Request { node, url } => self.serve_request(node, url),
            SimEvent::PurgeEverywhere { url } => self.purge_everywhere(url),
            SimEvent::WindowMark { idx } => self.sample_window(idx),
        }
    }

    /// Store `url` in `node`'s model cache (FIFO eviction at
    /// `cache_docs`) and drive the router through Stored +
    /// RequestDone, publishing the summary flips.
    fn store_doc(&mut self, node: usize, url: String, verb: &str) {
        self.store_doc_keyed(node, url, verb, None)
    }

    /// [`Sim::store_doc`] with an optionally pre-digested request key
    /// (the request loop digests the URL once for the candidate probe
    /// and hands the key down, like the daemon's scratch key).
    fn store_doc_keyed(&mut self, node: usize, url: String, verb: &str, key: Option<UrlKey>) {
        let cap = self.cfg.cache_docs;
        let n = &mut self.nodes[node];
        n.docs.push_back(url.clone());
        n.dir.insert(url.clone());
        let mut evicted = Vec::new();
        while n.docs.len() > cap {
            if let Some(victim) = n.docs.pop_front() {
                n.dir.remove(&victim);
                evicted.push(victim);
            }
        }
        self.journal.push(format!(
            "{}us n{node} {verb} {url} (evicting {})",
            self.now,
            evicted.len()
        ));
        // The simulated client digests each URL once, like the daemon's
        // request path: the request key arrives pre-digested when the
        // request loop already probed with it, and victim keys are
        // re-digested in place over the warm key pool.
        let total = 1 + evicted.len();
        let mut keys = std::mem::take(&mut self.key_scratch);
        while keys.len() < total {
            keys.push(UrlKey::new(b""));
        }
        match key {
            Some(k) => keys[0] = k,
            None => keys[0].reset(url.as_bytes()),
        }
        for (slot, victim) in keys[1..total].iter_mut().zip(&evicted) {
            slot.reset(victim.as_bytes());
        }
        // total >= 1, so the slice always has the stored key up front.
        let Some((key, victim_keys)) = keys[..total].split_first() else {
            return;
        };
        self.drive(
            node,
            None,
            Event::Stored {
                url: key,
                evicted: victim_keys,
            },
        );
        self.key_scratch = keys;
        self.drive(node, None, Event::RequestDone);
    }

    /// Serve one scenario client request at `node`: local directory
    /// hit, else probe the installed peer replicas
    /// ([`Router::candidates`]), else fetch from the origin. Remote and
    /// origin fetches both store the document locally (the paper's §II
    /// sharing model), publishing the new summary bit. Latency is
    /// virtual: local service time, plus one query RTT whenever peers
    /// are probed, plus either a peer-fetch RTT or the origin RTT.
    fn serve_request(&mut self, node: usize, url: String) {
        let Some(scn) = &self.scn else { return };
        let reg = Rc::clone(&scn.reg);
        let origin_rtt = scn.origin_rtt_us;
        let mut latency = scn.local_service_us;
        let win = self.window_label();
        let w = [("window", win.as_str())];
        let latency_hist = reg.histogram("scn_request_latency_us");
        reg.counter("scn_requests_total").incr();
        reg.counter_with("scn_window_requests_total", &w).incr();
        if !self.nodes[node].up {
            reg.counter("scn_unserved_total").incr();
            self.journal
                .push(format!("{}us n{node} req {url} unserved (down)", self.now));
            return;
        }
        if self.nodes[node].dir.contains(&url) {
            reg.counter("scn_local_hits_total").incr();
            reg.counter_with("scn_window_local_hits_total", &w).incr();
            latency_hist.record(latency);
            self.journal
                .push(format!("{}us n{node} req {url} local-hit {latency}us", self.now));
            return;
        }
        // Digest once; probe the installed replicas through the
        // memoized key path (the byte path would re-hash per peer) into
        // the warm candidate buffer.
        let key = UrlKey::new(url.as_bytes());
        let mut candidates = std::mem::take(&mut self.cand_scratch);
        self.nodes[node]
            .router
            .candidates_key_into(&key, &mut candidates);
        let mut outcome = "miss";
        if !candidates.is_empty() {
            // One parallel ICP-style round to every advertising peer.
            reg.counter("scn_queries_sent_total")
                .add(candidates.len() as u64);
            latency += self.rtt();
            let holders = candidates
                .iter()
                .filter(|&&c| {
                    let c = c as usize;
                    self.nodes[c].up && self.nodes[c].dir.contains(&url)
                })
                .count();
            reg.counter("scn_wasted_queries_total")
                .add((candidates.len() - holders) as u64);
            if holders > 0 {
                reg.counter("scn_remote_hits_total").incr();
                reg.counter_with("scn_window_remote_hits_total", &w).incr();
                latency += self.rtt();
                outcome = "remote-hit";
            } else {
                // Every advertising replica lied: the paper's false hit.
                reg.counter("scn_false_hits_total").incr();
                reg.counter_with("scn_window_false_hits_total", &w).incr();
                outcome = "false-hit";
            }
        }
        if outcome != "remote-hit" {
            reg.counter("scn_origin_fetches_total").incr();
            latency += origin_rtt;
        }
        self.cand_scratch = candidates;
        latency_hist.record(latency);
        self.journal
            .push(format!("{}us n{node} req {url} {outcome} {latency}us", self.now));
        self.store_doc_keyed(node, url, "fill", Some(key));
    }

    /// Evict `url` from every live cache that holds it, in node order.
    /// Each holder's summary keeps advertising the document until its
    /// removal delta lands at the peers — exactly the false-hit window
    /// the storm scenario measures.
    fn purge_everywhere(&mut self, url: String) {
        let key = UrlKey::new(url.as_bytes());
        let mut holders = 0u64;
        self.journal.push(format!("{}us purge {url}", self.now));
        for node in 0..self.nodes.len() {
            if !self.nodes[node].up || !self.nodes[node].dir.contains(&url) {
                continue;
            }
            holders += 1;
            let n = &mut self.nodes[node];
            n.dir.remove(&url);
            n.docs.retain(|d| d != &url);
            self.drive(node, None, Event::Purged { url: &key });
            self.drive(node, None, Event::RequestDone);
        }
        if let Some(scn) = &mut self.scn {
            scn.reg.counter("scn_evictions_total").add(holders);
            if !scn.tracked_evicted.contains(&url) {
                scn.tracked_evicted.push(url);
            }
        }
    }

    /// End-of-window staleness sample: how many live (observer,
    /// publisher) pairs currently disagree with the publisher's filter
    /// bit-for-bit. Recorded as per-window gauges.
    fn sample_window(&mut self, idx: usize) {
        let Some(scn) = &self.scn else { return };
        let reg = Rc::clone(&scn.reg);
        let mut stale = 0u64;
        let mut live = 0u64;
        for i in 0..self.nodes.len() {
            if !self.nodes[i].up {
                continue;
            }
            for j in 0..self.nodes.len() {
                if i == j || !self.nodes[j].up {
                    continue;
                }
                live += 1;
                if self.nodes[i].router.replica_bits(j as u32)
                    != self.nodes[j].router.published_bits()
                {
                    stale += 1;
                }
            }
        }
        let w = idx.to_string();
        let l = [("window", w.as_str())];
        reg.gauge_with("scn_window_stale_pairs", &l).set(stale as f64);
        reg.gauge_with("scn_window_live_pairs", &l).set(live as f64);
        self.journal.push(format!(
            "{}us window w{idx}: {stale}/{live} replica pairs stale",
            self.now
        ));
    }

    /// Label of the report window containing the current virtual time;
    /// requests after the last mark fold into the final window.
    fn window_label(&self) -> String {
        match &self.scn {
            Some(s) => ((self.now / s.window_us).min(s.windows as u64 - 1)).to_string(),
            None => String::from("0"),
        }
    }

    /// One request round-trip on the virtual wire: two one-way delays,
    /// drawn exactly like [`Sim::transmit`] draws them — random inside
    /// the fault window, the floor `delay_us.0` outside it.
    fn rtt(&mut self) -> u64 {
        let (lo, hi) = self.cfg.delay_us;
        if self.faults {
            self.rng.gen_range(lo..hi) + self.rng.gen_range(lo..hi)
        } else {
            2 * lo
        }
    }

    /// Carry out a batch of machine outputs from `node`, checking the
    /// batch-level invariants first.
    fn dispatch(&mut self, node: usize, sender: Option<usize>, outputs: &mut Vec<Output>) {
        // Invariant: a detected gap yields exactly one DIRREQ, or zero
        // when a DIRREQ to that publisher is still inside the backoff.
        for output in outputs.iter() {
            let Output::Effect(Effect::UpdateGap { peer, .. }) = output else {
                continue;
            };
            let sent = outputs
                .iter()
                .filter(|o| {
                    matches!(
                        o,
                        Output::Send(s) if matches!(s.kind, SendKind::Resync { peer: p, .. } if p == *peer)
                    )
                })
                .count();
            let within_backoff = self.last_dirreq[node][*peer as usize]
                .is_some_and(|at| self.now - at < RESYNC_BACKOFF.as_micros() as u64);
            let expected = usize::from(!within_backoff);
            assert!(
                sent == expected,
                "invariant violated at {}us: node {node} detected a gap from peer {peer} \
                 and sent {sent} DIRREQ(s), expected {expected} (backoff {})",
                self.now,
                if within_backoff { "active" } else { "clear" },
            );
        }
        for output in outputs.drain(..) {
            match output {
                Output::Effect(effect) => self.observe_effect(node, effect),
                Output::Send(send) => {
                    let node_id = self.nodes[node].router.id();
                    let Ok(bytes) = send.msg.encode(node_id) else {
                        continue;
                    };
                    if let SendKind::Resync { peer, .. } = send.kind {
                        self.last_dirreq[node][peer as usize] = Some(self.now);
                        self.resyncs_requested += 1;
                    }
                    if let Some(scn) = &self.scn {
                        scn.reg
                            .counter_with("scn_datagrams_total", &[("op", op_name(&send.kind))])
                            .incr();
                    }
                    if send.kind.is_update() {
                        self.update_bytes_sent += bytes.len() as u64;
                        self.update_datagrams_sent += 1;
                    } else {
                        self.other_bytes_sent += bytes.len() as u64;
                    }
                    self.journal.push(format!(
                        "{}us n{node} send {:?} -> {:?} {}B",
                        self.now,
                        send.kind,
                        send.to,
                        bytes.len()
                    ));
                    let targets: Vec<usize> = match send.to {
                        Dest::Peer(id) => vec![id as usize],
                        Dest::AllPeers => {
                            (0..self.nodes.len()).filter(|&j| j != node).collect()
                        }
                        Dest::Sender => match sender {
                            Some(s) => vec![s],
                            None => Vec::new(),
                        },
                    };
                    for to in targets {
                        self.transmit(node, to, &bytes);
                    }
                }
            }
        }
        // Invariant: replica presence in the machine must match the
        // bitmap-install accounting — a mismatch means a replica was
        // conjured from a delta (or survived a gap/failure drop).
        for j in 0..self.nodes.len() {
            if j == node {
                continue;
            }
            let present = self.nodes[node].router.replica_installed(j as u32);
            assert!(
                present == self.installed[node][j],
                "invariant violated at {}us: node {node}'s replica of peer {j} is {} \
                 but only bitmap installs may create replicas (tracker says {})",
                self.now,
                if present { "present" } else { "absent" },
                self.installed[node][j],
            );
        }
    }

    fn observe_effect(&mut self, node: usize, effect: Effect) {
        self.journal
            .push(format!("{}us n{node} {effect:?}", self.now));
        match effect {
            Effect::ReplicaInstalled { peer, .. } => {
                self.installed[node][peer as usize] = true;
                // A bitmap install clears the machine's backoff stamp.
                self.last_dirreq[node][peer as usize] = None;
                self.replicas_installed += 1;
            }
            Effect::UpdateGap { peer, .. } => {
                self.installed[node][peer as usize] = false;
                self.gaps_seen += 1;
            }
            Effect::PeerFailed { peer } => {
                self.installed[node][peer as usize] = false;
                // The replica entry (and its backoff stamp) was dropped.
                self.last_dirreq[node][peer as usize] = None;
                self.failures += 1;
            }
            Effect::PeerRecovered { .. } => self.recoveries += 1,
            _ => {}
        }
    }

    /// Put a datagram on the virtual wire, subject to the fault plan.
    fn transmit(&mut self, from: usize, to: usize, bytes: &[u8]) {
        if self.faults {
            if let Some(sides) = &self.partition {
                if sides[from] != sides[to] {
                    self.datagrams_dropped += 1;
                    return;
                }
            }
            if self.rng.gen_bool(self.cfg.loss) {
                self.datagrams_dropped += 1;
                return;
            }
        }
        let (lo, hi) = self.cfg.delay_us;
        let delay = if self.faults { self.rng.gen_range(lo..hi) } else { lo };
        self.schedule(
            self.now + delay,
            SimEvent::Deliver {
                to,
                from,
                bytes: bytes.to_vec(),
            },
        );
        if self.faults && self.rng.gen_bool(self.cfg.duplicate) {
            let delay = self.rng.gen_range(lo..hi);
            self.datagrams_duplicated += 1;
            self.schedule(
                self.now + delay,
                SimEvent::Deliver {
                    to,
                    from,
                    bytes: bytes.to_vec(),
                },
            );
        }
    }
}

fn fresh_router(cfg: &SimConfig, node: usize, incarnation: u32) -> Router {
    let kind = SummaryKind::Bloom {
        load_factor: cfg.load_factor,
        hashes: cfg.hashes,
    };
    let mut summary = ProxySummary::with_expected_docs(kind, cfg.expected_docs);
    summary.set_generation(generation_for(node, incarnation));
    summary.set_seq(cfg.initial_seq);
    let peers: Vec<u32> = (0..cfg.proxies as u32)
        .filter(|&p| p != node as u32)
        .collect();
    Router::new(
        node as u32,
        peers,
        cfg.keepalive_ms,
        cfg.shards,
        cfg.fanout_slots,
        Some((summary, UpdatePolicy::Threshold(0.0))),
        VirtualTime::ZERO,
    )
}

/// Convenience: build and run one simulation with the default config.
pub fn run_seed(seed: u64) -> SimReport {
    Sim::new(SimConfig::default(), seed).run()
}

/// The fault-plan datagram opcode label a [`SendKind`] is counted
/// under in the per-scenario message distribution.
fn op_name(kind: &SendKind) -> &'static str {
    match kind {
        SendKind::QueryReply => "query-reply",
        SendKind::Keepalive => "keepalive",
        SendKind::UpdateDelta => "update-delta",
        SendKind::UpdateFull => "update-full",
        SendKind::Resync { .. } => "dirreq",
    }
}

/// Fixed opcode order of [`ScenarioReport::datagrams_by_op`] — pinned
/// so regression tests can index rows positionally.
pub const SCENARIO_OPS: [&str; 5] = [
    "update-delta",
    "update-full",
    "keepalive",
    "query-reply",
    "dirreq",
];

/// Knobs for one scenario run: the underlying fault-plan config plus
/// the good-ruler report's window count and virtual latency model.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// The fault-plan / cluster knobs. `proxies` is overwritten by the
    /// scenario's node count; `local_ops` defaults to 0 here because
    /// the scenario, not the fault plan, defines the workload.
    pub sim: SimConfig,
    /// Report windows over the scenario horizon (hit ratio and
    /// staleness are sampled per window).
    pub windows: usize,
    /// Virtual round-trip to the origin server (microseconds), charged
    /// on every miss and false hit.
    pub origin_rtt_us: u64,
    /// Virtual local service time (microseconds), charged on every
    /// served request.
    pub local_service_us: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            sim: SimConfig {
                local_ops: 0,
                ..SimConfig::default()
            },
            windows: 8,
            origin_rtt_us: 120_000,
            local_service_us: 200,
        }
    }
}

impl Sim {
    /// Build a simulation that replays `scenario` on top of the seeded
    /// fault plan: scenario requests, crashes/restarts, and
    /// evict-everywhere storms are scheduled at their virtual
    /// timestamps alongside the random loss/dup/reorder/partition
    /// plan, and every request outcome is recorded into a fresh sc-obs
    /// registry for the good-ruler report.
    pub fn with_scenario(cfg: ScenarioConfig, seed: u64, scenario: &Scenario) -> Sim {
        assert!(cfg.windows > 0, "a report needs at least one window");
        let mut sim_cfg = cfg.sim;
        sim_cfg.proxies = scenario.nodes as usize;
        sim_cfg.crashes = sim_cfg.crashes.min(sim_cfg.proxies - 1);
        sim_cfg.horizon_ms = sim_cfg.horizon_ms.max(scenario.horizon_us.div_ceil(1_000));
        let mut sim = Sim::new(sim_cfg, seed);
        for ev in &scenario.events {
            let se = match &ev.kind {
                ScenarioKind::Request { node, url, server } => SimEvent::Request {
                    node: *node as usize,
                    url: render_url(*server, *url),
                },
                ScenarioKind::Crash { node } => SimEvent::Crash {
                    node: *node as usize,
                },
                ScenarioKind::Restart { node } => SimEvent::Restart {
                    node: *node as usize,
                },
                ScenarioKind::EvictEverywhere { url, server } => SimEvent::PurgeEverywhere {
                    url: render_url(*server, *url),
                },
            };
            sim.schedule(ev.at_us, se);
        }
        let window_us = (scenario.horizon_us / cfg.windows as u64).max(1);
        for idx in 0..cfg.windows {
            let at = ((idx as u64 + 1) * window_us).min(scenario.horizon_us);
            sim.schedule(at, SimEvent::WindowMark { idx });
        }
        sim.scn = Some(ScnState {
            reg: Rc::new(Registry::new()),
            window_us,
            windows: cfg.windows,
            origin_rtt_us: cfg.origin_rtt_us,
            local_service_us: cfg.local_service_us,
            tracked_evicted: Vec::new(),
        });
        sim
    }
}

/// Count (observer, evicted-url) advertisement pairs where a live
/// observer's installed replica of a live peer still advertises `url`
/// even though that peer no longer caches it — the residue a
/// false-hit storm leaves until the removal deltas propagate. Bloom
/// false positives can inflate this; run quiescence probes at a
/// generous load factor (16 keeps the pinned tests FP-free).
pub fn stale_advertised_pairs(
    routers: &[Router],
    dirs: &[HashSet<String>],
    up: &[bool],
    url: &str,
) -> u64 {
    let mut stale = 0;
    for (i, r) in routers.iter().enumerate() {
        if !up[i] {
            continue;
        }
        for peer in r.candidates(url.as_bytes()) {
            let j = peer as usize;
            if up[j] && !dirs[j].contains(url) {
                stale += 1;
            }
        }
    }
    stale
}

/// Per-window slice of the good-ruler report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStats {
    /// Window index (0-based over the scenario horizon).
    pub idx: usize,
    /// Requests issued inside the window (including unserved ones).
    pub requests: u64,
    /// Local-cache hits inside the window.
    pub local_hits: u64,
    /// Remote (peer) hits inside the window.
    pub remote_hits: u64,
    /// False hits (every advertising replica lied) inside the window.
    pub false_hits: u64,
    /// Live replica pairs diverging from the publisher at window end.
    pub stale_pairs: u64,
    /// Live replica pairs sampled at window end.
    pub live_pairs: u64,
}

/// The per-scenario "good ruler" report: every dimension the ICN ruler
/// paper says a cache-network evaluation must publish — hit ratio over
/// time windows, summary staleness, false-hit rate, per-opcode message
/// distribution, and virtual-time tail latency — rendered from one
/// sc-obs snapshot plus the underlying [`SimReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (e.g. `flash-crowd`).
    pub name: String,
    /// The seed the run was built from.
    pub seed: u64,
    /// Cluster size.
    pub proxies: usize,
    /// Did the cluster reconverge bit-for-bit after settle?
    pub converged: bool,
    /// Settle keep-alive windows consumed (`None` = budget ran out).
    pub settle_steps: Option<usize>,
    /// Total scenario requests issued.
    pub requests: u64,
    /// Requests that arrived while their proxy was down.
    pub unserved: u64,
    /// Requests answered from the local cache.
    pub local_hits: u64,
    /// Requests answered from a peer cache.
    pub remote_hits: u64,
    /// Requests where every advertising replica lied (paper §II).
    pub false_hits: u64,
    /// Requests that went to the origin (misses + false hits).
    pub origin_fetches: u64,
    /// ICP-style queries sent to advertising peers.
    pub queries_sent: u64,
    /// Queries to peers that did not actually hold the document.
    pub wasted_queries: u64,
    /// Cache entries removed by evict-everywhere storms.
    pub evictions: u64,
    /// Advertisement pairs still claiming a storm-evicted URL after
    /// settle (0 = the counting-Bloom deltas fully cleared).
    pub stale_advertised_after_settle: u64,
    /// Virtual request latency percentiles (bucket floors, µs).
    pub latency_p50_us: u64,
    /// 90th percentile virtual latency (µs).
    pub latency_p90_us: u64,
    /// 99th percentile virtual latency (µs).
    pub latency_p99_us: u64,
    /// Maximum-bucket virtual latency (µs).
    pub latency_max_us: u64,
    /// Datagram counts per opcode, in [`SCENARIO_OPS`] order.
    pub datagrams_by_op: Vec<(String, u64)>,
    /// Per-window hit/staleness slices.
    pub windows: Vec<WindowStats>,
    /// DIRUPDATE bytes on the wire (from the [`SimReport`]).
    pub update_bytes_sent: u64,
    /// Non-update bytes on the wire.
    pub other_bytes_sent: u64,
    /// Datagrams the fault plan dropped.
    pub datagrams_dropped: u64,
    /// DIRREQs sent.
    pub resyncs_requested: u64,
    /// Peer-failure declarations.
    pub failures: u64,
    /// Peer-recovery detections.
    pub recoveries: u64,
}

impl ScenarioReport {
    /// Project the report out of a scenario run's sc-obs snapshot and
    /// its fault-plan report.
    pub fn from_snapshot(
        snap: &sc_obs::Snapshot,
        sim: &SimReport,
        name: &str,
        proxies: usize,
        windows: usize,
    ) -> ScenarioReport {
        let hist = snap.histogram_value("scn_request_latency_us");
        let datagrams_by_op = SCENARIO_OPS
            .iter()
            .map(|&op| {
                (
                    op.to_string(),
                    snap.counter_value_with("scn_datagrams_total", &[("op", op)]),
                )
            })
            .collect();
        let windows = (0..windows)
            .map(|idx| {
                let w = idx.to_string();
                let l = [("window", w.as_str())];
                WindowStats {
                    idx,
                    requests: snap.counter_value_with("scn_window_requests_total", &l),
                    local_hits: snap.counter_value_with("scn_window_local_hits_total", &l),
                    remote_hits: snap.counter_value_with("scn_window_remote_hits_total", &l),
                    false_hits: snap.counter_value_with("scn_window_false_hits_total", &l),
                    stale_pairs: snap
                        .gauge_value_with("scn_window_stale_pairs", &l)
                        .map(|v| v as u64)
                        .unwrap_or(0),
                    live_pairs: snap
                        .gauge_value_with("scn_window_live_pairs", &l)
                        .map(|v| v as u64)
                        .unwrap_or(0),
                }
            })
            .collect();
        ScenarioReport {
            name: name.to_string(),
            seed: sim.seed,
            proxies,
            converged: sim.converged,
            settle_steps: sim.settle_steps,
            requests: snap.counter_value("scn_requests_total"),
            unserved: snap.counter_value("scn_unserved_total"),
            local_hits: snap.counter_value("scn_local_hits_total"),
            remote_hits: snap.counter_value("scn_remote_hits_total"),
            false_hits: snap.counter_value("scn_false_hits_total"),
            origin_fetches: snap.counter_value("scn_origin_fetches_total"),
            queries_sent: snap.counter_value("scn_queries_sent_total"),
            wasted_queries: snap.counter_value("scn_wasted_queries_total"),
            evictions: snap.counter_value("scn_evictions_total"),
            stale_advertised_after_settle: snap
                .counter_value("scn_stale_advertised_after_settle"),
            latency_p50_us: hist.percentile(0.50),
            latency_p90_us: hist.percentile(0.90),
            latency_p99_us: hist.percentile(0.99),
            latency_max_us: hist.percentile(1.0),
            datagrams_by_op,
            windows,
            update_bytes_sent: sim.update_bytes_sent,
            other_bytes_sent: sim.other_bytes_sent,
            datagrams_dropped: sim.datagrams_dropped,
            resyncs_requested: sim.resyncs_requested,
            failures: sim.failures,
            recoveries: sim.recoveries,
        }
    }

    /// Served-hit ratio: (local + remote) over all requests.
    pub fn hit_ratio(&self) -> f64 {
        (self.local_hits + self.remote_hits) as f64 / self.requests.max(1) as f64
    }

    /// False hits over all requests (the paper reports this per total
    /// requests, Table V).
    pub fn false_hit_ratio(&self) -> f64 {
        self.false_hits as f64 / self.requests.max(1) as f64
    }

    /// Wasted queries over all queries sent.
    pub fn wasted_query_ratio(&self) -> f64 {
        self.wasted_queries as f64 / self.queries_sent.max(1) as f64
    }

    /// One-line reproduction command for a failing seeded run.
    pub fn repro(&self) -> String {
        format!(
            "SC_SIM_SEED={:#x} SC_SIM_PEERS={} cargo test --test scenario_properties -- --nocapture",
            self.seed, self.proxies
        )
    }

    /// Render the human-readable good-ruler table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== scenario {} · seed {:#x} · {} proxies · {} ==",
            self.name,
            self.seed,
            self.proxies,
            if self.converged {
                "converged"
            } else {
                "DID NOT CONVERGE"
            }
        );
        let _ = writeln!(
            out,
            "requests {} (unserved {})  hit {:.1}% (local {} remote {})  false-hit {:.2}%  origin {}",
            self.requests,
            self.unserved,
            100.0 * self.hit_ratio(),
            self.local_hits,
            self.remote_hits,
            100.0 * self.false_hit_ratio(),
            self.origin_fetches
        );
        let _ = writeln!(
            out,
            "queries {} (wasted {})  latency p50/p90/p99/max {}/{}/{}/{} us",
            self.queries_sent,
            self.wasted_queries,
            self.latency_p50_us,
            self.latency_p90_us,
            self.latency_p99_us,
            self.latency_max_us
        );
        let ops: Vec<String> = self
            .datagrams_by_op
            .iter()
            .map(|(op, n)| format!("{op} {n}"))
            .collect();
        let _ = writeln!(
            out,
            "datagrams: {}; dropped {}  update-bytes {}  resyncs {}  stale-after-settle {}",
            ops.join(", "),
            self.datagrams_dropped,
            self.update_bytes_sent,
            self.resyncs_requested,
            self.stale_advertised_after_settle
        );
        let _ = writeln!(out, "window  reqs  local  remote  false  stale/live");
        for w in &self.windows {
            let _ = writeln!(
                out,
                "  w{:<4} {:>5} {:>6} {:>7} {:>6}  {}/{}",
                w.idx, w.requests, w.local_hits, w.remote_hits, w.false_hits, w.stale_pairs, w.live_pairs
            );
        }
        out
    }
}

/// Everything a scenario run hands back: the good-ruler report, the
/// underlying fault-plan report (journal, convergence, byte counts),
/// and the final cluster state for post-run probes.
pub struct ScenarioOutcome {
    /// The rendered-from-snapshot good-ruler report.
    pub report: ScenarioReport,
    /// The underlying fault-plan report.
    pub sim: SimReport,
    /// Each node's router, for replica probes.
    pub routers: Vec<Router>,
    /// Each node's final cache directory.
    pub dirs: Vec<HashSet<String>>,
    /// Each node's final liveness.
    pub up: Vec<bool>,
}

/// Run `scenario` against a simulated cluster: replay the scenario on
/// top of the seeded fault plan, settle, probe every storm-evicted URL
/// for stale advertisements, and project the good-ruler report from
/// the run's sc-obs snapshot.
pub fn run_scenario(cfg: ScenarioConfig, seed: u64, scenario: &Scenario) -> ScenarioOutcome {
    let mut sim = Sim::with_scenario(cfg, seed, scenario);
    let sim_report = sim.run_inner();
    let Some(scn) = sim.scn.take() else {
        unreachable!("with_scenario always installs scenario state");
    };
    let up: Vec<bool> = sim.nodes.iter().map(|n| n.up).collect();
    let nodes = std::mem::take(&mut sim.nodes);
    let (routers, dirs): (Vec<Router>, Vec<HashSet<String>>) =
        nodes.into_iter().map(|n| (n.router, n.dir)).unzip();
    let mut stale = 0;
    for url in &scn.tracked_evicted {
        stale += stale_advertised_pairs(&routers, &dirs, &up, url);
    }
    scn.reg
        .counter("scn_stale_advertised_after_settle")
        .add(stale);
    let snap = scn.reg.snapshot();
    let report =
        ScenarioReport::from_snapshot(&snap, &sim_report, &scenario.name, routers.len(), scn.windows);
    ScenarioOutcome {
        report,
        sim: sim_report,
        routers,
        dirs,
        up,
    }
}

/// Build and run the named canned scenario (see
/// [`sc_trace::scenario::scenario_names`]) at the default config —
/// `SC_SIM_PEERS` proxies, default fault plan. `None` for an unknown
/// name.
pub fn run_named(name: &str, seed: u64) -> Option<ScenarioOutcome> {
    let cfg = ScenarioConfig::default();
    let nodes = cfg.sim.proxies as u32;
    let scenario = sc_trace::scenario::by_name(name, nodes, seed)?;
    Some(run_scenario(cfg, seed, &scenario))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quiet_cluster_converges_trivially() {
        let cfg = SimConfig {
            local_ops: 12,
            horizon_ms: 500,
            loss: 0.0,
            duplicate: 0.0,
            crashes: 0,
            partitions: 0,
            delay_us: (200, 2_000),
            ..SimConfig::default()
        };
        let report = Sim::new(cfg, 42).run();
        assert!(report.converged, "no faults, no excuses: {report:?}");
        assert!(report.replicas_installed > 0);
    }

    #[test]
    fn sharded_runs_reproduce_the_single_shard_journal() {
        let cfg = |shards: usize| SimConfig {
            local_ops: 60,
            horizon_ms: 600,
            shards,
            ..SimConfig::default()
        };
        let baseline = Sim::new(cfg(1), 1234).run();
        assert!(baseline.converged, "baseline must converge: {baseline:?}");
        for shards in [2usize, 4] {
            let sharded = Sim::new(cfg(shards), 1234).run();
            assert!(sharded.converged, "shards={shards} must converge");
            assert_eq!(
                sharded.journal, baseline.journal,
                "shards={shards} journal diverged from the 1-shard baseline"
            );
        }
    }

    #[test]
    fn default_plan_processes_thousands_of_events_and_converges() {
        let report = run_seed(7);
        assert!(report.converged, "seed 7 must converge: {report:?}");
        assert!(
            report.events_processed >= 1_000,
            "schedule too small: {} events",
            report.events_processed
        );
        assert!(report.datagrams_dropped > 0, "loss plan was exercised");
        assert!(report.datagrams_duplicated > 0, "duplication plan was exercised");
        assert!(report.gaps_seen > 0, "loss produced detectable gaps");
        assert!(report.resyncs_requested > 0, "gaps produced DIRREQs");
    }

    /// The big-N acceptance run: 64 proxies under the full fault plan
    /// (loss, duplication, reorder, crash+restart, partitions) must
    /// reconverge bit-for-bit, with the one-DIRREQ-per-gap invariant
    /// asserted continuously inside `dispatch`. CI's smoke sweeps more
    /// seeds via `SC_SIM_PEERS=64` on the seeded soak.
    #[test]
    fn sixty_four_proxies_reconverge_under_the_full_fault_plan() {
        let cfg = SimConfig {
            proxies: 64,
            local_ops: 400,
            horizon_ms: 600,
            crashes: 3,
            partitions: 2,
            ..SimConfig::default()
        };
        let report = Sim::new(cfg, 0xB16).run();
        assert!(report.converged, "64-proxy cluster must reconverge: {report:?}");
        assert!(report.failures > 0, "crash plan was exercised");
        assert!(report.gaps_seen > 0, "fault plan produced gaps");
        assert!(report.update_bytes_sent > 0, "update traffic accounted");
        assert!(report.update_datagrams_sent > 0);
        assert!(report.other_bytes_sent > 0, "keep-alive traffic accounted");
    }

    /// Publish-seq wraparound: lanes start just below `u32::MAX` and
    /// cross it mid-run while datagrams are being dropped. The modular
    /// duplicate/gap comparisons must keep ordering straight across
    /// the boundary — a naive `seq < expected` would read every
    /// post-wrap update as ancient and silently freeze the replicas.
    #[test]
    fn seq_wraparound_under_loss_reconverges() {
        let cfg = SimConfig {
            initial_seq: u32::MAX - 8,
            local_ops: 240,
            horizon_ms: 800,
            crashes: 0,
            partitions: 1,
            ..SimConfig::default()
        };
        let report = Sim::new(cfg, 0x11A4).run();
        assert!(
            report.converged,
            "wraparound crossing must reconverge: {report:?}"
        );
        assert!(report.datagrams_dropped > 0, "loss exercised the boundary");
        assert!(report.gaps_seen > 0, "dropped updates detected across the wrap");
    }

    /// A quiet (fault-free) scenario config: the scenario's own events
    /// are the only perturbation, and load factor 16 keeps the pinned
    /// staleness probes free of Bloom false positives.
    fn quiet_scn_cfg() -> ScenarioConfig {
        ScenarioConfig {
            sim: SimConfig {
                loss: 0.0,
                duplicate: 0.0,
                crashes: 0,
                partitions: 0,
                delay_us: (200, 2_000),
                local_ops: 0,
                load_factor: 16,
                cache_docs: 512,
                ..SimConfig::default()
            },
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let scenario = sc_trace::scenario::flash_crowd(4, 0xF1A5);
        let a = run_scenario(quiet_scn_cfg(), 0xF1A5, &scenario);
        let b = run_scenario(quiet_scn_cfg(), 0xF1A5, &scenario);
        assert_eq!(a.sim.journal, b.sim.journal, "journals must be bit-identical");
        assert_eq!(a.report, b.report, "reports must be bit-identical");
        assert!(a.report.requests > 0);
    }

    #[test]
    fn false_hit_storm_produces_false_hits_then_quiesces_clean() {
        let scenario = sc_trace::scenario::false_hit_storm(4, 3);
        let out = run_scenario(quiet_scn_cfg(), 3, &scenario);
        assert!(out.report.converged, "quiet storm must settle: {}", out.report.render());
        assert!(out.report.evictions > 0, "the storm evicted nothing:\n{}", out.report.render());
        assert!(
            out.report.false_hits > 0,
            "evict-everywhere must produce false hits:\n{}",
            out.report.render()
        );
        assert_eq!(
            out.report.stale_advertised_after_settle, 0,
            "stale advertisements survived settle:\n{}",
            out.report.render()
        );
    }

    #[test]
    fn windows_account_for_every_request() {
        let scenario = sc_trace::scenario::diurnal_drift(4, 77);
        let out = run_scenario(quiet_scn_cfg(), 77, &scenario);
        let r = &out.report;
        assert_eq!(r.requests, scenario.requests(), "every scheduled request counted");
        let by_window: u64 = r.windows.iter().map(|w| w.requests).sum();
        assert_eq!(by_window, r.requests, "window slices must partition the run");
        let local: u64 = r.windows.iter().map(|w| w.local_hits).sum();
        assert_eq!(local, r.local_hits);
        let remote: u64 = r.windows.iter().map(|w| w.remote_hits).sum();
        assert_eq!(remote, r.remote_hits);
        let false_hits: u64 = r.windows.iter().map(|w| w.false_hits).sum();
        assert_eq!(false_hits, r.false_hits);
        // Accounting identity: every served request resolves exactly once.
        assert_eq!(
            r.local_hits + r.remote_hits + r.origin_fetches + r.unserved,
            r.requests,
            "request outcomes must partition:\n{}",
            r.render()
        );
        assert!(r.latency_max_us >= r.latency_p50_us);
    }

    /// Staggered fan-out is behavior-preserving: any slot count
    /// converges, and in a fault-free run the subdivided tick cadence
    /// must not produce spurious failure declarations (each peer is
    /// still pinged and serviced once per keep-alive period).
    #[test]
    fn fanout_slots_converge_without_spurious_failures() {
        for slots in [1usize, 2, 4] {
            let cfg = SimConfig {
                proxies: 8,
                fanout_slots: slots,
                local_ops: 60,
                horizon_ms: 600,
                loss: 0.0,
                duplicate: 0.0,
                crashes: 0,
                partitions: 0,
                delay_us: (200, 2_000),
                ..SimConfig::default()
            };
            let report = Sim::new(cfg, 99).run();
            assert!(report.converged, "slots={slots} must converge: {report:?}");
            assert_eq!(
                report.failures, 0,
                "slots={slots}: stagger broke failure-detection timing"
            );
        }
    }
}
