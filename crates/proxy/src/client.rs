//! Load drivers: the Wisconsin-style synthetic benchmark (Section IV)
//! and the two trace-replay modes (Section VII, experiments 3 and 4).

use crate::stats::ProxyStats;
use sc_cache::DocMeta;
use sc_trace::sampler::BoundedPareto;
use sc_trace::{group_of_client, Trace};
use sc_util::Rng;
use sc_wire::http;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

/// The synthetic benchmark's knobs (Wisconsin Proxy Benchmark 1.0 shape).
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Client processes per proxy (the paper runs 30).
    pub clients_per_proxy: usize,
    /// Requests each client issues (the paper: 200).
    pub requests_per_client: usize,
    /// Inherent hit ratio of each client's request stream (the paper
    /// runs 25% and 45%).
    pub target_hit_ratio: f64,
    /// Body-size distribution `(alpha, min, max)`; the paper uses the
    /// Pareto with alpha 1.1.
    pub size_pareto: (f64, u64, u64),
    /// Deterministic seed — "we use the same seeds … for the no-ICP and
    /// ICP experiments to ensure comparable results".
    pub seed: u64,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            clients_per_proxy: 30,
            requests_per_client: 200,
            target_hit_ratio: 0.25,
            size_pareto: (1.1, 1024, 256 * 1024),
            seed: 1,
        }
    }
}

/// One driver connection to a proxy: issues sequential keep-alive GETs
/// and records latency into the proxy's stats.
pub struct ProxyClient {
    stream: TcpStream,
    stats: Arc<ProxyStats>,
    buf: Vec<u8>,
}

impl ProxyClient {
    /// Connect to a proxy's HTTP address.
    pub fn connect(addr: SocketAddr, stats: Arc<ProxyStats>) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ProxyClient {
            stream,
            stats,
            buf: Vec::with_capacity(4096),
        })
    }

    /// Issue one GET and fully drain the response. Returns the status.
    pub fn get(&mut self, url: &str, meta: DocMeta) -> std::io::Result<u16> {
        let t0 = Instant::now();
        let size = meta.size.to_string();
        let lm = meta.last_modified.to_string();
        let head = http::build_request(url, &[("X-Doc-Size", &size), ("X-Doc-LM", &lm)]);
        self.stream.write_all(head.as_bytes())?;
        let resp = loop {
            match http::parse_response(&self.buf)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            {
                http::Parse::Done { value, consumed } => {
                    self.buf.drain(..consumed);
                    break value;
                }
                http::Parse::NeedMore => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "proxy closed mid-response",
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
            }
        };
        let len = http::content_length(&resp.headers).unwrap_or(0);
        let mut got = self.buf.len() as u64;
        self.buf.clear();
        let mut chunk = [0u8; 16 * 1024];
        while got < len {
            let want = ((len - got) as usize).min(chunk.len());
            let n = self.stream.read(&mut chunk[..want])?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "body truncated",
                ));
            }
            got += n as u64;
        }
        self.stats.latency(t0.elapsed().as_micros() as u64);
        Ok(resp.status)
    }
}

/// One synthetic client's request stream: no overlap with any other
/// client (the Table II worst case — zero inter-proxy hits), Pareto
/// sizes, and re-references at the target inherent hit ratio.
pub struct SyntheticStream {
    rng: Rng,
    sizes: BoundedPareto,
    hit_ratio: f64,
    /// Unique namespace prefix for this client's fresh documents.
    namespace: u64,
    counter: u64,
    history: Vec<(String, DocMeta)>,
}

impl SyntheticStream {
    /// Build the stream for global client number `client_id`.
    pub fn new(cfg: &BenchmarkConfig, client_id: u64) -> Self {
        SyntheticStream {
            rng: Rng::seed_from_u64(cfg.seed ^ (client_id.wrapping_mul(0x9E3779B97F4A7C15))),
            sizes: BoundedPareto::new(cfg.size_pareto.0, cfg.size_pareto.1, cfg.size_pareto.2),
            hit_ratio: cfg.target_hit_ratio,
            namespace: client_id << 32,
            counter: 0,
            history: Vec::new(),
        }
    }

    /// The next request: URL plus expected document version.
    pub fn next_request(&mut self) -> (String, DocMeta) {
        if !self.history.is_empty() && self.rng.gen_bool(self.hit_ratio) {
            // Re-reference, recency-biased over the last 64 documents.
            let window = self.history.len().min(64);
            let idx = self.history.len() - 1 - self.rng.gen_range(0..window);
            return self.history[idx].clone();
        }
        let id = self.namespace + self.counter;
        self.counter += 1;
        let url = format!("http://server-{}.trace.invalid/doc/{}", id >> 8, id);
        let meta = DocMeta {
            size: self.sizes.sample(&mut self.rng),
            last_modified: 1,
        };
        let entry = (url, meta);
        self.history.push(entry.clone());
        entry
    }
}

/// Which Section VII replay experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Experiment 3: each driver task emulates a set of real trace
    /// clients; a client's requests all go to its own proxy, in order.
    PerClient,
    /// Experiment 4: requests are dealt round-robin to driver tasks
    /// regardless of origin client — load-balanced, order preserved
    /// per task.
    RoundRobin,
}

/// Split a trace into per-task request lists for the given replay mode.
///
/// Returns `tasks_per_proxy × groups` lists; task `t` connects to proxy
/// `t % groups`.
pub fn plan_replay(
    trace: &Trace,
    tasks_per_proxy: usize,
    mode: ReplayMode,
) -> Vec<Vec<(String, DocMeta)>> {
    let groups = trace.groups as usize;
    let total_tasks = groups * tasks_per_proxy;
    let mut plans: Vec<Vec<(String, DocMeta)>> = vec![Vec::new(); total_tasks];
    let mut rr = 0usize;
    for r in &trace.requests {
        let entry = (
            r.url_string(),
            DocMeta {
                size: r.size,
                last_modified: r.last_modified,
            },
        );
        let task = match mode {
            ReplayMode::PerClient => {
                let proxy = group_of_client(r.client, trace.groups) as usize;
                // Hash the client onto one of the proxy's tasks so a
                // client's requests stay ordered on one connection.
                let slot = (r.client as usize / groups) % tasks_per_proxy;
                slot * groups + proxy
            }
            ReplayMode::RoundRobin => {
                let t = rr;
                rr = (rr + 1) % total_tasks;
                t
            }
        };
        plans[task].push(entry);
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_trace::Request;

    #[test]
    fn synthetic_streams_never_overlap() {
        let cfg = BenchmarkConfig::default();
        let mut a = SyntheticStream::new(&cfg, 1);
        let mut b = SyntheticStream::new(&cfg, 2);
        let urls_a: std::collections::HashSet<String> =
            (0..200).map(|_| a.next_request().0).collect();
        let urls_b: std::collections::HashSet<String> =
            (0..200).map(|_| b.next_request().0).collect();
        assert!(urls_a.is_disjoint(&urls_b));
    }

    #[test]
    fn synthetic_hit_ratio_near_target() {
        let cfg = BenchmarkConfig {
            target_hit_ratio: 0.45,
            ..Default::default()
        };
        let mut s = SyntheticStream::new(&cfg, 7);
        let mut seen = std::collections::HashSet::new();
        let mut rerefs = 0;
        let n = 5_000;
        for _ in 0..n {
            let (url, _) = s.next_request();
            if !seen.insert(url) {
                rerefs += 1;
            }
        }
        let ratio = rerefs as f64 / n as f64;
        assert!((0.40..0.50).contains(&ratio), "inherent hit ratio {ratio}");
    }

    #[test]
    fn synthetic_deterministic_per_seed() {
        let cfg = BenchmarkConfig::default();
        let mut a = SyntheticStream::new(&cfg, 3);
        let mut b = SyntheticStream::new(&cfg, 3);
        for _ in 0..100 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    fn mini_trace() -> Trace {
        let mut requests = Vec::new();
        for i in 0..100u64 {
            requests.push(Request {
                time_ms: i,
                client: (i % 7) as u32,
                url: i % 13,
                server: 0,
                size: 100,
                last_modified: 0,
            });
        }
        Trace {
            name: "mini".into(),
            groups: 4,
            requests,
        }
    }

    #[test]
    fn per_client_plan_respects_proxy_binding() {
        // Give every client a unique document so plans are attributable:
        // client c only ever requests url c.
        let requests: Vec<Request> = (0..140u64)
            .map(|i| Request {
                time_ms: i,
                client: (i % 7) as u32,
                url: (i % 7) * 1000, // one url per client
                server: 0,
                size: 100 + i, // strictly increasing => order check
                last_modified: 0,
            })
            .collect();
        let trace = Trace {
            name: "attrib".into(),
            groups: 4,
            requests,
        };
        let plans = plan_replay(&trace, 5, ReplayMode::PerClient);
        assert_eq!(plans.len(), 20);
        assert_eq!(plans.iter().map(Vec::len).sum::<usize>(), 140);
        for (t, plan) in plans.iter().enumerate() {
            let proxy = (t % 4) as u32;
            for (url, meta) in plan {
                // Recover the owning client from the URL.
                let (_, url_id) = sc_trace::model::parse_url(url).expect("our url");
                let client = (url_id / 1000) as u32;
                assert_eq!(
                    group_of_client(client, 4),
                    proxy,
                    "request of client {client} landed on task {t} (proxy {proxy})"
                );
                let _ = meta;
            }
            // One client's requests stay in trace order (sizes increase).
            let mut per_client_last: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            for (url, meta) in plan {
                let (_, url_id) = sc_trace::model::parse_url(url).unwrap();
                let last = per_client_last.entry(url_id).or_insert(0);
                assert!(meta.size > *last, "client stream reordered");
                *last = meta.size;
            }
        }
        // A client's requests never split across tasks.
        let mut task_of_client: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        for (t, plan) in plans.iter().enumerate() {
            for (url, _) in plan {
                let (_, url_id) = sc_trace::model::parse_url(url).unwrap();
                let prev = task_of_client.insert(url_id, t);
                if let Some(p) = prev {
                    assert_eq!(p, t, "client {url_id} split across tasks");
                }
            }
        }
    }

    #[test]
    fn round_robin_plan_balances() {
        let trace = mini_trace();
        let plans = plan_replay(&trace, 5, ReplayMode::RoundRobin);
        assert_eq!(plans.len(), 20);
        assert!(plans.iter().all(|p| p.len() == 5), "100 requests / 20 tasks");
    }
}
