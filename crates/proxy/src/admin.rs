//! The daemon's admin/observability endpoint: a tiny HTTP server over
//! the proxy's [`sc_obs::Registry`].
//!
//! Three routes, all `GET`:
//!
//! * `/metrics` — Prometheus-style text exposition
//!   ([`sc_obs::Snapshot::render_prometheus`]);
//! * `/json` — the same snapshot as a JSON document (every instrument
//!   with its labels and value/buckets);
//! * `/events` — the most recent entries of the structured event
//!   journal ([`sc_obs::Journal`]), oldest first.
//!
//! The endpoint binds its own ephemeral loopback listener
//! ([`crate::daemon::Daemon::admin_addr`]) and its traffic is *not*
//! accounted into the TCP byte counters the experiment tables report —
//! scraping the proxy must not perturb the measurements.

use crate::origin::ACCEPT_POLL;
use crate::stats::ProxyStats;
use sc_json::{ToJson, Value};
use sc_wire::http;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How many journal entries `/events` returns at most.
const EVENTS_LIMIT: usize = 256;

/// Start the admin accept loop on `listener`; returns immediately.
/// The loop exits when `shutdown` flips true.
pub fn serve(
    listener: TcpListener,
    stats: Arc<ProxyStats>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::spawn(move || {
        while !shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    let stats = stats.clone();
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, &stats);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => break,
            }
        }
    });
    Ok(())
}

/// Answer one request, then close (`Connection: close` semantics — the
/// scrapers here are curl and the test harness, not a browser).
fn serve_connection(mut stream: TcpStream, stats: &ProxyStats) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let req = loop {
        match http::parse_request(&buf) {
            Ok(http::Parse::Done { value, .. }) => break value,
            Ok(http::Parse::NeedMore) => {
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Ok(());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(_) => {
                return respond(&mut stream, 400, "Bad Request", "text/plain", "bad request\n");
            }
        }
    };
    // Targets may arrive absolute (proxy-style) or origin-form; route on
    // the path component either way.
    let path = req
        .target
        .strip_prefix("http://")
        .and_then(|rest| rest.find('/').map(|i| &rest[i..]))
        .unwrap_or(&req.target);
    match path {
        "/metrics" => {
            let body = stats.registry().snapshot().render_prometheus();
            respond(&mut stream, 200, "OK", "text/plain; version=0.0.4", &body)
        }
        "/json" => {
            let body = stats.registry().snapshot().to_json().to_pretty();
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        "/events" => {
            let events: Vec<Value> = stats
                .journal()
                .recent(EVENTS_LIMIT)
                .iter()
                .map(|e| e.to_json())
                .collect();
            let body = Value::Array(events).to_pretty();
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "text/plain",
            "try /metrics, /json or /events\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = http::build_response(
        status,
        reason,
        &[
            ("Content-Type", content_type),
            ("Content-Length", &body.len().to_string()),
            ("Connection", "close"),
        ],
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Fetch `path` from an admin endpoint and return the response body —
/// shared by the bench binaries and tests (plain blocking I/O).
pub fn fetch(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let req = http::build_request(path, &[("Host", "admin")]);
    stream.write_all(req.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    match text.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no header/body separator in admin response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;

    fn start(stats: Arc<ProxyStats>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        serve(listener, stats, Arc::new(AtomicBool::new(false))).expect("serve");
        addr
    }

    #[test]
    fn metrics_route_exposes_registered_instruments() {
        let stats = Arc::new(ProxyStats::with_peers(&[7]));
        stats.http_requests.incr();
        stats.local_hits.incr();
        let addr = start(stats);
        let body = fetch(addr, "/metrics").expect("fetch");
        assert!(body.contains("sc_http_requests_total 1"), "{body}");
        assert!(
            body.contains(r#"sc_peer_queries_sent_total{peer="7"} 0"#),
            "{body}"
        );
    }

    #[test]
    fn json_and_events_routes_are_valid_json() {
        let stats = Arc::new(ProxyStats::default());
        stats
            .journal()
            .record(sc_obs::EventKind::RemoteHit, Some(3), "http://x/y");
        let addr = start(stats);
        let json = fetch(addr, "/json").expect("fetch /json");
        let v = Value::parse(&json).expect("parse /json");
        assert!(v.get("instruments").is_some(), "{json}");
        let events = fetch(addr, "/events").expect("fetch /events");
        let ev = Value::parse(&events).expect("parse /events");
        let Value::Array(items) = ev else {
            panic!("events not an array: {events}");
        };
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn unknown_route_is_404() {
        let addr = start(Arc::new(ProxyStats::default()));
        let body = fetch(addr, "/nope").expect("fetch");
        assert!(body.contains("/metrics"), "{body}");
    }
}
