//! Lock-free read-path snapshots of peer summary replicas.
//!
//! SC-mode candidate selection is the hottest read in the daemon: every
//! local cache miss probes every peer's Bloom replica. Routing that
//! probe through the global `Mutex<Machine>` made the *read* path
//! contend with replication *writes* (delta application, publish
//! fan-out, failure sweeps) — and with every other request thread.
//!
//! This module splits the two. The machine keeps ownership of replica
//! state, but after every mutation it publishes an immutable
//! [`ReplicaSnapshot`] into a shared [`ReplicaCell`]. Request threads
//! read the snapshot without ever touching the machine lock:
//!
//! * each swap bumps an epoch counter (std-only stand-in for an
//!   epoch-based RCU pointer);
//! * each reader thread keeps a thread-local `(cell, epoch, snapshot)`
//!   cache — while the epoch is unchanged, a read is one atomic load
//!   plus a thread-local lookup, with **no** lock of any kind;
//! * when the epoch moved, the reader refreshes from the cell's small
//!   internal mutex (held only long enough to clone an `Arc`), which is
//!   still never the machine lock.
//!
//! Writers swap whole snapshots; the Bloom filters inside are shared by
//! `Arc` and copy-on-written (`Arc::make_mut`) only when a delta lands
//! while a reader still holds the previous snapshot. Probes use the
//! hash-once [`UrlKey`] path, so a snapshot probe across N peers costs
//! zero MD5 invocations beyond the key's construction.

use sc_bloom::{BloomFilter, UrlKey};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock a mutex, tolerating poisoning (a panicking thread must not wedge
/// the cell; the guarded value is a plain pointer, always consistent).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// An immutable view of every installed peer replica, in configured
/// peer order (which [`candidates`](ReplicaSnapshot::candidates)
/// preserves, matching the machine's own probe order).
#[derive(Debug, Default)]
pub struct ReplicaSnapshot {
    peers: Vec<(u32, Arc<BloomFilter>)>,
}

impl ReplicaSnapshot {
    /// A snapshot advertising no peers (daemon start, or no replica
    /// synced yet).
    pub fn empty() -> ReplicaSnapshot {
        // sc-check: allow(alloc) — construction, not the probe path.
        ReplicaSnapshot { peers: Vec::new() }
    }

    /// A snapshot over the given `(peer, filter)` pairs, probed in the
    /// order given.
    pub fn new(peers: Vec<(u32, Arc<BloomFilter>)>) -> ReplicaSnapshot {
        ReplicaSnapshot { peers }
    }

    /// Number of installed replicas in this snapshot.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// The `(peer, filter)` pairs, in probe order.
    pub fn peers(&self) -> &[(u32, Arc<BloomFilter>)] {
        &self.peers
    }

    /// Peers whose replica advertises `url` (byte path; rehashes).
    pub fn candidates(&self, url: &[u8]) -> Vec<u32> {
        self.peers
            .iter()
            .filter(|(_, f)| f.contains(url))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Peers whose replica advertises the pre-hashed `url` — the
    /// hash-once probe: the key's memoized index set is computed once
    /// and tested against every filter sharing the spec.
    pub fn candidates_key(&self, url: &UrlKey) -> Vec<u32> {
        // sc-check: allow(alloc) — convenience wrapper; the steady-state
        // request path probes through `candidates_key_into` instead.
        let mut out = Vec::new();
        self.candidates_key_into(url, &mut out);
        out
    }

    /// [`candidates_key`](Self::candidates_key) into a caller-owned
    /// buffer: the zero-alloc probe a warm request scratch uses. `out`
    /// is cleared first; its capacity is reused.
    pub fn candidates_key_into(&self, url: &UrlKey, out: &mut Vec<u32>) {
        out.clear();
        for (id, f) in &self.peers {
            if f.contains_key(url) {
                out.push(*id);
            }
        }
    }
}

/// Cells are distinguished by a process-unique id so the per-thread
/// snapshot cache can serve many daemons in one process (tests,
/// clusters) without cross-talk.
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread `(cell id, epoch, snapshot)` cache. Linear scan: a
    /// thread talks to a handful of cells (usually one), and entries
    /// are three words each.
    static SNAPSHOT_CACHE: RefCell<Vec<(u64, u64, Arc<ReplicaSnapshot>)>> =
        // sc-check: allow(alloc) — once-per-thread initializer.
        const { RefCell::new(Vec::new()) };
}

/// The shared slot a [`crate::router::Router`] publishes replica
/// snapshots into, and request threads read candidate sets from.
pub struct ReplicaCell {
    id: u64,
    /// Bumped (under `current`'s lock) on every swap. A reader whose
    /// cached epoch still matches knows its cached snapshot is current.
    epoch: AtomicU64,
    current: Mutex<Arc<ReplicaSnapshot>>,
}

impl ReplicaCell {
    /// A fresh cell holding the empty snapshot.
    pub fn new() -> Arc<ReplicaCell> {
        Arc::new(ReplicaCell {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            current: Mutex::new(Arc::new(ReplicaSnapshot::empty())),
        })
    }

    /// The epoch of the currently installed snapshot (monotonic; one
    /// bump per [`swap`](ReplicaCell::swap)).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Read the current snapshot. On the hot path (no swap since this
    /// thread last looked) this takes no lock at all: one atomic load
    /// plus a thread-local lookup. After a swap, the first read per
    /// thread refreshes through the cell's internal mutex — never the
    /// machine lock.
    pub fn load(&self) -> Arc<ReplicaSnapshot> {
        let epoch = self.epoch.load(Ordering::Acquire);
        SNAPSHOT_CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            if let Some(entry) = cache.iter_mut().find(|(id, _, _)| *id == self.id) {
                if entry.1 == epoch {
                    return Arc::clone(&entry.2);
                }
                let (snap, e) = self.load_slow();
                entry.1 = e;
                entry.2 = Arc::clone(&snap);
                return snap;
            }
            let (snap, e) = self.load_slow();
            cache.push((self.id, e, Arc::clone(&snap)));
            snap
        })
    }

    /// Refresh path: clone the pointer under the cell's mutex, and
    /// re-read the epoch *while holding it* so the `(epoch, snapshot)`
    /// pair is consistent (the writer bumps the epoch under the same
    /// lock).
    fn load_slow(&self) -> (Arc<ReplicaSnapshot>, u64) {
        let guard = lock(&self.current);
        let epoch = self.epoch.load(Ordering::Acquire);
        (Arc::clone(&guard), epoch)
    }

    /// Install a new snapshot (writer side; called by the machine after
    /// every replica mutation, with the machine lock held). The epoch
    /// bump happens under the cell's lock so no reader can pair the new
    /// epoch with the old snapshot.
    pub fn swap(&self, snap: Arc<ReplicaSnapshot>) {
        let mut guard = lock(&self.current);
        *guard = snap;
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_bloom::FilterConfig;

    fn filter_with(urls: &[&[u8]]) -> Arc<BloomFilter> {
        let mut f = BloomFilter::new(FilterConfig::with_load_factor(64, 8, 4));
        for u in urls {
            f.insert(u);
        }
        Arc::new(f)
    }

    #[test]
    fn empty_cell_has_no_candidates() {
        let cell = ReplicaCell::new();
        let snap = cell.load();
        assert_eq!(snap.peer_count(), 0);
        assert!(snap.candidates(b"http://a/x").is_empty());
    }

    #[test]
    fn swap_publishes_and_key_path_agrees_with_bytes() {
        let cell = ReplicaCell::new();
        cell.swap(Arc::new(ReplicaSnapshot::new(vec![
            (1, filter_with(&[b"http://a/x"])),
            (2, filter_with(&[b"http://b/y"])),
            (3, filter_with(&[b"http://a/x", b"http://b/y"])),
        ])));
        let snap = cell.load();
        for url in [&b"http://a/x"[..], b"http://b/y", b"http://c/z"] {
            let key = UrlKey::new(url);
            assert_eq!(snap.candidates(url), snap.candidates_key(&key));
        }
        assert_eq!(snap.candidates(b"http://a/x"), vec![1, 3]);
    }

    #[test]
    fn cached_reads_see_new_epoch_after_swap() {
        let cell = ReplicaCell::new();
        assert_eq!(cell.load().peer_count(), 0);
        let e0 = cell.epoch();
        cell.swap(Arc::new(ReplicaSnapshot::new(vec![(
            7,
            filter_with(&[b"u"]),
        )])));
        assert_eq!(cell.epoch(), e0 + 1);
        // The same thread's cached entry must refresh, not serve stale.
        assert_eq!(cell.load().peer_count(), 1);
    }

    #[test]
    fn cells_do_not_cross_talk_through_the_thread_cache() {
        let a = ReplicaCell::new();
        let b = ReplicaCell::new();
        a.swap(Arc::new(ReplicaSnapshot::new(vec![(1, filter_with(&[b"u"]))])));
        assert_eq!(a.load().peer_count(), 1);
        assert_eq!(b.load().peer_count(), 0);
    }

    #[test]
    fn loads_race_swaps_without_tearing() {
        let cell = ReplicaCell::new();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        // Snapshots only ever grow in this test.
                        assert!(snap.peer_count() >= last);
                        last = snap.peer_count();
                    }
                })
            })
            .collect();
        let mut peers = Vec::new();
        for id in 0..50u32 {
            peers.push((id, filter_with(&[format!("http://p{id}/").as_bytes()])));
            cell.swap(Arc::new(ReplicaSnapshot::new(peers.clone())));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader thread panicked");
        }
        assert_eq!(cell.load().peer_count(), 50);
    }
}
