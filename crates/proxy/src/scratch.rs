//! Per-thread reusable request scratch: the zero-alloc request path.
//!
//! A steady-state request (hit, or miss with nothing to publish) needs
//! four owned buffers: the request's [`UrlKey`], the candidate list the
//! replica-snapshot probe fills, the router-output sink for the ledger
//! events, and a datagram encode buffer. Allocating them per request
//! put four heap round-trips on the hottest path in the daemon; this
//! module gives every request thread one warm set instead.
//!
//! Ownership rules (what keeps this simple and sound):
//!
//! * the scratch is **thread-local** and handed out only for the
//!   duration of one [`with_scratch`] call — it never escapes, is never
//!   sent across threads, and nothing in a request holds it across
//!   another request;
//! * [`with_scratch`] is **not re-entrant** (the nested borrow would
//!   panic): callees that need scratch state receive `&mut
//!   RequestScratch` as an argument instead of re-entering;
//! * every buffer is reset-on-use by its consumer ([`UrlKey::reset`],
//!   `candidates_key_into`, `handle_into`, `encode_into` all clear
//!   first), so a stale read of leftover state is impossible by
//!   construction — a fresh scratch and a warm one behave identically,
//!   the warm one just skips the allocations.
//!
//! `tests/zero_alloc.rs` pins the result with a counting global
//! allocator: a warm steady-state request performs zero heap
//! allocations at 1 and at 8 shards.

use crate::machine::Output;
use sc_bloom::UrlKey;
use std::cell::RefCell;

/// One thread's reusable request-path buffers.
pub struct RequestScratch {
    /// The request's one URL key, re-digested in place per request
    /// ([`UrlKey::reset`] keeps the byte and memo capacity).
    pub key: UrlKey,
    /// Candidate peers from the replica-snapshot probe
    /// (`candidates_key_into` clears it first).
    pub candidates: Vec<u32>,
    /// Router-output sink for the request's ledger events
    /// (`handle_into` clears it first).
    pub outputs: Vec<Output>,
    /// Datagram encode buffer (`encode_into` clears it first).
    pub wire: Vec<u8>,
}

impl RequestScratch {
    /// A cold scratch; every buffer warms up over the first requests
    /// and then holds its high-water capacity.
    pub fn new() -> RequestScratch {
        RequestScratch {
            key: UrlKey::new(b""),
            // sc-check: allow(alloc) — once-per-thread construction.
            candidates: Vec::new(),
            // sc-check: allow(alloc) — once-per-thread construction.
            outputs: Vec::new(),
            // sc-check: allow(alloc) — once-per-thread construction.
            wire: Vec::new(),
        }
    }
}

impl Default for RequestScratch {
    fn default() -> RequestScratch {
        RequestScratch::new()
    }
}

thread_local! {
    static SCRATCH: RefCell<RequestScratch> = RefCell::new(RequestScratch::new());
}

/// Run `f` with this thread's request scratch. Not re-entrant: pass
/// the `&mut RequestScratch` down to callees instead of nesting calls.
pub fn with_scratch<R>(f: impl FnOnce(&mut RequestScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_buffers_keep_capacity_across_uses() {
        with_scratch(|s| {
            s.key.reset(b"http://example.com/a");
            s.candidates.clear();
            s.candidates.extend([1, 2, 3]);
            s.wire.clear();
            s.wire.extend_from_slice(&[0u8; 64]);
        });
        with_scratch(|s| {
            assert!(s.candidates.capacity() >= 3);
            assert!(s.wire.capacity() >= 64);
            s.key.reset(b"http://example.com/b");
            assert_eq!(s.key.bytes(), b"http://example.com/b");
        });
    }

    #[test]
    fn with_scratch_returns_the_closure_value() {
        assert_eq!(with_scratch(|_| 7u32), 7);
    }
}
