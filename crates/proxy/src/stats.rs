//! Per-proxy measurement: the counters the paper reads from `netstat`
//! plus process CPU time.
//!
//! Since the sc-obs redesign this module is a thin façade: every
//! counter, gauge and histogram lives in an [`sc_obs::Registry`] owned
//! by the [`ProxyStats`], the public fields are cheap handles into it,
//! and [`ProxyStats::snapshot`] is *derived from the registry snapshot*
//! ([`StatsSnapshot::from_obs`]) — the same numbers the admin
//! endpoint's `/metrics` page exposes.

use std::collections::HashMap;
use std::sync::Arc;

use sc_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Journal, Registry};

/// Ethernet-ish MSS used to convert byte counts into the "TCP packets"
/// the paper reports from netstat.
pub const TCP_SEGMENT_BYTES: u64 = 1460;

/// Per-peer instruments, all labeled `{peer="<id>"}` in the registry.
///
/// These are the Section IV/V error signals made visible per neighbour:
/// how often its summary sent us on a wild goose chase (false hits),
/// how often it paid off (remote hits), and what the round trips cost.
#[derive(Debug, Clone)]
pub struct PeerStats {
    /// ICP queries sent to this peer.
    pub queries_sent: Counter,
    /// Queries where this candidate held nothing (its summary lied).
    pub false_hits: Counter,
    /// Queries answered by a fresh HIT from this peer.
    pub remote_hits: Counter,
    /// Queries where this peer held only a stale copy.
    pub stale_hits: Counter,
    /// UDP payload bytes sent to this peer.
    pub udp_bytes_sent: Counter,
    /// UDP payload bytes received from this peer.
    pub udp_bytes_recv: Counter,
    /// HTTP body bytes fetched from this peer on remote hits.
    pub tcp_bytes_fetched: Counter,
    /// Observed staleness of this peer's summary: the fraction of our
    /// queries to it that were wasted (the *effect* of staleness; the
    /// peer's true directory is unknowable from here).
    pub staleness: Gauge,
    /// Round-trip time of ICP queries to this peer, microseconds.
    pub icp_rtt_us: Histogram,
}

impl PeerStats {
    /// Refresh the observed-staleness gauge from the query counters.
    pub fn update_staleness(&self) {
        let q = self.queries_sent.get();
        if q > 0 {
            self.staleness.set(self.false_hits.get() as f64 / q as f64);
        }
    }
}

/// Live instruments, shared across a proxy's threads.
///
/// The public fields keep their historical names so call sites read
/// naturally (`stats.local_hits.incr()`); each is a handle into the
/// registry returned by [`ProxyStats::registry`].
#[derive(Debug)]
pub struct ProxyStats {
    registry: Arc<Registry>,
    /// UDP datagrams sent (ICP queries, replies, directory updates).
    pub udp_sent: Counter,
    /// UDP datagrams received.
    pub udp_recv: Counter,
    /// Bytes inside sent UDP datagrams.
    pub udp_bytes_sent: Counter,
    /// Bytes inside received UDP datagrams.
    pub udp_bytes_recv: Counter,
    /// Bytes written to TCP sockets (client + peer + origin sides).
    pub tcp_bytes_sent: Counter,
    /// Bytes read from TCP sockets.
    pub tcp_bytes_recv: Counter,
    /// HTTP requests served to clients.
    pub http_requests: Counter,
    /// Served fresh from the local cache.
    pub local_hits: Counter,
    /// Served from a neighbour.
    pub remote_hits: Counter,
    /// Queried neighbours that turned out to hold nothing (false hits).
    pub false_hits: Counter,
    /// Queried neighbours that held only a stale copy.
    pub remote_stale_hits: Counter,
    /// ICP query messages this proxy sent.
    pub icp_queries_sent: Counter,
    /// ICP queries this proxy answered.
    pub icp_queries_served: Counter,
    /// Directory-update messages sent.
    pub updates_sent: Counter,
    /// Directory-update messages received and applied.
    pub updates_received: Counter,
    /// Peers declared failed (summary replica dropped).
    pub peer_failures: Counter,
    /// Peer recoveries handled (full bitmap re-sent).
    pub peer_recoveries: Counter,
    /// Update datagrams detected lost or reordered (seq gaps, plus
    /// generation/spec changes observed mid-stream).
    pub update_gaps: Counter,
    /// Peer replicas rebuilt from a full bitmap (resync completions,
    /// including first-contact bootstraps).
    pub replica_resyncs: Counter,
    /// DIRREQ messages sent asking a peer for its full bitmap.
    pub resync_requests: Counter,
    /// Full client-latency distribution (log-bucketed microseconds);
    /// its sum/count also provide the mean the paper reports.
    pub latency_hist: Histogram,
    /// Own-summary staleness at each publish ([`summary_cache_core::PublishOutcome::staleness`]).
    pub summary_staleness: Gauge,
    /// Times this proxy published its summary.
    pub summary_publishes: Counter,
    /// Per-peer wire size of each delta (bit-flip) update datagram,
    /// bytes.
    pub update_delta_bytes: Histogram,
    /// Per-peer wire size of each full-bitmap update datagram, bytes.
    pub update_full_bytes: Histogram,
    peers: HashMap<u32, PeerStats>,
}

impl Default for ProxyStats {
    fn default() -> Self {
        Self::with_peers(&[])
    }
}

impl ProxyStats {
    /// Instruments for a proxy with no peers (no per-peer series).
    pub fn new() -> ProxyStats {
        Self::default()
    }

    /// Instruments for a proxy peering with `peer_ids`: the global
    /// series plus one labeled series set per peer.
    pub fn with_peers(peer_ids: &[u32]) -> ProxyStats {
        let registry = Arc::new(Registry::new());
        let peers = peer_ids
            .iter()
            .map(|&id| {
                let l = id.to_string();
                let lbl: &[(&str, &str)] = &[("peer", &l)];
                (
                    id,
                    PeerStats {
                        queries_sent: registry.counter_with("sc_peer_queries_sent_total", lbl),
                        false_hits: registry.counter_with("sc_peer_false_hits_total", lbl),
                        remote_hits: registry.counter_with("sc_peer_remote_hits_total", lbl),
                        stale_hits: registry.counter_with("sc_peer_stale_hits_total", lbl),
                        udp_bytes_sent: registry.counter_with("sc_peer_udp_bytes_sent_total", lbl),
                        udp_bytes_recv: registry
                            .counter_with("sc_peer_udp_bytes_received_total", lbl),
                        tcp_bytes_fetched: registry
                            .counter_with("sc_peer_tcp_bytes_fetched_total", lbl),
                        staleness: registry.gauge_with("sc_peer_staleness", lbl),
                        icp_rtt_us: registry.histogram_with("sc_peer_icp_rtt_us", lbl),
                    },
                )
            })
            .collect();
        ProxyStats {
            udp_sent: registry.counter("sc_udp_datagrams_sent_total"),
            udp_recv: registry.counter("sc_udp_datagrams_received_total"),
            udp_bytes_sent: registry.counter("sc_udp_bytes_sent_total"),
            udp_bytes_recv: registry.counter("sc_udp_bytes_received_total"),
            tcp_bytes_sent: registry.counter("sc_tcp_bytes_sent_total"),
            tcp_bytes_recv: registry.counter("sc_tcp_bytes_received_total"),
            http_requests: registry.counter("sc_http_requests_total"),
            local_hits: registry.counter("sc_local_hits_total"),
            remote_hits: registry.counter("sc_remote_hits_total"),
            false_hits: registry.counter("sc_false_hits_total"),
            remote_stale_hits: registry.counter("sc_remote_stale_hits_total"),
            icp_queries_sent: registry.counter("sc_icp_queries_sent_total"),
            icp_queries_served: registry.counter("sc_icp_queries_served_total"),
            updates_sent: registry.counter("sc_updates_sent_total"),
            updates_received: registry.counter("sc_updates_received_total"),
            peer_failures: registry.counter("sc_peer_failures_total"),
            peer_recoveries: registry.counter("sc_peer_recoveries_total"),
            update_gaps: registry.counter("sc_update_gaps_total"),
            replica_resyncs: registry.counter("sc_replica_resyncs_total"),
            resync_requests: registry.counter("sc_resync_requests_total"),
            latency_hist: registry.histogram("sc_request_latency_us"),
            summary_staleness: registry.gauge("sc_summary_staleness"),
            summary_publishes: registry.counter("sc_summary_publishes_total"),
            update_delta_bytes: registry.histogram("sc_update_delta_bytes"),
            update_full_bytes: registry.histogram("sc_update_full_bytes"),
            peers,
            registry,
        }
    }

    /// The backing registry (what the admin endpoint snapshots).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The structured event journal.
    pub fn journal(&self) -> &Journal {
        self.registry.journal()
    }

    /// This peer's instruments, if it was declared at construction.
    pub fn peer(&self, id: u32) -> Option<&PeerStats> {
        self.peers.get(&id)
    }

    /// Record a sent UDP datagram of `bytes`, attributed to `peer` when
    /// the destination is a known neighbour.
    pub fn udp_out_to(&self, peer: Option<u32>, bytes: usize) {
        self.udp_sent.incr();
        self.udp_bytes_sent.add(bytes as u64);
        if let Some(p) = peer.and_then(|id| self.peers.get(&id)) {
            p.udp_bytes_sent.add(bytes as u64);
        }
    }

    /// Record a received UDP datagram of `bytes`, attributed to `peer`
    /// when the source is a known neighbour.
    pub fn udp_in_from(&self, peer: Option<u32>, bytes: usize) {
        self.udp_recv.incr();
        self.udp_bytes_recv.add(bytes as u64);
        if let Some(p) = peer.and_then(|id| self.peers.get(&id)) {
            p.udp_bytes_recv.add(bytes as u64);
        }
    }

    /// Record a sent UDP datagram of `bytes` (unattributed).
    pub fn udp_out(&self, bytes: usize) {
        self.udp_out_to(None, bytes);
    }

    /// Record a received UDP datagram of `bytes` (unattributed).
    pub fn udp_in(&self, bytes: usize) {
        self.udp_in_from(None, bytes);
    }

    /// Record TCP bytes written.
    pub fn tcp_out(&self, bytes: usize) {
        self.tcp_bytes_sent.add(bytes as u64);
    }

    /// Record TCP bytes read.
    pub fn tcp_in(&self, bytes: usize) {
        self.tcp_bytes_recv.add(bytes as u64);
    }

    /// Record one client request's latency.
    pub fn latency(&self, micros: u64) {
        self.latency_hist.record(micros);
    }

    /// Latency percentiles (p50/p95/p99 by default elsewhere).
    pub fn latency_summary(&self, percentiles: &[f64]) -> crate::histogram::LatencySummary {
        crate::histogram::summarize(&self.latency_hist.snapshot(), percentiles)
    }

    /// Freeze the counters into a snapshot — literally a projection of
    /// the sc-obs registry snapshot ([`StatsSnapshot::from_obs`]).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::from_obs(&self.registry.snapshot())
    }
}

/// An immutable copy of the counters, with derived quantities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// UDP datagrams sent.
    pub udp_sent: u64,
    /// UDP datagrams received.
    pub udp_recv: u64,
    /// Bytes in sent UDP datagrams.
    pub udp_bytes_sent: u64,
    /// Bytes in received UDP datagrams.
    pub udp_bytes_recv: u64,
    /// TCP bytes written.
    pub tcp_bytes_sent: u64,
    /// TCP bytes read.
    pub tcp_bytes_recv: u64,
    /// Client HTTP requests served.
    pub http_requests: u64,
    /// Local cache hits.
    pub local_hits: u64,
    /// Remote (neighbour) hits.
    pub remote_hits: u64,
    /// Wasted candidate queries (false hits).
    pub false_hits: u64,
    /// Neighbours holding only stale copies.
    pub remote_stale_hits: u64,
    /// ICP queries sent.
    pub icp_queries_sent: u64,
    /// ICP queries answered.
    pub icp_queries_served: u64,
    /// Directory updates sent.
    pub updates_sent: u64,
    /// Directory updates received.
    pub updates_received: u64,
    /// Summed latency, microseconds (the latency histogram's sum).
    pub latency_us_sum: u64,
    /// Latency samples (the latency histogram's count).
    pub latency_count: u64,
    /// Peers declared failed.
    pub peer_failures: u64,
    /// Peer recoveries handled.
    pub peer_recoveries: u64,
    /// Update datagrams detected lost or reordered.
    pub update_gaps: u64,
    /// Peer replicas rebuilt from a full bitmap.
    pub replica_resyncs: u64,
    /// DIRREQ resync requests sent.
    pub resync_requests: u64,
    /// The full client-latency distribution, for tail percentiles.
    pub latency_hist: HistogramSnapshot,
}

sc_json::json_struct!(StatsSnapshot {
    udp_sent,
    udp_recv,
    udp_bytes_sent,
    udp_bytes_recv,
    tcp_bytes_sent,
    tcp_bytes_recv,
    http_requests,
    local_hits,
    remote_hits,
    false_hits,
    remote_stale_hits,
    icp_queries_sent,
    icp_queries_served,
    updates_sent,
    updates_received,
    latency_us_sum,
    latency_count,
    peer_failures,
    peer_recoveries,
    update_gaps,
    replica_resyncs,
    resync_requests,
    latency_hist
});

impl StatsSnapshot {
    /// Project a registry snapshot onto the netstat-style counters the
    /// paper's tables use. Metrics absent from the snapshot read as 0.
    pub fn from_obs(snap: &sc_obs::Snapshot) -> StatsSnapshot {
        let hist = snap.histogram_value("sc_request_latency_us");
        StatsSnapshot {
            udp_sent: snap.counter_value("sc_udp_datagrams_sent_total"),
            udp_recv: snap.counter_value("sc_udp_datagrams_received_total"),
            udp_bytes_sent: snap.counter_value("sc_udp_bytes_sent_total"),
            udp_bytes_recv: snap.counter_value("sc_udp_bytes_received_total"),
            tcp_bytes_sent: snap.counter_value("sc_tcp_bytes_sent_total"),
            tcp_bytes_recv: snap.counter_value("sc_tcp_bytes_received_total"),
            http_requests: snap.counter_value("sc_http_requests_total"),
            local_hits: snap.counter_value("sc_local_hits_total"),
            remote_hits: snap.counter_value("sc_remote_hits_total"),
            false_hits: snap.counter_value("sc_false_hits_total"),
            remote_stale_hits: snap.counter_value("sc_remote_stale_hits_total"),
            icp_queries_sent: snap.counter_value("sc_icp_queries_sent_total"),
            icp_queries_served: snap.counter_value("sc_icp_queries_served_total"),
            updates_sent: snap.counter_value("sc_updates_sent_total"),
            updates_received: snap.counter_value("sc_updates_received_total"),
            latency_us_sum: hist.sum,
            latency_count: hist.samples(),
            peer_failures: snap.counter_value("sc_peer_failures_total"),
            peer_recoveries: snap.counter_value("sc_peer_recoveries_total"),
            update_gaps: snap.counter_value("sc_update_gaps_total"),
            replica_resyncs: snap.counter_value("sc_replica_resyncs_total"),
            resync_requests: snap.counter_value("sc_resync_requests_total"),
            latency_hist: hist,
        }
    }

    /// Total UDP messages, the paper's headline ICP-overhead metric.
    pub fn udp_messages(&self) -> u64 {
        self.udp_sent + self.udp_recv
    }

    /// Approximate TCP packet count (bytes / MSS, one minimum per
    /// direction) — the netstat "TCP packets" stand-in.
    pub fn tcp_packets(&self) -> u64 {
        self.tcp_bytes_sent.div_ceil(TCP_SEGMENT_BYTES)
            + self.tcp_bytes_recv.div_ceil(TCP_SEGMENT_BYTES)
    }

    /// Total network "packets" (UDP messages + TCP segments), the
    /// paper's third netstat column.
    pub fn total_packets(&self) -> u64 {
        self.udp_messages() + self.tcp_packets()
    }

    /// Mean client latency in milliseconds.
    pub fn avg_latency_ms(&self) -> f64 {
        if self.latency_count == 0 {
            return 0.0;
        }
        self.latency_us_sum as f64 / self.latency_count as f64 / 1000.0
    }

    /// Client latency at percentile `p` (in `[0,1]`), milliseconds,
    /// from the embedded distribution.
    pub fn latency_ms(&self, p: f64) -> f64 {
        self.latency_hist.percentile(p) as f64 / 1000.0
    }

    /// Total hit ratio (local + remote).
    pub fn hit_ratio(&self) -> f64 {
        if self.http_requests == 0 {
            return 0.0;
        }
        (self.local_hits + self.remote_hits) as f64 / self.http_requests as f64
    }

    /// Element-wise sum (for aggregating a cluster).
    ///
    /// Merging is **total**: scalar counters add, and the two latency
    /// distributions merge bucket-by-bucket with the shorter one
    /// zero-padded ([`HistogramSnapshot::merged`]), so differing
    /// histogram widths never drop samples. Neither input is consumed.
    pub fn merged(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            udp_sent: self.udp_sent + other.udp_sent,
            udp_recv: self.udp_recv + other.udp_recv,
            udp_bytes_sent: self.udp_bytes_sent + other.udp_bytes_sent,
            udp_bytes_recv: self.udp_bytes_recv + other.udp_bytes_recv,
            tcp_bytes_sent: self.tcp_bytes_sent + other.tcp_bytes_sent,
            tcp_bytes_recv: self.tcp_bytes_recv + other.tcp_bytes_recv,
            http_requests: self.http_requests + other.http_requests,
            local_hits: self.local_hits + other.local_hits,
            remote_hits: self.remote_hits + other.remote_hits,
            false_hits: self.false_hits + other.false_hits,
            remote_stale_hits: self.remote_stale_hits + other.remote_stale_hits,
            icp_queries_sent: self.icp_queries_sent + other.icp_queries_sent,
            icp_queries_served: self.icp_queries_served + other.icp_queries_served,
            updates_sent: self.updates_sent + other.updates_sent,
            updates_received: self.updates_received + other.updates_received,
            latency_us_sum: self.latency_us_sum + other.latency_us_sum,
            latency_count: self.latency_count + other.latency_count,
            peer_failures: self.peer_failures + other.peer_failures,
            peer_recoveries: self.peer_recoveries + other.peer_recoveries,
            update_gaps: self.update_gaps + other.update_gaps,
            replica_resyncs: self.replica_resyncs + other.replica_resyncs,
            resync_requests: self.resync_requests + other.resync_requests,
            latency_hist: self.latency_hist.merged(&other.latency_hist),
        }
    }
}

/// Process CPU time, read from `/proc/self/stat` — the paper's
/// user/system CPU columns (it reads them from `getrusage`), measured
/// at experiment granularity. On platforms without procfs both values
/// read as zero, which downstream code treats as "not measured".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuTimes {
    /// User CPU seconds.
    pub user: f64,
    /// System CPU seconds.
    pub system: f64,
}

/// Linux's userspace-visible clock tick rate (`_SC_CLK_TCK`); fixed at
/// 100 on every supported architecture.
const TICKS_PER_SEC: f64 = 100.0;

impl CpuTimes {
    /// Read the current process totals (zeros where procfs is absent).
    pub fn now() -> CpuTimes {
        Self::read().unwrap_or(CpuTimes {
            user: 0.0,
            system: 0.0,
        })
    }

    fn read() -> Option<CpuTimes> {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // Field 2 (comm) may itself contain spaces and parentheses;
        // everything after the *last* ')' is fields 3 onward.
        let rest = stat.rsplit_once(')')?.1;
        let mut fields = rest.split_whitespace();
        // utime/stime are stat fields 14 and 15, i.e. indices 11 and 12
        // relative to field 3.
        let utime: f64 = fields.nth(11)?.parse().ok()?;
        let stime: f64 = fields.next()?.parse().ok()?;
        Some(CpuTimes {
            user: utime / TICKS_PER_SEC,
            system: stime / TICKS_PER_SEC,
        })
    }

    /// CPU spent between `start` and `self`.
    pub fn since(&self, start: &CpuTimes) -> CpuTimes {
        CpuTimes {
            user: (self.user - start.user).max(0.0),
            system: (self.system - start.system).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_json::{FromJson, ToJson};

    #[test]
    fn snapshot_reflects_counters() {
        let s = ProxyStats::default();
        s.udp_out(100);
        s.udp_out(50);
        s.udp_in(70);
        s.tcp_out(3000);
        s.tcp_in(1461);
        s.latency(2000);
        let snap = s.snapshot();
        assert_eq!(snap.udp_sent, 2);
        assert_eq!(snap.udp_recv, 1);
        assert_eq!(snap.udp_bytes_sent, 150);
        assert_eq!(snap.udp_messages(), 3);
        assert_eq!(snap.tcp_packets(), 3 + 2, "ceil(3000/1460)+ceil(1461/1460)");
        assert_eq!(snap.total_packets(), 8);
        assert!((snap.avg_latency_ms() - 2.0).abs() < 1e-9);
        assert_eq!(snap.latency_count, 1);
        assert_eq!(snap.latency_us_sum, 2000);
    }

    #[test]
    fn snapshot_is_a_registry_projection() {
        let s = ProxyStats::default();
        s.http_requests.incr();
        s.local_hits.incr();
        s.latency(1500);
        let obs = s.registry().snapshot();
        assert_eq!(s.snapshot(), StatsSnapshot::from_obs(&obs));
        assert_eq!(obs.counter_value("sc_http_requests_total"), 1);
    }

    #[test]
    fn per_peer_series_and_staleness() {
        let s = ProxyStats::with_peers(&[1, 2]);
        assert!(s.peer(3).is_none());
        let p1 = s.peer(1).expect("declared");
        p1.queries_sent.add(4);
        p1.false_hits.add(1);
        p1.update_staleness();
        s.udp_out_to(Some(2), 64);
        s.udp_in_from(Some(9), 32); // unknown peer: global only
        let obs = s.registry().snapshot();
        assert_eq!(
            obs.counter_value_with("sc_peer_queries_sent_total", &[("peer", "1")]),
            4
        );
        assert_eq!(
            obs.gauge_value_with("sc_peer_staleness", &[("peer", "1")]),
            Some(0.25)
        );
        assert_eq!(
            obs.counter_value_with("sc_peer_udp_bytes_sent_total", &[("peer", "2")]),
            64
        );
        assert_eq!(obs.counter_value("sc_udp_bytes_received_total"), 32);
        assert_eq!(obs.counter_value("sc_peer_udp_bytes_received_total"), 0);
    }

    #[test]
    fn hit_ratio_and_merge() {
        let a = StatsSnapshot {
            http_requests: 10,
            local_hits: 3,
            remote_hits: 2,
            ..Default::default()
        };
        assert!((a.hit_ratio() - 0.5).abs() < 1e-12);
        let b = StatsSnapshot {
            http_requests: 10,
            local_hits: 5,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.http_requests, 20);
        assert_eq!(m.local_hits, 8);
        assert!((m.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(a.http_requests, 10, "merged() borrows, not consumes");
    }

    #[test]
    fn merge_keeps_histograms_of_different_widths() {
        let fast = ProxyStats::default();
        fast.latency(100);
        let slow = ProxyStats::default();
        slow.latency(2_000_000);
        let a = fast.snapshot();
        let b = slow.snapshot();
        assert!(a.latency_hist.counts.len() < b.latency_hist.counts.len());
        let m = a.merged(&b);
        assert_eq!(m.latency_count, 2, "no bucket dropped");
        assert_eq!(m.latency_us_sum, 2_000_100);
        assert!(m.latency_ms(1.0) >= 1_800.0, "tail survives the merge");
    }

    #[test]
    fn empty_snapshot_no_nan() {
        let s = StatsSnapshot::default();
        assert_eq!(s.avg_latency_ms(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.latency_ms(0.99), 0.0);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let stats = ProxyStats::default();
        stats.latency(777);
        let mut snap = stats.snapshot();
        snap.http_requests = 42;
        snap.local_hits = 17;
        snap.udp_bytes_sent = u64::MAX;
        let back = StatsSnapshot::from_json(&snap.to_json()).expect("roundtrip");
        assert_eq!(back, snap);
    }

    #[test]
    fn cpu_times_monotone() {
        let a = CpuTimes::now();
        // Burn a little CPU.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = CpuTimes::now();
        let d = b.since(&a);
        assert!(d.user >= 0.0 && d.system >= 0.0);
        assert!(b.user >= a.user);
    }

    #[test]
    fn cpu_times_parse_shape() {
        // On Linux the read path must succeed and yield finite values.
        if std::path::Path::new("/proc/self/stat").exists() {
            let t = CpuTimes::now();
            assert!(t.user.is_finite() && t.system.is_finite());
            assert!(t.user >= 0.0 && t.system >= 0.0);
        }
    }
}
