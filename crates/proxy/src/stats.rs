//! Per-proxy measurement: the counters the paper reads from `netstat`
//! plus process CPU time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Ethernet-ish MSS used to convert byte counts into the "TCP packets"
/// the paper reports from netstat.
pub const TCP_SEGMENT_BYTES: u64 = 1460;

/// Live atomic counters, shared across a proxy's threads.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// UDP datagrams sent (ICP queries, replies, directory updates).
    pub udp_sent: AtomicU64,
    /// UDP datagrams received.
    pub udp_recv: AtomicU64,
    /// Bytes inside sent UDP datagrams.
    pub udp_bytes_sent: AtomicU64,
    /// Bytes inside received UDP datagrams.
    pub udp_bytes_recv: AtomicU64,
    /// Bytes written to TCP sockets (client + peer + origin sides).
    pub tcp_bytes_sent: AtomicU64,
    /// Bytes read from TCP sockets.
    pub tcp_bytes_recv: AtomicU64,
    /// HTTP requests served to clients.
    pub http_requests: AtomicU64,
    /// Served fresh from the local cache.
    pub local_hits: AtomicU64,
    /// Served from a neighbour.
    pub remote_hits: AtomicU64,
    /// Queried neighbours that turned out to hold nothing (false hits).
    pub false_hits: AtomicU64,
    /// Queried neighbours that held only a stale copy.
    pub remote_stale_hits: AtomicU64,
    /// ICP query messages this proxy sent.
    pub icp_queries_sent: AtomicU64,
    /// ICP queries this proxy answered.
    pub icp_queries_served: AtomicU64,
    /// Directory-update messages sent.
    pub updates_sent: AtomicU64,
    /// Directory-update messages received and applied.
    pub updates_received: AtomicU64,
    /// Summed client-observed latency, microseconds.
    pub latency_us_sum: AtomicU64,
    /// Latency samples.
    pub latency_count: AtomicU64,
    /// Peers declared failed (summary replica dropped).
    pub peer_failures: AtomicU64,
    /// Peer recoveries handled (full bitmap re-sent).
    pub peer_recoveries: AtomicU64,
    /// Full latency distribution (log-bucketed).
    pub latency_hist: crate::histogram::LatencyHistogram,
}

macro_rules! bump {
    ($self:ident, $field:ident) => {
        $self.$field.fetch_add(1, Ordering::Relaxed)
    };
    ($self:ident, $field:ident, $n:expr) => {
        $self.$field.fetch_add($n, Ordering::Relaxed)
    };
}

impl ProxyStats {
    /// Record a sent UDP datagram of `bytes`.
    pub fn udp_out(&self, bytes: usize) {
        bump!(self, udp_sent);
        bump!(self, udp_bytes_sent, bytes as u64);
    }

    /// Record a received UDP datagram of `bytes`.
    pub fn udp_in(&self, bytes: usize) {
        bump!(self, udp_recv);
        bump!(self, udp_bytes_recv, bytes as u64);
    }

    /// Record TCP bytes written.
    pub fn tcp_out(&self, bytes: usize) {
        bump!(self, tcp_bytes_sent, bytes as u64);
    }

    /// Record TCP bytes read.
    pub fn tcp_in(&self, bytes: usize) {
        bump!(self, tcp_bytes_recv, bytes as u64);
    }

    /// Record one client request's latency.
    pub fn latency(&self, micros: u64) {
        bump!(self, latency_us_sum, micros);
        bump!(self, latency_count);
        self.latency_hist.record(micros);
    }

    /// Latency percentiles (p50/p95/p99 by default elsewhere).
    pub fn latency_summary(&self, percentiles: &[f64]) -> crate::histogram::LatencySummary {
        self.latency_hist.snapshot(percentiles)
    }

    /// Freeze the counters into a snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            udp_sent: g(&self.udp_sent),
            udp_recv: g(&self.udp_recv),
            udp_bytes_sent: g(&self.udp_bytes_sent),
            udp_bytes_recv: g(&self.udp_bytes_recv),
            tcp_bytes_sent: g(&self.tcp_bytes_sent),
            tcp_bytes_recv: g(&self.tcp_bytes_recv),
            http_requests: g(&self.http_requests),
            local_hits: g(&self.local_hits),
            remote_hits: g(&self.remote_hits),
            false_hits: g(&self.false_hits),
            remote_stale_hits: g(&self.remote_stale_hits),
            icp_queries_sent: g(&self.icp_queries_sent),
            icp_queries_served: g(&self.icp_queries_served),
            updates_sent: g(&self.updates_sent),
            updates_received: g(&self.updates_received),
            latency_us_sum: g(&self.latency_us_sum),
            latency_count: g(&self.latency_count),
            peer_failures: g(&self.peer_failures),
            peer_recoveries: g(&self.peer_recoveries),
        }
    }
}

/// An immutable copy of the counters, with derived quantities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// UDP datagrams sent.
    pub udp_sent: u64,
    /// UDP datagrams received.
    pub udp_recv: u64,
    /// Bytes in sent UDP datagrams.
    pub udp_bytes_sent: u64,
    /// Bytes in received UDP datagrams.
    pub udp_bytes_recv: u64,
    /// TCP bytes written.
    pub tcp_bytes_sent: u64,
    /// TCP bytes read.
    pub tcp_bytes_recv: u64,
    /// Client HTTP requests served.
    pub http_requests: u64,
    /// Local cache hits.
    pub local_hits: u64,
    /// Remote (neighbour) hits.
    pub remote_hits: u64,
    /// Wasted candidate queries (false hits).
    pub false_hits: u64,
    /// Neighbours holding only stale copies.
    pub remote_stale_hits: u64,
    /// ICP queries sent.
    pub icp_queries_sent: u64,
    /// ICP queries answered.
    pub icp_queries_served: u64,
    /// Directory updates sent.
    pub updates_sent: u64,
    /// Directory updates received.
    pub updates_received: u64,
    /// Summed latency, microseconds.
    pub latency_us_sum: u64,
    /// Latency samples.
    pub latency_count: u64,
    /// Peers declared failed.
    pub peer_failures: u64,
    /// Peer recoveries handled.
    pub peer_recoveries: u64,
}

sc_json::json_struct!(StatsSnapshot {
    udp_sent,
    udp_recv,
    udp_bytes_sent,
    udp_bytes_recv,
    tcp_bytes_sent,
    tcp_bytes_recv,
    http_requests,
    local_hits,
    remote_hits,
    false_hits,
    remote_stale_hits,
    icp_queries_sent,
    icp_queries_served,
    updates_sent,
    updates_received,
    latency_us_sum,
    latency_count,
    peer_failures,
    peer_recoveries
});

impl StatsSnapshot {
    /// Total UDP messages, the paper's headline ICP-overhead metric.
    pub fn udp_messages(&self) -> u64 {
        self.udp_sent + self.udp_recv
    }

    /// Approximate TCP packet count (bytes / MSS, one minimum per
    /// direction) — the netstat "TCP packets" stand-in.
    pub fn tcp_packets(&self) -> u64 {
        self.tcp_bytes_sent.div_ceil(TCP_SEGMENT_BYTES)
            + self.tcp_bytes_recv.div_ceil(TCP_SEGMENT_BYTES)
    }

    /// Total network "packets" (UDP messages + TCP segments), the
    /// paper's third netstat column.
    pub fn total_packets(&self) -> u64 {
        self.udp_messages() + self.tcp_packets()
    }

    /// Mean client latency in milliseconds.
    pub fn avg_latency_ms(&self) -> f64 {
        if self.latency_count == 0 {
            return 0.0;
        }
        self.latency_us_sum as f64 / self.latency_count as f64 / 1000.0
    }

    /// Total hit ratio (local + remote).
    pub fn hit_ratio(&self) -> f64 {
        if self.http_requests == 0 {
            return 0.0;
        }
        (self.local_hits + self.remote_hits) as f64 / self.http_requests as f64
    }

    /// Element-wise sum (for aggregating a cluster).
    pub fn merged(mut self, other: &StatsSnapshot) -> StatsSnapshot {
        self.udp_sent += other.udp_sent;
        self.udp_recv += other.udp_recv;
        self.udp_bytes_sent += other.udp_bytes_sent;
        self.udp_bytes_recv += other.udp_bytes_recv;
        self.tcp_bytes_sent += other.tcp_bytes_sent;
        self.tcp_bytes_recv += other.tcp_bytes_recv;
        self.http_requests += other.http_requests;
        self.local_hits += other.local_hits;
        self.remote_hits += other.remote_hits;
        self.false_hits += other.false_hits;
        self.remote_stale_hits += other.remote_stale_hits;
        self.icp_queries_sent += other.icp_queries_sent;
        self.icp_queries_served += other.icp_queries_served;
        self.updates_sent += other.updates_sent;
        self.updates_received += other.updates_received;
        self.latency_us_sum += other.latency_us_sum;
        self.latency_count += other.latency_count;
        self.peer_failures += other.peer_failures;
        self.peer_recoveries += other.peer_recoveries;
        self
    }
}

/// Process CPU time, read from `/proc/self/stat` — the paper's
/// user/system CPU columns (it reads them from `getrusage`), measured
/// at experiment granularity. On platforms without procfs both values
/// read as zero, which downstream code treats as "not measured".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuTimes {
    /// User CPU seconds.
    pub user: f64,
    /// System CPU seconds.
    pub system: f64,
}

/// Linux's userspace-visible clock tick rate (`_SC_CLK_TCK`); fixed at
/// 100 on every supported architecture.
const TICKS_PER_SEC: f64 = 100.0;

impl CpuTimes {
    /// Read the current process totals (zeros where procfs is absent).
    pub fn now() -> CpuTimes {
        Self::read().unwrap_or(CpuTimes {
            user: 0.0,
            system: 0.0,
        })
    }

    fn read() -> Option<CpuTimes> {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // Field 2 (comm) may itself contain spaces and parentheses;
        // everything after the *last* ')' is fields 3 onward.
        let rest = stat.rsplit_once(')')?.1;
        let mut fields = rest.split_whitespace();
        // utime/stime are stat fields 14 and 15, i.e. indices 11 and 12
        // relative to field 3.
        let utime: f64 = fields.nth(11)?.parse().ok()?;
        let stime: f64 = fields.next()?.parse().ok()?;
        Some(CpuTimes {
            user: utime / TICKS_PER_SEC,
            system: stime / TICKS_PER_SEC,
        })
    }

    /// CPU spent between `start` and `self`.
    pub fn since(&self, start: &CpuTimes) -> CpuTimes {
        CpuTimes {
            user: (self.user - start.user).max(0.0),
            system: (self.system - start.system).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_json::{FromJson, ToJson};

    #[test]
    fn snapshot_reflects_counters() {
        let s = ProxyStats::default();
        s.udp_out(100);
        s.udp_out(50);
        s.udp_in(70);
        s.tcp_out(3000);
        s.tcp_in(1461);
        s.latency(2000);
        let snap = s.snapshot();
        assert_eq!(snap.udp_sent, 2);
        assert_eq!(snap.udp_recv, 1);
        assert_eq!(snap.udp_bytes_sent, 150);
        assert_eq!(snap.udp_messages(), 3);
        assert_eq!(snap.tcp_packets(), 3 + 2, "ceil(3000/1460)+ceil(1461/1460)");
        assert_eq!(snap.total_packets(), 8);
        assert!((snap.avg_latency_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hit_ratio_and_merge() {
        let a = StatsSnapshot {
            http_requests: 10,
            local_hits: 3,
            remote_hits: 2,
            ..Default::default()
        };
        assert!((a.hit_ratio() - 0.5).abs() < 1e-12);
        let b = StatsSnapshot {
            http_requests: 10,
            local_hits: 5,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.http_requests, 20);
        assert_eq!(m.local_hits, 8);
        assert!((m.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_no_nan() {
        let s = StatsSnapshot::default();
        assert_eq!(s.avg_latency_ms(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let snap = StatsSnapshot {
            http_requests: 42,
            local_hits: 17,
            udp_bytes_sent: u64::MAX,
            ..Default::default()
        };
        let back = StatsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn cpu_times_monotone() {
        let a = CpuTimes::now();
        // Burn a little CPU.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = CpuTimes::now();
        let d = b.since(&a);
        assert!(d.user >= 0.0 && d.system >= 0.0);
        assert!(b.user >= a.user);
    }

    #[test]
    fn cpu_times_parse_shape() {
        // On Linux the read path must succeed and yield finite values.
        if std::path::Path::new("/proc/self/stat").exists() {
            let t = CpuTimes::now();
            assert!(t.user.is_finite() && t.system.is_finite());
            assert!(t.user >= 0.0 && t.system >= 0.0);
        }
    }
}
