//! The proxy daemon: HTTP front end, document cache, ICP endpoint, and
//! the summary-cache machinery of Section VI-B.
//!
//! Since the sans-I/O refactor, every protocol *decision* lives in
//! [`crate::shard`] + [`crate::router`]: the daemon is a thin I/O shell
//! that feeds the [`Router`] real datagrams, real timer ticks, and real
//! cache events, then carries out the sends and journal/metric effects
//! it returns. The deterministic [`crate::simnet`] harness drives the
//! very same router from a virtual clock, so a simulation schedule is a
//! faithful protocol schedule.
//!
//! One daemon = a small thread group sharing an internal state block:
//!
//! * a TCP accept loop serving clients (and peers fetching remote
//!   hits), one thread per connection;
//! * a UDP **ingest** thread: receives ICP datagrams and queues them on
//!   a bounded channel (back-pressure, never unbounded growth);
//! * a **protocol** thread: drains the ingest queue in batches, locks
//!   the router once per batch, and turns each datagram into routed
//!   events — one lock acquisition amortized over the whole batch;
//! * an **egress** thread: drains the bounded send queue the protocol
//!   side fills, puts datagrams on the wire, and does the per-kind
//!   byte/journal accounting off the router lock;
//! * a keep-alive thread whose period becomes [`Event::Tick`]
//!   (SECHO pings, failure sweep, anti-entropy heartbeat);
//! * an admin TCP endpoint ([`crate::admin`]) exposing the sc-obs
//!   registry every counter below lives in.
//!
//! The document cache is striped by the same `UrlKey` space the router
//! shards on ([`crate::router::stripe_of`]): a shard's directory slice
//! and its documents live on the same lane, and cache-lock contention
//! splits [`ProxyConfig::shards`] ways.
//!
//! The cache stores document *metadata*; bodies are synthesized at the
//! sizes recorded, which preserves every quantity the experiments
//! measure (message counts, byte counts, CPU, latency).
//!
//! Everything here is plain `std`: `std::net` sockets, `std::thread`,
//! `std::sync` — the workspace's dependency firewall (`sc-check`) keeps
//! it that way.

use crate::config::{Mode, PeerAddr, ProxyConfig};
use crate::machine::{Dest, DirectoryView, Effect, Event, Output, SendKind, VirtualTime};
use crate::origin::{drain_body, write_body, ACCEPT_POLL};
use crate::replica::ReplicaCell;
use crate::router::{DirectoryInspect, Router};
use crate::stats::ProxyStats;
use sc_bloom::BitVec;
use sc_cache::{DocMeta, Lookup, WebCache};
use sc_obs::EventKind;
use sc_util::fxhash::FxHashMap;
use sc_util::Rng;
use sc_wire::http;
use sc_wire::icp::IcpMessage;
use crate::scratch::{with_scratch, RequestScratch};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use summary_cache_core::{ProxySummary, SummaryKind, UrlKey};

/// How long the UDP loop blocks per receive before re-checking shutdown.
const UDP_POLL: Duration = Duration::from_millis(50);
/// Bound of the ingest queue (received, not yet processed datagrams).
/// When the protocol thread falls behind, the ingest thread blocks and
/// the kernel socket buffer absorbs (then drops) the excess — ICP is
/// datagram traffic, loss is survivable, unbounded queues are not.
const INGRESS_QUEUE: usize = 1024;
/// Most datagrams the protocol thread folds into one router lock hold.
const INGRESS_BATCH: usize = 64;
/// Bound of the egress queue (decided, not yet transmitted datagrams).
const EGRESS_QUEUE: usize = 1024;

/// Lock a mutex, tolerating poisoning: a panicking connection thread
/// must not wedge the whole daemon, and every structure guarded here is
/// consistent after each individual operation.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running proxy daemon.
pub struct Daemon {
    /// This proxy's id.
    pub id: u32,
    /// Bound HTTP address.
    pub http_addr: SocketAddr,
    /// Bound ICP (UDP) address.
    pub icp_addr: SocketAddr,
    /// Bound admin/observability address ([`crate::admin`]).
    pub admin_addr: SocketAddr,
    /// Live counters.
    pub stats: Arc<ProxyStats>,
    inner: Arc<Inner>,
    shutdown: Arc<AtomicBool>,
}

/// An outstanding ICP query awaiting replies.
struct Pending {
    outstanding: usize,
    hit: Option<u32>,
    done: Option<SyncSender<Option<u32>>>,
    /// When the queries left, for per-peer RTT histograms.
    sent_at: Instant,
}

/// One received datagram queued for the protocol thread.
struct Ingress {
    data: Vec<u8>,
    from: SocketAddr,
}

/// One encoded datagram queued for the egress thread, with everything
/// the per-kind accounting needs. The bytes are shared, not copied: a
/// broadcast enqueues one buffer N times.
struct Egress {
    bytes: Arc<Vec<u8>>,
    addr: SocketAddr,
    /// Destination peer id when known, for per-peer byte counters.
    peer: Option<u32>,
    kind: SendKind,
}

struct Inner {
    cfg: ProxyConfig,
    stats: Arc<ProxyStats>,
    /// The document cache, striped by the router's `UrlKey` space.
    cache: CacheStripes,
    /// The sharded sans-I/O protocol runtime — all replication/ICP
    /// decisions.
    router: Mutex<Router>,
    /// Lock-free read path: the router publishes replica snapshots
    /// here; SC-mode candidate selection reads them without touching
    /// the router lock.
    replicas: Arc<ReplicaCell>,
    /// Wall-clock origin of the router's [`VirtualTime`] axis.
    epoch: Instant,
    /// Fault injection: decides which outgoing update datagrams the
    /// [`ProxyConfig::update_loss`] knob silently drops. The decision
    /// is made at *enqueue* time (under the router lock), so the drop
    /// sequence is a function of the protocol schedule alone.
    loss_rng: Mutex<Rng>,
    /// ICP source address -> peer id, for dispatching replies.
    peer_of_addr: FxHashMap<SocketAddr, u32>,
    peers_by_id: FxHashMap<u32, PeerAddr>,
    pending: Mutex<FxHashMap<u32, Pending>>,
    udp: UdpSocket,
    /// Producer side of the bounded egress queue.
    egress: SyncSender<Egress>,
    next_reqnum: AtomicU32,
}

/// The document cache split into [`ProxyConfig::shards`] stripes along
/// the router's `UrlKey` partition: stripe *i* holds exactly the URLs
/// whose directory bits live in shard *i*, so a store and its summary
/// insert touch the same lane and independent lanes never contend.
struct CacheStripes {
    stripes: Vec<Mutex<WebCache<String>>>,
}

impl CacheStripes {
    /// `n` stripes splitting `capacity` bytes evenly (each stripe keeps
    /// at least one byte so a tiny capacity still admits metadata).
    fn new(capacity: u64, n: usize) -> CacheStripes {
        let n = n.max(1);
        let per = (capacity / n as u64).max(1);
        CacheStripes {
            stripes: (0..n).map(|_| Mutex::new(WebCache::new(per))).collect(),
        }
    }

    /// The stripe owning the URL whose digest is `key`. Callers digest
    /// the URL once per request and thread the `UrlKey` through every
    /// stripe/summary/probe touch — `stripe` never re-hashes.
    fn stripe(&self, key: &UrlKey) -> &Mutex<WebCache<String>> {
        &self.stripes[crate::router::stripe_of(key, self.stripes.len())]
    }

    /// Documents across all stripes. Stripes are locked one at a time
    /// in index order (never nested), so this cannot invert with any
    /// other acquisition.
    fn len(&self) -> usize {
        self.stripes.iter().map(|s| lock(s).len()).sum()
    }
}

/// The router's query-answering view over the real document cache.
struct CacheView<'a>(&'a CacheStripes);

impl DirectoryView for CacheView<'_> {
    fn contains(&self, url: &str) -> bool {
        // ICP query answering (a *peer's* request, not a proxied client
        // request): the queried URL arrives as text and is digested
        // here, once, to find its stripe.
        // sc-check: allow(hash_once) — this *is* an entry point.
        let key = UrlKey::new(url.as_bytes());
        lock(self.0.stripe(&key)).contains(&url.to_string())
    }
}

/// The current position on the router's virtual clock: microseconds of
/// real time since the daemon started.
fn now(inner: &Inner) -> VirtualTime {
    VirtualTime::from_micros(inner.epoch.elapsed().as_micros() as u64)
}

impl Daemon {
    /// Bind ephemeral loopback sockets and start the daemon.
    ///
    /// For clusters, bind the sockets first (so every daemon can know
    /// every peer's address up front) and use [`Daemon::spawn_on`].
    pub fn spawn(cfg: ProxyConfig) -> std::io::Result<Daemon> {
        let loopback = SocketAddr::from(([127, 0, 0, 1], 0));
        let listener = TcpListener::bind(loopback)?;
        let udp = UdpSocket::bind(loopback)?;
        Self::spawn_on(cfg, listener, udp)
    }

    /// Start the daemon on pre-bound sockets. The daemon is ready to
    /// serve (including its admin endpoint) as soon as this returns.
    pub fn spawn_on(
        cfg: ProxyConfig,
        listener: TcpListener,
        udp: UdpSocket,
    ) -> std::io::Result<Daemon> {
        let http_addr = listener.local_addr()?;
        let icp_addr = udp.local_addr()?;
        let peer_ids: Vec<u32> = cfg.peers().iter().map(|p| p.id).collect();
        let stats = Arc::new(ProxyStats::with_peers(&peer_ids));

        let sc = match *cfg.mode() {
            Mode::SummaryCache {
                load_factor,
                hashes,
                policy,
            } => {
                let kind = SummaryKind::Bloom {
                    load_factor,
                    hashes,
                };
                let mut summary = ProxySummary::with_expected_docs(kind, cfg.expected_docs());
                // Generation freshness is the shell's job: the router
                // never touches the wall clock.
                summary.set_generation(fresh_generation(cfg.id()));
                Some((summary, policy))
            }
            _ => None,
        };
        let router = Router::new(
            cfg.id(),
            peer_ids,
            cfg.keepalive_ms(),
            cfg.shards(),
            cfg.fanout_slots(),
            sc,
            VirtualTime::ZERO,
        );

        let replicas = router.replica_cell();
        let (egress_tx, egress_rx) = std::sync::mpsc::sync_channel::<Egress>(EGRESS_QUEUE);
        let inner = Arc::new(Inner {
            stats: stats.clone(),
            cache: CacheStripes::new(cfg.cache_bytes(), cfg.shards()),
            router: Mutex::new(router),
            replicas,
            epoch: Instant::now(),
            peer_of_addr: cfg.peers().iter().map(|p| (p.icp, p.id)).collect(),
            peers_by_id: cfg.peers().iter().map(|p| (p.id, *p)).collect(),
            pending: Mutex::new(FxHashMap::default()),
            loss_rng: Mutex::new(Rng::seed_from_u64(
                0x5C_1C_F0_0D ^ ((cfg.id() as u64) << 32),
            )),
            udp,
            egress: egress_tx,
            next_reqnum: AtomicU32::new(1),
            cfg,
        });

        let shutdown = Arc::new(AtomicBool::new(false));

        // Admin/observability endpoint (its traffic is deliberately NOT
        // counted into the TCP byte counters the tables report).
        let admin_listener = TcpListener::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
        let admin_addr = admin_listener.local_addr()?;
        crate::admin::serve(admin_listener, stats.clone(), shutdown.clone())?;

        // TCP accept loop.
        {
            let inner = inner.clone();
            let stop = shutdown.clone();
            listener.set_nonblocking(true)?;
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Request/response exchanges are small; Nagle
                            // + delayed ACK would add ~40 ms per turn.
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_nonblocking(false);
                            let inner = inner.clone();
                            std::thread::spawn(move || {
                                let _ = serve_tcp(inner, stream);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => break,
                    }
                }
            });
        }

        // Egress: drain the bounded send queue, transmit, account.
        {
            let inner = inner.clone();
            let stop = shutdown.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match egress_rx.recv_timeout(UDP_POLL) {
                        Ok(item) => transmit(&inner, item),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            });
        }

        // UDP ingest: datagram in -> bounded queue. The protocol thread
        // owns the router; this thread only receives and accounts, so a
        // burst never stalls behind a publish fan-out.
        let (ingress_tx, ingress_rx) = std::sync::mpsc::sync_channel::<Ingress>(INGRESS_QUEUE);
        {
            let inner = inner.clone();
            let stop = shutdown.clone();
            inner.udp.set_read_timeout(Some(UDP_POLL))?;
            std::thread::spawn(move || {
                let mut buf = vec![0u8; 65536];
                while !stop.load(Ordering::Relaxed) {
                    match inner.udp.recv_from(&mut buf) {
                        Ok((n, from)) => {
                            let from_peer = inner.peer_of_addr.get(&from).copied();
                            inner.stats.udp_in_from(from_peer, n);
                            if ingress_tx
                                .send(Ingress {
                                    data: buf[..n].to_vec(),
                                    from,
                                })
                                .is_err()
                            {
                                break; // protocol thread gone: shutting down
                            }
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) => {}
                        Err(_) => break,
                    }
                }
            });
        }

        // Protocol: batch the ingest queue through the router. One lock
        // acquisition covers a whole batch of datagrams.
        {
            let inner = inner.clone();
            let stop = shutdown.clone();
            std::thread::spawn(move || {
                // Warm protocol-thread scratch: the batch and output
                // buffers hold their high-water capacity across batches.
                let mut batch = Vec::new();
                let mut outputs = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let first = match ingress_rx.recv_timeout(UDP_POLL) {
                        Ok(d) => d,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    };
                    batch.clear();
                    batch.push(first);
                    while batch.len() < INGRESS_BATCH {
                        match ingress_rx.try_recv() {
                            Ok(d) => batch.push(d),
                            Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                        }
                    }
                    handle_batch(&inner, &mut batch, &mut outputs);
                }
            });
        }

        // Keep-alive ticks (all modes; the paper's no-ICP baseline
        // traffic). The router turns each tick into SECHO pings, the
        // failure sweep, and (SC mode) the anti-entropy heartbeat.
        if inner.cfg.keepalive_ms() > 0 && !inner.cfg.peers().is_empty() {
            let inner = inner.clone();
            let stop = shutdown.clone();
            std::thread::spawn(move || {
                // The router spreads its fan-out over `fanout_slots`
                // slots; tick it `fanout_slots` times per keep-alive
                // period so every peer is still serviced once per
                // period and failure-detection timing is unchanged.
                let slots = inner.cfg.fanout_slots().max(1) as u64;
                let period =
                    Duration::from_micros((inner.cfg.keepalive_ms() * 1000 / slots).max(1));
                let mut outputs = Vec::new();
                loop {
                    // Sleep one period, but notice shutdown within 50 ms.
                    let mut slept = Duration::ZERO;
                    while slept < period {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let step = (period - slept).min(Duration::from_millis(50));
                        std::thread::sleep(step);
                        slept += step;
                    }
                    let mut router = lock(&inner.router);
                    router.handle_into(
                        now(&inner),
                        Event::Tick,
                        &CacheView(&inner.cache),
                        &mut outputs,
                    );
                    apply_outputs(&inner, None, &mut outputs);
                    router.flush_replicas();
                    drop(router);
                }
            });
        }

        Ok(Daemon {
            id: inner.cfg.id(),
            http_addr,
            icp_addr,
            admin_addr,
            stats,
            inner,
            shutdown,
        })
    }

    /// Stop the daemon's loops.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// The daemon's introspection surface is the same trait the router and
/// the `Machine` facade implement: tests and tools speak one
/// vocabulary, whichever layer they hold.
impl DirectoryInspect for Daemon {
    fn replicated_peers(&self) -> Vec<u32> {
        lock(&self.inner.router).replicated_peers()
    }

    fn replica_bits(&self, peer: u32) -> Option<BitVec> {
        lock(&self.inner.router).replica_bits(peer)
    }

    fn published_bits(&self) -> Option<BitVec> {
        lock(&self.inner.router).published_bits()
    }

    /// Documents currently cached, summed across the stripes (the
    /// stripes are the ground truth; the router's ledger count lags by
    /// whatever events are still in flight).
    fn cached_docs(&self) -> u64 {
        self.inner.cache.len() as u64
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Feed one batch of received datagrams through the router under a
/// single lock hold, queuing the decided sends for the egress thread.
/// Replica-snapshot publication is flushed once per batch (still under
/// the lock), so N delta datagrams in the batch share one snapshot
/// merge and at most one copy-on-write per touched filter.
fn handle_batch(inner: &Arc<Inner>, batch: &mut Vec<Ingress>, outputs: &mut Vec<Output>) {
    let mut router = lock(&inner.router);
    for item in batch.drain(..) {
        let from_peer = inner.peer_of_addr.get(&item.from).copied();
        router.handle_into(
            now(inner),
            Event::Datagram {
                from: from_peer,
                data: &item.data,
            },
            &CacheView(&inner.cache),
            outputs,
        );
        apply_outputs(inner, Some(item.from), outputs);
    }
    router.flush_replicas();
    drop(router);
}

/// Carry out a batch of router outputs: encode the sends once, decide
/// fault-injection drops, and queue the survivors for the egress
/// thread; apply the journal/metric effects inline.
///
/// Callers keep the router lock held across this call whenever the
/// batch may contain update datagrams: sequence allocation and *queue*
/// order must agree, or two concurrent publishes interleave and every
/// receiver sees a phantom gap (the egress queue then preserves that
/// order on the wire). Queuing parks only when the bounded egress
/// queue is full — back-pressure from the socket, by design.
fn apply_outputs(inner: &Inner, sender_addr: Option<SocketAddr>, outputs: &mut Vec<Output>) {
    for output in outputs.drain(..) {
        match output {
            Output::Send(send) => {
                let Ok(bytes) = send.msg.encode(inner.cfg.id()) else {
                    continue; // oversized full bitmap: skip (documented limit)
                };
                let bytes = Arc::new(bytes);
                let targets: Vec<(Option<u32>, SocketAddr)> = match send.to {
                    Dest::Peer(id) => match inner.peers_by_id.get(&id) {
                        Some(p) => vec![(Some(id), p.icp)],
                        None => continue,
                    },
                    Dest::AllPeers => inner
                        .cfg
                        .peers()
                        .iter()
                        .map(|p| (Some(p.id), p.icp))
                        .collect(),
                    Dest::Sender => match sender_addr {
                        Some(addr) => vec![(inner.peer_of_addr.get(&addr).copied(), addr)],
                        None => continue,
                    },
                };
                for (peer, addr) in targets {
                    if send.kind.is_update() && drop_update(inner) {
                        continue; // injected loss: the datagram never leaves
                    }
                    let item = Egress {
                        bytes: bytes.clone(),
                        addr,
                        peer,
                        kind: send.kind,
                    };
                    let _ = inner.egress.send(item);
                }
            }
            Output::Effect(effect) => apply_effect(inner, effect),
        }
    }
}

/// Put one queued datagram on the wire and account it (egress thread).
/// A failed send is not accounted, exactly as when the protocol path
/// transmitted inline.
fn transmit(inner: &Inner, item: Egress) {
    let Egress {
        bytes,
        addr,
        peer,
        kind,
    } = item;
    if inner.udp.send_to(&bytes, addr).is_err() {
        return;
    }
    match kind {
        SendKind::QueryReply | SendKind::Keepalive => {
            inner.stats.udp_out_to(peer, bytes.len());
        }
        SendKind::UpdateDelta => {
            inner.stats.udp_out_to(peer, bytes.len());
            inner.stats.updates_sent.incr();
            inner.stats.update_delta_bytes.record(bytes.len() as u64);
        }
        SendKind::UpdateFull => {
            inner.stats.udp_out_to(peer, bytes.len());
            inner.stats.updates_sent.incr();
            inner.stats.update_full_bytes.record(bytes.len() as u64);
        }
        SendKind::Resync {
            peer: publisher,
            last_generation,
        } => {
            inner.stats.udp_out_to(Some(publisher), bytes.len());
            inner.stats.resync_requests.incr();
            inner.stats.journal().record(
                EventKind::ResyncRequested,
                Some(publisher),
                format!("last seen gen {last_generation}"),
            );
        }
    }
}

/// Apply one router effect to the sc-obs registry (and, for ICP
/// replies, the waiting-request table).
fn apply_effect(inner: &Inner, effect: Effect) {
    match effect {
        Effect::UpdateReceived => inner.stats.updates_received.incr(),
        Effect::QueryServed => inner.stats.icp_queries_served.incr(),
        Effect::ReplicaInstalled {
            peer,
            first_contact,
            generation,
            seq,
            bits,
        } => {
            inner.stats.replica_resyncs.incr();
            inner.stats.journal().record(
                if first_contact {
                    EventKind::PeerSummaryInstalled
                } else {
                    EventKind::ReplicaResynced
                },
                Some(peer),
                format!("gen {generation} seq {seq}, {bits} bits"),
            );
        }
        Effect::UpdateGap {
            peer,
            got_generation,
            got_seq,
            expected_generation,
            expected_seq,
        } => {
            inner.stats.update_gaps.incr();
            inner.stats.journal().record(
                EventKind::UpdateGap,
                Some(peer),
                format!(
                    "got gen {got_generation} seq {got_seq}, expected gen {expected_generation} seq {expected_seq}"
                ),
            );
        }
        Effect::PeerFailed { peer } => {
            inner.stats.peer_failures.incr();
            inner
                .stats
                .journal()
                .record(EventKind::PeerFailed, Some(peer), "summary replica dropped");
        }
        Effect::PeerRecovered { peer } => {
            inner.stats.peer_recoveries.incr();
            inner.stats.journal().record(
                EventKind::PeerRecovered,
                Some(peer),
                "bitmap re-sent, resync requested",
            );
        }
        Effect::Published {
            flips,
            staleness,
            messages,
        } => {
            // Full-versus-delta is now a per-peer-lane decision made at
            // fan-out service time (the §V-D cost rule per lane), so a
            // publish journals the batched flips; full restatements
            // show up as `UpdateFull` sends in the per-peer counters.
            inner.stats.summary_publishes.incr();
            inner.stats.summary_staleness.set(staleness);
            inner.stats.journal().record(
                EventKind::DeltaPublished,
                None,
                format!("staleness {staleness:.4}, {flips} flip(s), {messages} message(s)"),
            );
        }
        Effect::ReplyReceived {
            request_number,
            hit_from,
            replier,
        } => dispatch_reply(inner, request_number, hit_from, replier),
    }
}

/// Serve one TCP connection (keep-alive, sequential requests).
fn serve_tcp(inner: Arc<Inner>, mut stream: TcpStream) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        let req = loop {
            match http::parse_request(&buf) {
                Ok(http::Parse::Done { value, consumed }) => {
                    inner.stats.tcp_in(consumed);
                    buf.drain(..consumed);
                    break value;
                }
                Ok(http::Parse::NeedMore) => {
                    let mut chunk = [0u8; 4096];
                    let n = stream.read(&mut chunk)?;
                    if n == 0 {
                        return Ok(());
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(_) => {
                    respond_empty(&inner, &mut stream, 400, "Bad Request")?;
                    return Ok(());
                }
            }
        };
        let peer_fetch = http::header(&req.headers, "x-peer-fetch").is_some();
        if peer_fetch {
            serve_peer_fetch(&inner, &mut stream, &req)?;
        } else {
            serve_client(&inner, &mut stream, &req)?;
        }
    }
}

fn respond_empty(
    inner: &Inner,
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
) -> std::io::Result<()> {
    let head = http::build_response(status, reason, &[("Content-Length", "0")]);
    inner.stats.tcp_out(head.len());
    stream.write_all(head.as_bytes())
}

/// A neighbour asks for a document we advertised: serve from cache only.
fn serve_peer_fetch(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &http::Request,
) -> std::io::Result<()> {
    // sc-check: allow(hash_once) — entry point: a peer fetch is its own
    // request, keyed once here.
    let key = UrlKey::new(req.target.as_bytes());
    let cached = lock(inner.cache.stripe(&key)).peek(&req.target);
    match cached {
        Some(meta) => {
            let head = http::build_response(
                200,
                "OK",
                &[
                    ("Content-Length", &meta.size.to_string()),
                    ("X-Doc-LM", &meta.last_modified.to_string()),
                ],
            );
            inner.stats.tcp_out(head.len() + meta.size as usize);
            stream.write_all(head.as_bytes())?;
            write_body(stream, meta.size)
        }
        None => respond_empty(inner, stream, 404, "Not Found"),
    }
}

/// The full client-request path: local cache, then mode-dependent
/// cooperation, then origin; store; reply. Runs on this thread's warm
/// [`RequestScratch`]: a steady-state request reuses the key, the
/// candidate buffer, and the router-output sink instead of allocating.
fn serve_client(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &http::Request,
) -> std::io::Result<()> {
    with_scratch(|scratch| serve_client_on(inner, stream, req, scratch))
}

fn serve_client_on(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &http::Request,
    scratch: &mut RequestScratch,
) -> std::io::Result<()> {
    let t0 = Instant::now();
    inner.stats.http_requests.incr();
    let url = req.target.as_str();
    // THE digest of this request: the URL is hashed exactly once here
    // (into the warm scratch key) and threads through stripe selection,
    // summary probing, the purge/store ledger events, and the shard
    // partition. sc-check: allow(hash_once) — this is that one
    // sanctioned digest.
    scratch.key.reset(url.as_bytes());
    let want = DocMeta {
        size: http::header(&req.headers, "x-doc-size")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1024),
        last_modified: http::header(&req.headers, "x-doc-lm")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    };

    // 1. Local cache (the stripe owning this URL).
    let lookup = lock(inner.cache.stripe(&scratch.key)).lookup(&req.target, want);
    match lookup {
        Lookup::Hit => {
            inner.stats.local_hits.incr();
            reply_doc(inner, stream, want)?;
            finish_request(inner, t0, scratch);
            return Ok(());
        }
        Lookup::StaleHit => {
            // Purged by lookup(); keep the summary in sync.
            let mut router = lock(&inner.router);
            router.handle_into(
                now(inner),
                Event::Purged { url: &scratch.key },
                &CacheView(&inner.cache),
                &mut scratch.outputs,
            );
            apply_outputs(inner, None, &mut scratch.outputs);
            router.flush_replicas();
        }
        Lookup::Miss => {}
    }

    // 2. Cooperation.
    let fetched = match inner.cfg.mode() {
        Mode::NoIcp => None,
        Mode::Icp => {
            // Query only peers not currently marked failed: a dead peer
            // cannot answer, and every query to it makes an all-miss
            // round wait out the full icp_timeout_ms.
            let live = lock(&inner.router).live_peers();
            query_then_fetch(inner, url, want, &live)
        }
        Mode::SummaryCache { .. } => {
            // Probe every installed peer-summary replica via the
            // lock-free snapshot cell: the request's one UrlKey is
            // tested against each replica's memoized index set, with no
            // router-lock acquisition (and no allocation — the warm
            // candidate buffer is refilled in place) on this path.
            inner
                .replicas
                .load()
                .candidates_key_into(&scratch.key, &mut scratch.candidates);
            let candidates = &scratch.candidates;
            if candidates.is_empty() {
                None
            } else {
                let got = query_then_fetch(inner, url, want, candidates);
                if got.is_none() {
                    // Summary pointed somewhere, nobody had a usable copy.
                    inner.stats.false_hits.incr();
                    for id in candidates {
                        if let Some(p) = inner.stats.peer(*id) {
                            p.false_hits.incr();
                            p.update_staleness();
                        }
                    }
                    inner.stats.journal().record(
                        EventKind::FalseHit,
                        candidates.first().copied(),
                        format!("{} candidate(s) for {url}", candidates.len()),
                    );
                }
                got
            }
        }
    };

    // 3. Origin on a full miss.
    let meta = match fetched {
        Some((peer, meta)) => {
            inner.stats.remote_hits.incr();
            if let Some(p) = inner.stats.peer(peer) {
                p.remote_hits.incr();
            }
            inner
                .stats
                .journal()
                .record(EventKind::RemoteHit, Some(peer), url.to_string());
            meta
        }
        None => match fetch_http(inner, inner.cfg.origin(), url, want, false) {
            Ok(Some(meta)) => meta,
            _ => {
                respond_empty(inner, stream, 504, "Gateway Timeout")?;
                finish_request(inner, t0, scratch);
                return Ok(());
            }
        },
    };

    // 4. Store and maintain the summary.
    store_document(inner, url, meta, scratch);

    // 5. Reply.
    reply_doc(inner, stream, meta)?;
    finish_request(inner, t0, scratch);
    Ok(())
}

fn store_document(inner: &Inner, url: &str, meta: DocMeta, scratch: &mut RequestScratch) {
    // Evictions come out of the same stripe the URL goes into — the
    // stripes partition the same key space the directory shards do.
    let evicted = lock(inner.cache.stripe(&scratch.key)).store(url.to_string(), meta);
    if let Some(evicted) = evicted {
        // Victims are *other* URLs the request never digested; their
        // keys are computed here (the request's own URL reuses the
        // scratch key). Evictions are the cold tail of a store, so the
        // victim keys are the one allocation the path keeps.
        let victim_keys: Vec<UrlKey> = evicted
            .iter()
            // sc-check: allow(hash_once) — first digest of each victim.
            .map(|v| UrlKey::new(v.as_bytes()))
            .collect();
        let mut router = lock(&inner.router);
        router.handle_into(
            now(inner),
            Event::Stored {
                url: &scratch.key,
                evicted: &victim_keys,
            },
            &CacheView(&inner.cache),
            &mut scratch.outputs,
        );
        apply_outputs(inner, None, &mut scratch.outputs);
        router.flush_replicas();
    }
}

fn reply_doc(inner: &Inner, stream: &mut TcpStream, meta: DocMeta) -> std::io::Result<()> {
    let head = http::build_response(
        200,
        "OK",
        &[
            ("Content-Length", &meta.size.to_string()),
            ("X-Doc-LM", &meta.last_modified.to_string()),
        ],
    );
    inner.stats.tcp_out(head.len() + meta.size as usize);
    stream.write_all(head.as_bytes())?;
    write_body(stream, meta.size)
}

/// Post-request bookkeeping: latency and (SC mode) update publishing.
/// The router lock is held across the whole publish fan-out so
/// sequence allocation and egress-queue order agree.
fn finish_request(inner: &Inner, t0: Instant, scratch: &mut RequestScratch) {
    inner.stats.latency(t0.elapsed().as_micros() as u64);
    let mut router = lock(&inner.router);
    router.handle_into(
        now(inner),
        Event::RequestDone,
        &CacheView(&inner.cache),
        &mut scratch.outputs,
    );
    apply_outputs(inner, None, &mut scratch.outputs);
    router.flush_replicas();
    drop(router);
}

/// Should this outgoing update datagram be dropped by fault injection?
fn drop_update(inner: &Inner) -> bool {
    let loss = inner.cfg.update_loss();
    loss > 0.0 && lock(&inner.loss_rng).gen_bool(loss)
}

/// Send ICP queries to `peer_ids`; if one answers HIT, fetch the
/// document from it. Returns the serving peer and the fetched metadata
/// when it matches the requested version (a mismatch is a remote stale
/// hit).
fn query_then_fetch(
    inner: &Inner,
    url: &str,
    want: DocMeta,
    peer_ids: &[u32],
) -> Option<(u32, DocMeta)> {
    if peer_ids.is_empty() {
        return None;
    }
    let reqnum = inner.next_reqnum.fetch_add(1, Ordering::Relaxed);
    let query = IcpMessage::Query {
        request_number: reqnum,
        requester: inner.cfg.id(),
        url: url.to_string(),
    };
    // An oversized URL cannot be queried; treat it as a miss everywhere
    // rather than taking the daemon down.
    let bytes = query.encode(inner.cfg.id()).ok()?;
    let (tx, rx) = std::sync::mpsc::sync_channel(1);
    {
        // Hold the pending-table lock across the send loop so
        // `outstanding` counts exactly the queries that actually left
        // (a peer missing from the table, or a failed send, must not
        // leave a reply slot nobody will ever fill — that made every
        // all-miss round wait out the full icp_timeout_ms). Replies
        // cannot race in while the lock is held. The inline sends are
        // deliberate: a UDP send_to never parks the thread, and routing
        // them through the egress queue would decouple `outstanding`
        // from what actually left the socket.
        let mut pending = lock(&inner.pending);
        pending.insert(
            reqnum,
            Pending {
                outstanding: 0,
                hit: None,
                done: Some(tx),
                sent_at: Instant::now(),
            },
        );
        let mut sent = 0usize;
        for id in peer_ids {
            if let Some(peer) = inner.peers_by_id.get(id) {
                // sc-check: allow(locks) — non-parking UDP send; see above.
                if inner.udp.send_to(&bytes, peer.icp).is_ok() {
                    sent += 1;
                    inner.stats.udp_out_to(Some(*id), bytes.len());
                    inner.stats.icp_queries_sent.incr();
                    if let Some(p) = inner.stats.peer(*id) {
                        p.queries_sent.incr();
                        p.update_staleness();
                    }
                }
            }
        }
        if sent == 0 {
            // Nothing left the socket: a miss everywhere, immediately.
            pending.remove(&reqnum);
            return None;
        }
        if let Some(p) = pending.get_mut(&reqnum) {
            p.outstanding = sent;
        }
    }
    let winner = rx
        .recv_timeout(Duration::from_millis(inner.cfg.icp_timeout_ms()))
        .ok()
        .flatten();
    lock(&inner.pending).remove(&reqnum);

    let winner = winner?;
    let peer = inner.peers_by_id.get(&winner)?;
    match fetch_http(inner, peer.http, url, want, true) {
        Ok(Some(meta)) if meta == want => {
            if let Some(p) = inner.stats.peer(winner) {
                p.tcp_bytes_fetched.add(meta.size);
            }
            Some((winner, meta))
        }
        Ok(Some(_)) | Ok(None) => {
            // Copy exists but is the wrong version, or vanished between
            // the ICP reply and the fetch.
            inner.stats.remote_stale_hits.incr();
            if let Some(p) = inner.stats.peer(winner) {
                p.stale_hits.incr();
            }
            inner
                .stats
                .journal()
                .record(EventKind::RemoteStaleHit, Some(winner), url.to_string());
            None
        }
        Err(_) => None,
    }
}

/// GET `url` from `addr` (peer or origin), draining the body. Returns
/// the document metadata or `None` on 404.
fn fetch_http(
    inner: &Inner,
    addr: SocketAddr,
    url: &str,
    want: DocMeta,
    peer: bool,
) -> std::io::Result<Option<DocMeta>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let size = want.size.to_string();
    let lm = want.last_modified.to_string();
    let mut headers: Vec<(&str, &str)> = vec![("X-Doc-Size", &size), ("X-Doc-LM", &lm)];
    if peer {
        headers.push(("X-Peer-Fetch", "1"));
    }
    let head = http::build_request(url, &headers);
    inner.stats.tcp_out(head.len());
    stream.write_all(head.as_bytes())?;

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let resp = loop {
        match http::parse_response(&buf) {
            Ok(http::Parse::Done { value, consumed }) => {
                buf.drain(..consumed);
                break value;
            }
            Ok(http::Parse::NeedMore) => {
                let mut chunk = [0u8; 16 * 1024];
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "closed before response head",
                    ));
                }
                inner.stats.tcp_in(n);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
        }
    };
    let len = http::content_length(&resp.headers).unwrap_or(0);
    let already = buf.len() as u64;
    if already < len {
        let mut counted = CountingReader {
            inner: &mut stream,
            stats: &inner.stats,
        };
        drain_body(&mut counted, len - already)?;
    }
    if resp.status == 404 {
        return Ok(None);
    }
    let lm_out = http::header(&resp.headers, "x-doc-lm")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    Ok(Some(DocMeta {
        size: len,
        last_modified: lm_out,
    }))
}

/// Read adapter that counts bytes into the proxy's TCP counters.
struct CountingReader<'a> {
    inner: &'a mut TcpStream,
    stats: &'a ProxyStats,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.stats.tcp_in(n);
        Ok(n)
    }
}

/// Route an ICP reply to the waiting query, completing it on the first
/// HIT or once every peer has answered. `replier` (when the source
/// address maps to a known peer) gets the round trip recorded into its
/// RTT histogram.
fn dispatch_reply(inner: &Inner, reqnum: u32, hit_from: Option<u32>, replier: Option<u32>) {
    let mut pending = lock(&inner.pending);
    let Some(p) = pending.get_mut(&reqnum) else {
        return; // late reply after timeout
    };
    if let Some(ps) = replier.and_then(|id| inner.stats.peer(id)) {
        ps.icp_rtt_us.record(p.sent_at.elapsed().as_micros() as u64);
    }
    p.outstanding = p.outstanding.saturating_sub(1);
    if let Some(id) = hit_from {
        p.hit = Some(id);
    }
    if p.hit.is_some() || p.outstanding == 0 {
        if let Some(done) = p.done.take() {
            let _ = done.try_send(p.hit);
        }
        pending.remove(&reqnum);
    }
}

/// A generation identifier that is, with overwhelming probability,
/// different from the one any previous incarnation of this daemon
/// used: peers compare it to detect a restart and resync rather than
/// applying deltas to a replica of the old lifetime's bitmap.
fn fresh_generation(id: u32) -> u32 {
    static SALT: AtomicU32 = AtomicU32::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let mixed = nanos ^ ((id as u64) << 40) ^ ((SALT.fetch_add(1, Ordering::Relaxed) as u64) << 52);
    ((mixed ^ (mixed >> 32)) as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    // server_of / flips-chunking tests moved to crate::machine with the
    // logic they exercise.

    #[test]
    fn fresh_generations_differ_between_incarnations() {
        let a = fresh_generation(7);
        let b = fresh_generation(7);
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        // The salt alone guarantees consecutive calls differ even within
        // one nanosecond tick.
        assert_ne!(a, b);
    }

    #[test]
    fn cache_stripes_partition_and_count() {
        let stripes = CacheStripes::new(1 << 20, 4);
        let urls: Vec<String> = (0..32).map(|i| format!("http://s/{i}")).collect();
        let meta = DocMeta {
            size: 100,
            last_modified: 1,
        };
        for url in &urls {
            let key = UrlKey::new(url.as_bytes());
            lock(stripes.stripe(&key)).store(url.clone(), meta);
        }
        assert_eq!(stripes.len(), urls.len());
        for url in &urls {
            let key = UrlKey::new(url.as_bytes());
            assert!(
                lock(stripes.stripe(&key)).contains(url),
                "{url} on its stripe"
            );
        }
        let used = stripes
            .stripes
            .iter()
            .filter(|s| lock(s).len() > 0)
            .count();
        assert!(used > 1, "32 URLs spread over >1 of 4 stripes");
    }
}
