//! The proxy daemon: HTTP front end, document cache, ICP endpoint, and
//! the summary-cache machinery of Section VI-B.
//!
//! Since the sans-I/O refactor, every protocol *decision* lives in
//! [`crate::machine`]: the daemon is a thin I/O shell that feeds the
//! [`Machine`] real datagrams, real timer ticks, and real cache events,
//! then carries out the sends and journal/metric effects it returns.
//! The deterministic [`crate::simnet`] harness drives the very same
//! machine from a virtual clock, so a simulation schedule is a faithful
//! protocol schedule.
//!
//! One daemon = a small thread group sharing an internal state block:
//!
//! * a TCP accept loop serving clients (and peers fetching remote hits),
//!   one thread per connection;
//! * a UDP loop speaking ICP: each datagram becomes an
//!   [`Event::Datagram`] fed to the machine;
//! * a keep-alive thread whose period becomes [`Event::Tick`]
//!   (SECHO pings, failure sweep, anti-entropy heartbeat);
//! * an admin TCP endpoint ([`crate::admin`]) exposing the sc-obs
//!   registry every counter below lives in.
//!
//! The cache stores document *metadata*; bodies are synthesized at the
//! sizes recorded, which preserves every quantity the experiments
//! measure (message counts, byte counts, CPU, latency).
//!
//! Everything here is plain `std`: `std::net` sockets, `std::thread`,
//! `std::sync` — the workspace's dependency firewall (`sc-check`) keeps
//! it that way.

use crate::config::{Mode, PeerAddr, ProxyConfig};
use crate::machine::{
    Dest, DirectoryView, Effect, Event, Machine, Output, SendKind, VirtualTime,
};
use crate::origin::{drain_body, write_body, ACCEPT_POLL};
use crate::replica::ReplicaCell;
use crate::stats::ProxyStats;
use sc_bloom::BitVec;
use sc_cache::{DocMeta, Lookup, WebCache};
use sc_obs::EventKind;
use sc_util::fxhash::FxHashMap;
use sc_util::Rng;
use sc_wire::http;
use sc_wire::icp::IcpMessage;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use summary_cache_core::{ProxySummary, SummaryKind, UrlKey};

/// How long the UDP loop blocks per receive before re-checking shutdown.
const UDP_POLL: Duration = Duration::from_millis(50);

/// Lock a mutex, tolerating poisoning: a panicking connection thread
/// must not wedge the whole daemon, and every structure guarded here is
/// consistent after each individual operation.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running proxy daemon.
pub struct Daemon {
    /// This proxy's id.
    pub id: u32,
    /// Bound HTTP address.
    pub http_addr: SocketAddr,
    /// Bound ICP (UDP) address.
    pub icp_addr: SocketAddr,
    /// Bound admin/observability address ([`crate::admin`]).
    pub admin_addr: SocketAddr,
    /// Live counters.
    pub stats: Arc<ProxyStats>,
    inner: Arc<Inner>,
    shutdown: Arc<AtomicBool>,
}

/// An outstanding ICP query awaiting replies.
struct Pending {
    outstanding: usize,
    hit: Option<u32>,
    done: Option<SyncSender<Option<u32>>>,
    /// When the queries left, for per-peer RTT histograms.
    sent_at: Instant,
}

struct Inner {
    cfg: ProxyConfig,
    stats: Arc<ProxyStats>,
    cache: Mutex<WebCache<String>>,
    /// The sans-I/O protocol machine — all replication/ICP decisions.
    machine: Mutex<Machine>,
    /// Lock-free read path: the machine publishes replica snapshots
    /// here; SC-mode candidate selection reads them without touching
    /// the machine lock.
    replicas: Arc<ReplicaCell>,
    /// Wall-clock origin of the machine's [`VirtualTime`] axis.
    epoch: Instant,
    /// Fault injection: decides which outgoing update datagrams the
    /// [`ProxyConfig::update_loss`] knob silently drops.
    loss_rng: Mutex<Rng>,
    /// ICP source address -> peer id, for dispatching replies.
    peer_of_addr: FxHashMap<SocketAddr, u32>,
    peers_by_id: FxHashMap<u32, PeerAddr>,
    pending: Mutex<FxHashMap<u32, Pending>>,
    udp: UdpSocket,
    next_reqnum: AtomicU32,
}

/// The machine's query-answering view over the real document cache.
struct CacheView<'a>(&'a Mutex<WebCache<String>>);

impl DirectoryView for CacheView<'_> {
    fn contains(&self, url: &str) -> bool {
        lock(self.0).contains(&url.to_string())
    }
}

/// The current position on the machine's virtual clock: microseconds of
/// real time since the daemon started.
fn now(inner: &Inner) -> VirtualTime {
    VirtualTime::from_micros(inner.epoch.elapsed().as_micros() as u64)
}

impl Daemon {
    /// Bind ephemeral loopback sockets and start the daemon.
    ///
    /// For clusters, bind the sockets first (so every daemon can know
    /// every peer's address up front) and use [`Daemon::spawn_on`].
    pub fn spawn(cfg: ProxyConfig) -> std::io::Result<Daemon> {
        let loopback = SocketAddr::from(([127, 0, 0, 1], 0));
        let listener = TcpListener::bind(loopback)?;
        let udp = UdpSocket::bind(loopback)?;
        Self::spawn_on(cfg, listener, udp)
    }

    /// Start the daemon on pre-bound sockets. The daemon is ready to
    /// serve (including its admin endpoint) as soon as this returns.
    pub fn spawn_on(
        cfg: ProxyConfig,
        listener: TcpListener,
        udp: UdpSocket,
    ) -> std::io::Result<Daemon> {
        let http_addr = listener.local_addr()?;
        let icp_addr = udp.local_addr()?;
        let peer_ids: Vec<u32> = cfg.peers().iter().map(|p| p.id).collect();
        let stats = Arc::new(ProxyStats::with_peers(&peer_ids));

        let sc = match *cfg.mode() {
            Mode::SummaryCache {
                load_factor,
                hashes,
                policy,
            } => {
                let kind = SummaryKind::Bloom {
                    load_factor,
                    hashes,
                };
                let mut summary = ProxySummary::with_expected_docs(kind, cfg.expected_docs());
                // Generation freshness is the shell's job: the machine
                // never touches the wall clock.
                summary.set_generation(fresh_generation(cfg.id()));
                Some((summary, policy))
            }
            _ => None,
        };
        let machine = Machine::new(
            cfg.id(),
            peer_ids,
            cfg.keepalive_ms(),
            sc,
            VirtualTime::ZERO,
        );

        let replicas = machine.replica_cell();
        let inner = Arc::new(Inner {
            stats: stats.clone(),
            cache: Mutex::new(WebCache::new(cfg.cache_bytes())),
            machine: Mutex::new(machine),
            replicas,
            epoch: Instant::now(),
            peer_of_addr: cfg.peers().iter().map(|p| (p.icp, p.id)).collect(),
            peers_by_id: cfg.peers().iter().map(|p| (p.id, *p)).collect(),
            pending: Mutex::new(FxHashMap::default()),
            loss_rng: Mutex::new(Rng::seed_from_u64(
                0x5C_1C_F0_0D ^ ((cfg.id() as u64) << 32),
            )),
            udp,
            next_reqnum: AtomicU32::new(1),
            cfg,
        });

        let shutdown = Arc::new(AtomicBool::new(false));

        // Admin/observability endpoint (its traffic is deliberately NOT
        // counted into the TCP byte counters the tables report).
        let admin_listener = TcpListener::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
        let admin_addr = admin_listener.local_addr()?;
        crate::admin::serve(admin_listener, stats.clone(), shutdown.clone())?;

        // TCP accept loop.
        {
            let inner = inner.clone();
            let stop = shutdown.clone();
            listener.set_nonblocking(true)?;
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Request/response exchanges are small; Nagle
                            // + delayed ACK would add ~40 ms per turn.
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_nonblocking(false);
                            let inner = inner.clone();
                            std::thread::spawn(move || {
                                let _ = serve_tcp(inner, stream);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => break,
                    }
                }
            });
        }

        // UDP (ICP) loop: datagram in -> machine -> sends/effects out.
        {
            let inner = inner.clone();
            let stop = shutdown.clone();
            inner.udp.set_read_timeout(Some(UDP_POLL))?;
            std::thread::spawn(move || {
                let mut buf = vec![0u8; 65536];
                while !stop.load(Ordering::Relaxed) {
                    match inner.udp.recv_from(&mut buf) {
                        Ok((n, from)) => {
                            handle_datagram(&inner, &buf[..n], from);
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) => {}
                        Err(_) => break,
                    }
                }
            });
        }

        // Keep-alive ticks (all modes; the paper's no-ICP baseline
        // traffic). The machine turns each tick into SECHO pings, the
        // failure sweep, and (SC mode) the anti-entropy heartbeat.
        if inner.cfg.keepalive_ms() > 0 && !inner.cfg.peers().is_empty() {
            let inner = inner.clone();
            let stop = shutdown.clone();
            std::thread::spawn(move || {
                let period = Duration::from_millis(inner.cfg.keepalive_ms());
                loop {
                    // Sleep one period, but notice shutdown within 50 ms.
                    let mut slept = Duration::ZERO;
                    while slept < period {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let step = (period - slept).min(Duration::from_millis(50));
                        std::thread::sleep(step);
                        slept += step;
                    }
                    let mut machine = lock(&inner.machine);
                    let outputs = machine.handle(now(&inner), Event::Tick, &CacheView(&inner.cache));
                    apply_outputs(&inner, None, outputs);
                    drop(machine);
                }
            });
        }

        Ok(Daemon {
            id: inner.cfg.id(),
            http_addr,
            icp_addr,
            admin_addr,
            stats,
            inner,
            shutdown,
        })
    }

    /// Number of documents currently cached.
    pub fn cached_docs(&self) -> usize {
        lock(&self.inner.cache).len()
    }

    /// Peer ids whose summary replicas are currently installed (i.e.
    /// synced — a bitmap has arrived and no gap has discarded it).
    pub fn replicated_peers(&self) -> Vec<u32> {
        lock(&self.inner.machine).replicated_peers()
    }

    /// The bit array of the installed replica of `peer`, if synced.
    pub fn replica_bits(&self, peer: u32) -> Option<BitVec> {
        lock(&self.inner.machine).replica_bits(peer)
    }

    /// This daemon's own *published* summary bit array (SC mode only) —
    /// what every in-sync peer replica of this daemon must equal.
    pub fn published_bits(&self) -> Option<BitVec> {
        lock(&self.inner.machine).published_bits()
    }

    /// Stop the daemon's loops.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Carry out a batch of machine outputs: encode and transmit the sends
/// (with per-kind accounting and the update-loss fault knob) and apply
/// the journal/metric effects.
///
/// Callers keep the machine lock held across this call whenever the
/// batch may contain update datagrams: sequence allocation and send
/// order must agree, or two concurrent publishes interleave on the wire
/// and every receiver sees a phantom gap.
fn apply_outputs(inner: &Inner, sender_addr: Option<SocketAddr>, outputs: Vec<Output>) {
    for output in outputs {
        match output {
            Output::Send(send) => {
                let Ok(bytes) = send.msg.encode(inner.cfg.id()) else {
                    continue; // oversized full bitmap: skip (documented limit)
                };
                let targets: Vec<(Option<u32>, SocketAddr)> = match send.to {
                    Dest::Peer(id) => match inner.peers_by_id.get(&id) {
                        Some(p) => vec![(Some(id), p.icp)],
                        None => continue,
                    },
                    Dest::AllPeers => inner
                        .cfg
                        .peers()
                        .iter()
                        .map(|p| (Some(p.id), p.icp))
                        .collect(),
                    Dest::Sender => match sender_addr {
                        Some(addr) => vec![(inner.peer_of_addr.get(&addr).copied(), addr)],
                        None => continue,
                    },
                };
                for (peer, addr) in targets {
                    if send.kind.is_update() && drop_update(inner) {
                        continue; // injected loss: the datagram never leaves
                    }
                    if inner.udp.send_to(&bytes, addr).is_err() {
                        continue;
                    }
                    match send.kind {
                        SendKind::QueryReply | SendKind::Keepalive => {
                            inner.stats.udp_out_to(peer, bytes.len());
                        }
                        SendKind::UpdateDelta => {
                            inner.stats.udp_out_to(peer, bytes.len());
                            inner.stats.updates_sent.incr();
                            inner.stats.update_delta_bytes.record(bytes.len() as u64);
                        }
                        SendKind::UpdateFull => {
                            inner.stats.udp_out_to(peer, bytes.len());
                            inner.stats.updates_sent.incr();
                            inner.stats.update_full_bytes.record(bytes.len() as u64);
                        }
                        SendKind::Resync {
                            peer: publisher,
                            last_generation,
                        } => {
                            inner.stats.udp_out_to(Some(publisher), bytes.len());
                            inner.stats.resync_requests.incr();
                            inner.stats.journal().record(
                                EventKind::ResyncRequested,
                                Some(publisher),
                                format!("last seen gen {last_generation}"),
                            );
                        }
                    }
                }
            }
            Output::Effect(effect) => apply_effect(inner, effect),
        }
    }
}

/// Apply one machine effect to the sc-obs registry (and, for ICP
/// replies, the waiting-request table).
fn apply_effect(inner: &Inner, effect: Effect) {
    match effect {
        Effect::UpdateReceived => inner.stats.updates_received.incr(),
        Effect::QueryServed => inner.stats.icp_queries_served.incr(),
        Effect::ReplicaInstalled {
            peer,
            first_contact,
            generation,
            seq,
            bits,
        } => {
            inner.stats.replica_resyncs.incr();
            inner.stats.journal().record(
                if first_contact {
                    EventKind::PeerSummaryInstalled
                } else {
                    EventKind::ReplicaResynced
                },
                Some(peer),
                format!("gen {generation} seq {seq}, {bits} bits"),
            );
        }
        Effect::UpdateGap {
            peer,
            got_generation,
            got_seq,
            expected_generation,
            expected_seq,
        } => {
            inner.stats.update_gaps.incr();
            inner.stats.journal().record(
                EventKind::UpdateGap,
                Some(peer),
                format!(
                    "got gen {got_generation} seq {got_seq}, expected gen {expected_generation} seq {expected_seq}"
                ),
            );
        }
        Effect::PeerFailed { peer } => {
            inner.stats.peer_failures.incr();
            inner
                .stats
                .journal()
                .record(EventKind::PeerFailed, Some(peer), "summary replica dropped");
        }
        Effect::PeerRecovered { peer } => {
            inner.stats.peer_recoveries.incr();
            inner.stats.journal().record(
                EventKind::PeerRecovered,
                Some(peer),
                "bitmap re-sent, resync requested",
            );
        }
        Effect::Published {
            full_bitmap,
            staleness,
            messages,
            seq,
        } => {
            inner.stats.summary_publishes.incr();
            inner.stats.summary_staleness.set(staleness);
            inner.stats.journal().record(
                if full_bitmap {
                    EventKind::FullBitmapPublished
                } else {
                    EventKind::DeltaPublished
                },
                None,
                format!("staleness {staleness:.4}, {messages} message(s), seq {seq}"),
            );
        }
        Effect::ReplyReceived {
            request_number,
            hit_from,
            replier,
        } => dispatch_reply(inner, request_number, hit_from, replier),
    }
}

/// Serve one TCP connection (keep-alive, sequential requests).
fn serve_tcp(inner: Arc<Inner>, mut stream: TcpStream) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        let req = loop {
            match http::parse_request(&buf) {
                Ok(http::Parse::Done { value, consumed }) => {
                    inner.stats.tcp_in(consumed);
                    buf.drain(..consumed);
                    break value;
                }
                Ok(http::Parse::NeedMore) => {
                    let mut chunk = [0u8; 4096];
                    let n = stream.read(&mut chunk)?;
                    if n == 0 {
                        return Ok(());
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(_) => {
                    respond_empty(&inner, &mut stream, 400, "Bad Request")?;
                    return Ok(());
                }
            }
        };
        let peer_fetch = http::header(&req.headers, "x-peer-fetch").is_some();
        if peer_fetch {
            serve_peer_fetch(&inner, &mut stream, &req)?;
        } else {
            serve_client(&inner, &mut stream, &req)?;
        }
    }
}

fn respond_empty(
    inner: &Inner,
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
) -> std::io::Result<()> {
    let head = http::build_response(status, reason, &[("Content-Length", "0")]);
    inner.stats.tcp_out(head.len());
    stream.write_all(head.as_bytes())
}

/// A neighbour asks for a document we advertised: serve from cache only.
fn serve_peer_fetch(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &http::Request,
) -> std::io::Result<()> {
    let cached = lock(&inner.cache).peek(&req.target);
    match cached {
        Some(meta) => {
            let head = http::build_response(
                200,
                "OK",
                &[
                    ("Content-Length", &meta.size.to_string()),
                    ("X-Doc-LM", &meta.last_modified.to_string()),
                ],
            );
            inner.stats.tcp_out(head.len() + meta.size as usize);
            stream.write_all(head.as_bytes())?;
            write_body(stream, meta.size)
        }
        None => respond_empty(inner, stream, 404, "Not Found"),
    }
}

/// The full client-request path: local cache, then mode-dependent
/// cooperation, then origin; store; reply.
fn serve_client(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &http::Request,
) -> std::io::Result<()> {
    let t0 = Instant::now();
    inner.stats.http_requests.incr();
    let url = req.target.clone();
    let want = DocMeta {
        size: http::header(&req.headers, "x-doc-size")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1024),
        last_modified: http::header(&req.headers, "x-doc-lm")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    };

    // 1. Local cache.
    let lookup = lock(&inner.cache).lookup(&url, want);
    match lookup {
        Lookup::Hit => {
            inner.stats.local_hits.incr();
            reply_doc(inner, stream, want)?;
            finish_request(inner, t0);
            return Ok(());
        }
        Lookup::StaleHit => {
            // Purged by lookup(); keep the summary in sync.
            let mut machine = lock(&inner.machine);
            let outputs =
                machine.handle(now(inner), Event::Purged { url: &url }, &CacheView(&inner.cache));
            apply_outputs(inner, None, outputs);
        }
        Lookup::Miss => {}
    }

    // 2. Cooperation.
    let fetched = match inner.cfg.mode() {
        Mode::NoIcp => None,
        Mode::Icp => {
            // Query only peers not currently marked failed: a dead peer
            // cannot answer, and every query to it makes an all-miss
            // round wait out the full icp_timeout_ms.
            let live = lock(&inner.machine).live_peers();
            query_then_fetch(inner, &url, want, &live)
        }
        Mode::SummaryCache { .. } => {
            // Probe every installed peer-summary replica via the
            // lock-free snapshot cell: the URL is hashed once into a
            // UrlKey and tested against each replica's memoized index
            // set, with no `Mutex<Machine>` acquisition on this path
            // (peers without a synced replica cannot be candidates).
            let ukey = UrlKey::new(url.as_bytes());
            let candidates = inner.replicas.load().candidates_key(&ukey);
            if candidates.is_empty() {
                None
            } else {
                let got = query_then_fetch(inner, &url, want, &candidates);
                if got.is_none() {
                    // Summary pointed somewhere, nobody had a usable copy.
                    inner.stats.false_hits.incr();
                    for id in &candidates {
                        if let Some(p) = inner.stats.peer(*id) {
                            p.false_hits.incr();
                            p.update_staleness();
                        }
                    }
                    inner.stats.journal().record(
                        EventKind::FalseHit,
                        candidates.first().copied(),
                        format!("{} candidate(s) for {url}", candidates.len()),
                    );
                }
                got
            }
        }
    };

    // 3. Origin on a full miss.
    let meta = match fetched {
        Some((peer, meta)) => {
            inner.stats.remote_hits.incr();
            if let Some(p) = inner.stats.peer(peer) {
                p.remote_hits.incr();
            }
            inner
                .stats
                .journal()
                .record(EventKind::RemoteHit, Some(peer), url.clone());
            meta
        }
        None => match fetch_http(inner, inner.cfg.origin(), &url, want, false) {
            Ok(Some(meta)) => meta,
            _ => {
                respond_empty(inner, stream, 504, "Gateway Timeout")?;
                finish_request(inner, t0);
                return Ok(());
            }
        },
    };

    // 4. Store and maintain the summary.
    store_document(inner, &url, meta);

    // 5. Reply.
    reply_doc(inner, stream, meta)?;
    finish_request(inner, t0);
    Ok(())
}

fn store_document(inner: &Inner, url: &str, meta: DocMeta) {
    let evicted = lock(&inner.cache).store(url.to_string(), meta);
    if let Some(evicted) = evicted {
        let mut machine = lock(&inner.machine);
        let outputs = machine.handle(
            now(inner),
            Event::Stored {
                url,
                evicted: &evicted,
            },
            &CacheView(&inner.cache),
        );
        apply_outputs(inner, None, outputs);
    }
}

fn reply_doc(inner: &Inner, stream: &mut TcpStream, meta: DocMeta) -> std::io::Result<()> {
    let head = http::build_response(
        200,
        "OK",
        &[
            ("Content-Length", &meta.size.to_string()),
            ("X-Doc-LM", &meta.last_modified.to_string()),
        ],
    );
    inner.stats.tcp_out(head.len() + meta.size as usize);
    stream.write_all(head.as_bytes())?;
    write_body(stream, meta.size)
}

/// Post-request bookkeeping: latency and (SC mode) update publishing.
/// The machine lock is held across the whole publish fan-out so
/// sequence allocation and send order agree on the wire.
fn finish_request(inner: &Inner, t0: Instant) {
    inner.stats.latency(t0.elapsed().as_micros() as u64);
    let mut machine = lock(&inner.machine);
    let outputs = machine.handle(now(inner), Event::RequestDone, &CacheView(&inner.cache));
    apply_outputs(inner, None, outputs);
    drop(machine);
}

/// Should this outgoing update datagram be dropped by fault injection?
fn drop_update(inner: &Inner) -> bool {
    let loss = inner.cfg.update_loss();
    loss > 0.0 && lock(&inner.loss_rng).gen_bool(loss)
}

/// Send ICP queries to `peer_ids`; if one answers HIT, fetch the
/// document from it. Returns the serving peer and the fetched metadata
/// when it matches the requested version (a mismatch is a remote stale
/// hit).
fn query_then_fetch(
    inner: &Inner,
    url: &str,
    want: DocMeta,
    peer_ids: &[u32],
) -> Option<(u32, DocMeta)> {
    if peer_ids.is_empty() {
        return None;
    }
    let reqnum = inner.next_reqnum.fetch_add(1, Ordering::Relaxed);
    let query = IcpMessage::Query {
        request_number: reqnum,
        requester: inner.cfg.id(),
        url: url.to_string(),
    };
    // An oversized URL cannot be queried; treat it as a miss everywhere
    // rather than taking the daemon down.
    let bytes = query.encode(inner.cfg.id()).ok()?;
    let (tx, rx) = std::sync::mpsc::sync_channel(1);
    {
        // Hold the pending-table lock across the send loop so
        // `outstanding` counts exactly the queries that actually left
        // (a peer missing from the table, or a failed send, must not
        // leave a reply slot nobody will ever fill — that made every
        // all-miss round wait out the full icp_timeout_ms). Replies
        // cannot race in while the lock is held.
        let mut pending = lock(&inner.pending);
        pending.insert(
            reqnum,
            Pending {
                outstanding: 0,
                hit: None,
                done: Some(tx),
                sent_at: Instant::now(),
            },
        );
        let mut sent = 0usize;
        for id in peer_ids {
            if let Some(peer) = inner.peers_by_id.get(id) {
                if inner.udp.send_to(&bytes, peer.icp).is_ok() {
                    sent += 1;
                    inner.stats.udp_out_to(Some(*id), bytes.len());
                    inner.stats.icp_queries_sent.incr();
                    if let Some(p) = inner.stats.peer(*id) {
                        p.queries_sent.incr();
                        p.update_staleness();
                    }
                }
            }
        }
        if sent == 0 {
            // Nothing left the socket: a miss everywhere, immediately.
            pending.remove(&reqnum);
            return None;
        }
        if let Some(p) = pending.get_mut(&reqnum) {
            p.outstanding = sent;
        }
    }
    let winner = rx
        .recv_timeout(Duration::from_millis(inner.cfg.icp_timeout_ms()))
        .ok()
        .flatten();
    lock(&inner.pending).remove(&reqnum);

    let winner = winner?;
    let peer = inner.peers_by_id.get(&winner)?;
    match fetch_http(inner, peer.http, url, want, true) {
        Ok(Some(meta)) if meta == want => {
            if let Some(p) = inner.stats.peer(winner) {
                p.tcp_bytes_fetched.add(meta.size);
            }
            Some((winner, meta))
        }
        Ok(Some(_)) | Ok(None) => {
            // Copy exists but is the wrong version, or vanished between
            // the ICP reply and the fetch.
            inner.stats.remote_stale_hits.incr();
            if let Some(p) = inner.stats.peer(winner) {
                p.stale_hits.incr();
            }
            inner
                .stats
                .journal()
                .record(EventKind::RemoteStaleHit, Some(winner), url.to_string());
            None
        }
        Err(_) => None,
    }
}

/// GET `url` from `addr` (peer or origin), draining the body. Returns
/// the document metadata or `None` on 404.
fn fetch_http(
    inner: &Inner,
    addr: SocketAddr,
    url: &str,
    want: DocMeta,
    peer: bool,
) -> std::io::Result<Option<DocMeta>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let size = want.size.to_string();
    let lm = want.last_modified.to_string();
    let mut headers: Vec<(&str, &str)> = vec![("X-Doc-Size", &size), ("X-Doc-LM", &lm)];
    if peer {
        headers.push(("X-Peer-Fetch", "1"));
    }
    let head = http::build_request(url, &headers);
    inner.stats.tcp_out(head.len());
    stream.write_all(head.as_bytes())?;

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let resp = loop {
        match http::parse_response(&buf) {
            Ok(http::Parse::Done { value, consumed }) => {
                buf.drain(..consumed);
                break value;
            }
            Ok(http::Parse::NeedMore) => {
                let mut chunk = [0u8; 16 * 1024];
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "closed before response head",
                    ));
                }
                inner.stats.tcp_in(n);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
        }
    };
    let len = http::content_length(&resp.headers).unwrap_or(0);
    let already = buf.len() as u64;
    if already < len {
        let mut counted = CountingReader {
            inner: &mut stream,
            stats: &inner.stats,
        };
        drain_body(&mut counted, len - already)?;
    }
    if resp.status == 404 {
        return Ok(None);
    }
    let lm_out = http::header(&resp.headers, "x-doc-lm")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    Ok(Some(DocMeta {
        size: len,
        last_modified: lm_out,
    }))
}

/// Read adapter that counts bytes into the proxy's TCP counters.
struct CountingReader<'a> {
    inner: &'a mut TcpStream,
    stats: &'a ProxyStats,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.stats.tcp_in(n);
        Ok(n)
    }
}

/// Handle one received ICP datagram: account it, feed it to the machine,
/// carry out the resulting sends and effects.
fn handle_datagram(inner: &Arc<Inner>, data: &[u8], from: SocketAddr) {
    let from_peer = inner.peer_of_addr.get(&from).copied();
    inner.stats.udp_in_from(from_peer, data.len());
    let mut machine = lock(&inner.machine);
    let outputs = machine.handle(
        now(inner),
        Event::Datagram {
            from: from_peer,
            data,
        },
        &CacheView(&inner.cache),
    );
    apply_outputs(inner, Some(from), outputs);
    drop(machine);
}

/// Route an ICP reply to the waiting query, completing it on the first
/// HIT or once every peer has answered. `replier` (when the source
/// address maps to a known peer) gets the round trip recorded into its
/// RTT histogram.
fn dispatch_reply(inner: &Inner, reqnum: u32, hit_from: Option<u32>, replier: Option<u32>) {
    let mut pending = lock(&inner.pending);
    let Some(p) = pending.get_mut(&reqnum) else {
        return; // late reply after timeout
    };
    if let Some(ps) = replier.and_then(|id| inner.stats.peer(id)) {
        ps.icp_rtt_us.record(p.sent_at.elapsed().as_micros() as u64);
    }
    p.outstanding = p.outstanding.saturating_sub(1);
    if let Some(id) = hit_from {
        p.hit = Some(id);
    }
    if p.hit.is_some() || p.outstanding == 0 {
        if let Some(done) = p.done.take() {
            let _ = done.try_send(p.hit);
        }
        pending.remove(&reqnum);
    }
}

/// A generation identifier that is, with overwhelming probability,
/// different from the one any previous incarnation of this daemon
/// used: peers compare it to detect a restart and resync rather than
/// applying deltas to a replica of the old lifetime's bitmap.
fn fresh_generation(id: u32) -> u32 {
    static SALT: AtomicU32 = AtomicU32::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let mixed = nanos ^ ((id as u64) << 40) ^ ((SALT.fetch_add(1, Ordering::Relaxed) as u64) << 52);
    ((mixed ^ (mixed >> 32)) as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    // server_of / flips-chunking tests moved to crate::machine with the
    // logic they exercise.

    #[test]
    fn fresh_generations_differ_between_incarnations() {
        let a = fresh_generation(7);
        let b = fresh_generation(7);
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        // The salt alone guarantees consecutive calls differ even within
        // one nanosecond tick.
        assert_ne!(a, b);
    }
}
