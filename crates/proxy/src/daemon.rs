//! The proxy daemon: HTTP front end, document cache, ICP endpoint, and
//! the summary-cache machinery of Section VI-B.
//!
//! One daemon = a small thread group sharing an internal state block:
//!
//! * a TCP accept loop serving clients (and peers fetching remote hits),
//!   one thread per connection;
//! * a UDP loop speaking ICP: answering queries, dispatching replies to
//!   waiting requests, and applying `ICP_OP_DIRUPDATE` / `DIRFULL`
//!   messages to the local replicas of peer summaries;
//! * in SC-ICP mode, a [`ProxySummary`] over the cache directory whose
//!   publishes fan out as UDP updates, exactly as the prototype of
//!   Section VI-B ("an additional bit array is added to the data
//!   structure for each neighbor … initialized when the first summary
//!   update message is received");
//! * an admin TCP endpoint ([`crate::admin`]) exposing the sc-obs
//!   registry every counter below lives in.
//!
//! The cache stores document *metadata*; bodies are synthesized at the
//! sizes recorded, which preserves every quantity the experiments
//! measure (message counts, byte counts, CPU, latency).
//!
//! Everything here is plain `std`: `std::net` sockets, `std::thread`,
//! `std::sync` — the workspace's dependency firewall (`sc-check`) keeps
//! it that way.

use crate::config::{Mode, PeerAddr, ProxyConfig};
use crate::origin::{drain_body, write_body, ACCEPT_POLL};
use crate::stats::ProxyStats;
use sc_bloom::{BitVec, BloomFilter, HashSpec};
use sc_cache::{DocMeta, Lookup, WebCache};
use sc_obs::EventKind;
use sc_util::Rng;
use sc_wire::http;
use sc_wire::icp::{DirContent, DirUpdate, IcpMessage};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use summary_cache_core::{
    filter_candidates, ProxySummary, PublishOutcome, SummaryKind, UpdatePolicy,
};

/// Max bit flips per DIRUPDATE datagram (keeps messages near one MTU,
/// as the prototype "sends updates whenever there are enough changes to
/// fill an IP packet").
const FLIPS_PER_DATAGRAM: usize = 320;

/// How long the UDP loop blocks per receive before re-checking shutdown.
const UDP_POLL: Duration = Duration::from_millis(50);

/// Lock a mutex, tolerating poisoning: a panicking connection thread
/// must not wedge the whole daemon, and every structure guarded here is
/// consistent after each individual operation.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running proxy daemon.
pub struct Daemon {
    /// This proxy's id.
    pub id: u32,
    /// Bound HTTP address.
    pub http_addr: SocketAddr,
    /// Bound ICP (UDP) address.
    pub icp_addr: SocketAddr,
    /// Bound admin/observability address ([`crate::admin`]).
    pub admin_addr: SocketAddr,
    /// Live counters.
    pub stats: Arc<ProxyStats>,
    inner: Arc<Inner>,
    shutdown: Arc<AtomicBool>,
}

/// Summary-cache mode state.
struct ScState {
    summary: ProxySummary,
    policy: UpdatePolicy,
    requests_since_publish: u64,
    last_publish: Instant,
}

/// An outstanding ICP query awaiting replies.
struct Pending {
    outstanding: usize,
    hit: Option<u32>,
    done: Option<SyncSender<Option<u32>>>,
    /// When the queries left, for per-peer RTT histograms.
    sent_at: Instant,
}

struct Inner {
    cfg: ProxyConfig,
    stats: Arc<ProxyStats>,
    cache: Mutex<WebCache<String>>,
    sc: Option<Mutex<ScState>>,
    /// Local replicas of peer summaries and their sequencing state.
    replicas: Mutex<HashMap<u32, ReplicaState>>,
    /// Fault injection: decides which outgoing update datagrams the
    /// [`ProxyConfig::update_loss`] knob silently drops.
    loss_rng: Mutex<Rng>,
    /// ICP source address -> peer id, for dispatching replies.
    peer_of_addr: HashMap<SocketAddr, u32>,
    peers_by_id: HashMap<u32, PeerAddr>,
    pending: Mutex<HashMap<u32, Pending>>,
    /// Liveness per peer: when we last heard any datagram from it, and
    /// whether it is currently considered failed.
    liveness: Mutex<HashMap<u32, PeerLiveness>>,
    udp: UdpSocket,
    next_reqnum: AtomicU32,
}

/// Failure-detection state for one peer (Section VI-B: the prototype
/// "leverages Squid's built-in support to detect failure and recovery
/// of neighbor proxies, and reinitializes a failed neighbor's bit array
/// when it recovers").
struct PeerLiveness {
    last_heard: Instant,
    failed: bool,
}

/// One peer's summary replica and the sequencing state guarding it.
///
/// A replica is only ever *installed* from a full bitmap; delta flips
/// apply only when they carry exactly the expected `(generation, seq)`.
/// Until a bitmap arrives (`filter` is `None`) probes treat the peer as
/// empty — flips are never guessed onto an empty array.
struct ReplicaState {
    /// The installed replica; `None` on first contact or after a
    /// detected gap discarded the previous one.
    filter: Option<BloomFilter>,
    /// Generation of the installed (or last seen) publisher bitmap.
    generation: u32,
    /// Seq the next delta from this peer must carry.
    expected_seq: u32,
    /// When a DIRREQ was last sent, for backoff.
    last_resync_request: Option<Instant>,
}

impl Default for ReplicaState {
    fn default() -> Self {
        ReplicaState {
            filter: None,
            generation: 0,
            expected_seq: 0,
            last_resync_request: None,
        }
    }
}

impl Daemon {
    /// Bind ephemeral loopback sockets and start the daemon.
    ///
    /// For clusters, bind the sockets first (so every daemon can know
    /// every peer's address up front) and use [`Daemon::spawn_on`].
    pub fn spawn(cfg: ProxyConfig) -> std::io::Result<Daemon> {
        let loopback = SocketAddr::from(([127, 0, 0, 1], 0));
        let listener = TcpListener::bind(loopback)?;
        let udp = UdpSocket::bind(loopback)?;
        Self::spawn_on(cfg, listener, udp)
    }

    /// Start the daemon on pre-bound sockets. The daemon is ready to
    /// serve (including its admin endpoint) as soon as this returns.
    pub fn spawn_on(
        cfg: ProxyConfig,
        listener: TcpListener,
        udp: UdpSocket,
    ) -> std::io::Result<Daemon> {
        let http_addr = listener.local_addr()?;
        let icp_addr = udp.local_addr()?;
        let peer_ids: Vec<u32> = cfg.peers().iter().map(|p| p.id).collect();
        let stats = Arc::new(ProxyStats::with_peers(&peer_ids));

        let sc = match *cfg.mode() {
            Mode::SummaryCache {
                load_factor,
                hashes,
                policy,
            } => {
                let kind = SummaryKind::Bloom {
                    load_factor,
                    hashes,
                };
                let mut summary = ProxySummary::with_expected_docs(kind, cfg.expected_docs());
                summary.set_generation(fresh_generation(cfg.id()));
                Some(Mutex::new(ScState {
                    summary,
                    policy,
                    requests_since_publish: 0,
                    last_publish: Instant::now(),
                }))
            }
            _ => None,
        };

        let inner = Arc::new(Inner {
            stats: stats.clone(),
            cache: Mutex::new(WebCache::new(cfg.cache_bytes())),
            sc,
            peer_of_addr: cfg.peers().iter().map(|p| (p.icp, p.id)).collect(),
            peers_by_id: cfg.peers().iter().map(|p| (p.id, *p)).collect(),
            pending: Mutex::new(HashMap::new()),
            liveness: Mutex::new(
                cfg.peers()
                    .iter()
                    .map(|p| {
                        (
                            p.id,
                            PeerLiveness {
                                last_heard: Instant::now(),
                                failed: false,
                            },
                        )
                    })
                    .collect(),
            ),
            replicas: Mutex::new(HashMap::new()),
            loss_rng: Mutex::new(Rng::seed_from_u64(
                0x5C_1C_F0_0D ^ ((cfg.id() as u64) << 32),
            )),
            udp,
            next_reqnum: AtomicU32::new(1),
            cfg,
        });

        let shutdown = Arc::new(AtomicBool::new(false));

        // Admin/observability endpoint (its traffic is deliberately NOT
        // counted into the TCP byte counters the tables report).
        let admin_listener = TcpListener::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
        let admin_addr = admin_listener.local_addr()?;
        crate::admin::serve(admin_listener, stats.clone(), shutdown.clone())?;

        // TCP accept loop.
        {
            let inner = inner.clone();
            let stop = shutdown.clone();
            listener.set_nonblocking(true)?;
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Request/response exchanges are small; Nagle
                            // + delayed ACK would add ~40 ms per turn.
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_nonblocking(false);
                            let inner = inner.clone();
                            std::thread::spawn(move || {
                                let _ = serve_tcp(inner, stream);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => break,
                    }
                }
            });
        }

        // UDP (ICP) loop.
        {
            let inner = inner.clone();
            let stop = shutdown.clone();
            inner.udp.set_read_timeout(Some(UDP_POLL))?;
            std::thread::spawn(move || {
                let mut buf = vec![0u8; 65536];
                while !stop.load(Ordering::Relaxed) {
                    match inner.udp.recv_from(&mut buf) {
                        Ok((n, from)) => {
                            handle_datagram(&inner, &buf[..n], from);
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) => {}
                        Err(_) => break,
                    }
                }
            });
        }

        // Keep-alive pings (all modes; the paper's no-ICP baseline
        // traffic).
        if inner.cfg.keepalive_ms() > 0 && !inner.cfg.peers().is_empty() {
            let inner = inner.clone();
            let stop = shutdown.clone();
            std::thread::spawn(move || {
                let period = Duration::from_millis(inner.cfg.keepalive_ms());
                loop {
                    // Sleep one period, but notice shutdown within 50 ms.
                    let mut slept = Duration::ZERO;
                    while slept < period {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let step = (period - slept).min(Duration::from_millis(50));
                        std::thread::sleep(step);
                        slept += step;
                    }
                    let msg = IcpMessage::Secho {
                        request_number: 0,
                        url: String::new(),
                    };
                    let Ok(bytes) = msg.encode(inner.cfg.id()) else {
                        continue;
                    };
                    for peer in inner.cfg.peers() {
                        if inner.udp.send_to(&bytes, peer.icp).is_ok() {
                            inner.stats.udp_out_to(Some(peer.id), bytes.len());
                        }
                    }
                    sweep_failed_peers(&inner);
                    // SC mode: the keep-alive tick doubles as the
                    // anti-entropy heartbeat (empty delta carrying the
                    // current generation/seq) so a receiver that lost
                    // the tail of the update stream detects the gap.
                    heartbeat_update(&inner);
                }
            });
        }

        Ok(Daemon {
            id: inner.cfg.id(),
            http_addr,
            icp_addr,
            admin_addr,
            stats,
            inner,
            shutdown,
        })
    }

    /// Number of documents currently cached.
    pub fn cached_docs(&self) -> usize {
        lock(&self.inner.cache).len()
    }

    /// Peer ids whose summary replicas are currently installed (i.e.
    /// synced — a bitmap has arrived and no gap has discarded it).
    pub fn replicated_peers(&self) -> Vec<u32> {
        let replicas = lock(&self.inner.replicas);
        let mut ids: Vec<u32> = replicas
            .iter()
            .filter(|(_, st)| st.filter.is_some())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The bit array of the installed replica of `peer`, if synced.
    pub fn replica_bits(&self, peer: u32) -> Option<BitVec> {
        lock(&self.inner.replicas)
            .get(&peer)
            .and_then(|st| st.filter.as_ref())
            .map(|f| f.bits().clone())
    }

    /// This daemon's own *published* summary bit array (SC mode only) —
    /// what every in-sync peer replica of this daemon must equal.
    pub fn published_bits(&self) -> Option<BitVec> {
        let sc = self.inner.sc.as_ref()?;
        let sc = lock(sc);
        match sc.summary.snapshot_published() {
            summary_cache_core::SummarySnapshot::Bloom { bits, .. } => Some(bits),
            _ => None,
        }
    }

    /// Stop the daemon's loops.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one TCP connection (keep-alive, sequential requests).
fn serve_tcp(inner: Arc<Inner>, mut stream: TcpStream) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        let req = loop {
            match http::parse_request(&buf) {
                Ok(http::Parse::Done { value, consumed }) => {
                    inner.stats.tcp_in(consumed);
                    buf.drain(..consumed);
                    break value;
                }
                Ok(http::Parse::NeedMore) => {
                    let mut chunk = [0u8; 4096];
                    let n = stream.read(&mut chunk)?;
                    if n == 0 {
                        return Ok(());
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(_) => {
                    respond_empty(&inner, &mut stream, 400, "Bad Request")?;
                    return Ok(());
                }
            }
        };
        let peer_fetch = http::header(&req.headers, "x-peer-fetch").is_some();
        if peer_fetch {
            serve_peer_fetch(&inner, &mut stream, &req)?;
        } else {
            serve_client(&inner, &mut stream, &req)?;
        }
    }
}

fn respond_empty(
    inner: &Inner,
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
) -> std::io::Result<()> {
    let head = http::build_response(status, reason, &[("Content-Length", "0")]);
    inner.stats.tcp_out(head.len());
    stream.write_all(head.as_bytes())
}

/// A neighbour asks for a document we advertised: serve from cache only.
fn serve_peer_fetch(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &http::Request,
) -> std::io::Result<()> {
    let cached = lock(&inner.cache).peek(&req.target);
    match cached {
        Some(meta) => {
            let head = http::build_response(
                200,
                "OK",
                &[
                    ("Content-Length", &meta.size.to_string()),
                    ("X-Doc-LM", &meta.last_modified.to_string()),
                ],
            );
            inner.stats.tcp_out(head.len() + meta.size as usize);
            stream.write_all(head.as_bytes())?;
            write_body(stream, meta.size)
        }
        None => respond_empty(inner, stream, 404, "Not Found"),
    }
}

/// The full client-request path: local cache, then mode-dependent
/// cooperation, then origin; store; reply.
fn serve_client(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &http::Request,
) -> std::io::Result<()> {
    let t0 = Instant::now();
    inner.stats.http_requests.incr();
    let url = req.target.clone();
    let want = DocMeta {
        size: http::header(&req.headers, "x-doc-size")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1024),
        last_modified: http::header(&req.headers, "x-doc-lm")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    };

    // 1. Local cache.
    let lookup = lock(&inner.cache).lookup(&url, want);
    match lookup {
        Lookup::Hit => {
            inner.stats.local_hits.incr();
            reply_doc(inner, stream, want)?;
            finish_request(inner, t0);
            return Ok(());
        }
        Lookup::StaleHit => {
            // Purged by lookup(); keep the summary in sync.
            if let Some(sc) = &inner.sc {
                lock(sc).summary.remove(url.as_bytes(), server_of(&url));
            }
        }
        Lookup::Miss => {}
    }

    // 2. Cooperation.
    let fetched = match inner.cfg.mode() {
        Mode::NoIcp => None,
        Mode::Icp => {
            // Query only peers not currently marked failed: a dead peer
            // cannot answer, and every query to it makes an all-miss
            // round wait out the full icp_timeout_ms.
            let live: Vec<u32> = {
                let liveness = lock(&inner.liveness);
                inner
                    .cfg
                    .peers()
                    .iter()
                    .filter(|p| liveness.get(&p.id).is_none_or(|l| !l.failed))
                    .map(|p| p.id)
                    .collect()
            };
            query_then_fetch(inner, &url, want, &live)
        }
        Mode::SummaryCache { .. } => {
            // Probe every installed peer-summary replica through the
            // shared SummaryProbe path (peers without a synced replica
            // cannot be candidates).
            let candidates: Vec<u32> = {
                let replicas = lock(&inner.replicas);
                filter_candidates(
                    inner.cfg.peers().iter().filter_map(|p| {
                        replicas
                            .get(&p.id)
                            .and_then(|st| st.filter.as_ref())
                            .map(|f| (p.id, f))
                    }),
                    url.as_bytes(),
                    &[],
                )
            };
            if candidates.is_empty() {
                None
            } else {
                let got = query_then_fetch(inner, &url, want, &candidates);
                if got.is_none() {
                    // Summary pointed somewhere, nobody had a usable copy.
                    inner.stats.false_hits.incr();
                    for id in &candidates {
                        if let Some(p) = inner.stats.peer(*id) {
                            p.false_hits.incr();
                            p.update_staleness();
                        }
                    }
                    inner.stats.journal().record(
                        EventKind::FalseHit,
                        candidates.first().copied(),
                        format!("{} candidate(s) for {url}", candidates.len()),
                    );
                }
                got
            }
        }
    };

    // 3. Origin on a full miss.
    let meta = match fetched {
        Some((peer, meta)) => {
            inner.stats.remote_hits.incr();
            if let Some(p) = inner.stats.peer(peer) {
                p.remote_hits.incr();
            }
            inner
                .stats
                .journal()
                .record(EventKind::RemoteHit, Some(peer), url.clone());
            meta
        }
        None => match fetch_http(inner, inner.cfg.origin(), &url, want, false) {
            Ok(Some(meta)) => meta,
            _ => {
                respond_empty(inner, stream, 504, "Gateway Timeout")?;
                finish_request(inner, t0);
                return Ok(());
            }
        },
    };

    // 4. Store and maintain the summary.
    store_document(inner, &url, meta);

    // 5. Reply.
    reply_doc(inner, stream, meta)?;
    finish_request(inner, t0);
    Ok(())
}

/// The server-name component of a URL (host part), for summaries. Any
/// `scheme://` prefix is stripped — not just `http://` — so `https://`
/// (or `ftp://`) URLs group under their host instead of collapsing into
/// one bogus `"scheme:"` server entry.
fn server_of(url: &str) -> &[u8] {
    let rest = match url.find("://") {
        // Only a separator before any '/' is a scheme delimiter.
        Some(i) if !url[..i].contains('/') => &url[i + 3..],
        _ => url,
    };
    let end = rest.find('/').unwrap_or(rest.len());
    &rest.as_bytes()[..end]
}

fn store_document(inner: &Inner, url: &str, meta: DocMeta) {
    let evicted = lock(&inner.cache).store(url.to_string(), meta);
    if let (Some(evicted), Some(sc)) = (evicted, &inner.sc) {
        let mut sc = lock(sc);
        sc.summary.insert(url.as_bytes(), server_of(url));
        for victim in &evicted {
            sc.summary.remove(victim.as_bytes(), server_of(victim));
        }
    }
}

fn reply_doc(inner: &Inner, stream: &mut TcpStream, meta: DocMeta) -> std::io::Result<()> {
    let head = http::build_response(
        200,
        "OK",
        &[
            ("Content-Length", &meta.size.to_string()),
            ("X-Doc-LM", &meta.last_modified.to_string()),
        ],
    );
    inner.stats.tcp_out(head.len() + meta.size as usize);
    stream.write_all(head.as_bytes())?;
    write_body(stream, meta.size)
}

/// Post-request bookkeeping: latency and (SC mode) update publishing.
fn finish_request(inner: &Inner, t0: Instant) {
    inner.stats.latency(t0.elapsed().as_micros() as u64);
    let Some(sc) = &inner.sc else { return };
    let (outcome, message_count) = {
        let mut sc = lock(sc);
        sc.requests_since_publish += 1;
        let elapsed_ms = sc.last_publish.elapsed().as_millis() as u64;
        if !sc.policy.should_publish(
            sc.summary.fresh_docs(),
            sc.summary.docs(),
            sc.requests_since_publish,
            elapsed_ms,
        ) {
            return;
        }
        let outcome = sc.summary.publish();
        sc.requests_since_publish = 0;
        sc.last_publish = Instant::now();
        let messages = build_update_messages(inner, &mut sc.summary, &outcome);
        // Fan out while still holding the lock: sequence allocation and
        // send order must agree, or two concurrent publishes interleave
        // on the wire and every receiver sees a phantom gap.
        for msg in &messages {
            fan_out_update(inner, msg, outcome.full_bitmap);
        }
        (outcome, messages.len())
    };
    inner.stats.summary_publishes.incr();
    inner.stats.summary_staleness.set(outcome.staleness);
    inner.stats.journal().record(
        if outcome.full_bitmap {
            EventKind::FullBitmapPublished
        } else {
            EventKind::DeltaPublished
        },
        None,
        format!(
            "staleness {:.4}, {} message(s), seq {}",
            outcome.staleness, message_count, outcome.seq
        ),
    );
}

/// Build the DIRUPDATE/DIRFULL message(s) for a publish. The first
/// datagram carries the seq the publish allocated; when the delta is
/// split across datagrams, each further chunk allocates the next seq so
/// the loss of *any* chunk is a detectable gap.
fn build_update_messages(
    inner: &Inner,
    summary: &mut ProxySummary,
    outcome: &PublishOutcome,
) -> Vec<IcpMessage> {
    let snapshot = summary.snapshot_published();
    let summary_cache_core::SummarySnapshot::Bloom { spec, bits } = snapshot else {
        unreachable!("SC mode always uses Bloom summaries");
    };
    let reqnum = inner.next_reqnum.fetch_add(1, Ordering::Relaxed);
    let mk = |seq: u32, content| IcpMessage::DirUpdate {
        request_number: reqnum,
        sender: inner.cfg.id(),
        update: DirUpdate {
            function_num: spec.k(),
            function_bits: spec.function_bits(),
            bit_array_size: spec.table_bits(),
            generation: outcome.generation,
            seq,
            content,
        },
    };
    if outcome.full_bitmap {
        vec![mk(outcome.seq, DirContent::Bitmap(bits.as_words().to_vec()))]
    } else if outcome.flips.is_empty() {
        // The publish allocated a seq, so something must travel or the
        // next delta reads as a gap; an empty delta is a legal no-op.
        vec![mk(outcome.seq, DirContent::Flips(Vec::new()))]
    } else {
        outcome
            .flips
            .chunks(FLIPS_PER_DATAGRAM)
            .enumerate()
            .map(|(i, chunk)| {
                let seq = if i == 0 { outcome.seq } else { summary.advance_seq() };
                mk(seq, DirContent::Flips(chunk.to_vec()))
            })
            .collect()
    }
}

/// Broadcast one update datagram to every peer, subject to the injected
/// update-loss knob, recording it into the matching size histogram.
fn fan_out_update(inner: &Inner, msg: &IcpMessage, full: bool) {
    let bytes = match msg.encode(inner.cfg.id()) {
        Ok(b) => b,
        Err(_) => return, // oversized full bitmap: skip (documented limit)
    };
    for peer in inner.cfg.peers() {
        if drop_update(inner) {
            continue; // injected loss: the datagram never leaves
        }
        if inner.udp.send_to(&bytes, peer.icp).is_ok() {
            inner.stats.udp_out_to(Some(peer.id), bytes.len());
            inner.stats.updates_sent.incr();
            if full {
                inner.stats.update_full_bytes.record(bytes.len() as u64);
            } else {
                inner.stats.update_delta_bytes.record(bytes.len() as u64);
            }
        }
    }
}

/// Should this outgoing update datagram be dropped by fault injection?
fn drop_update(inner: &Inner) -> bool {
    let loss = inner.cfg.update_loss();
    loss > 0.0 && lock(&inner.loss_rng).gen_bool(loss)
}

/// SC-mode anti-entropy tick, run from the keep-alive thread: broadcast
/// an empty delta carrying the current `(generation, seq)`. In-sync
/// replicas apply it as a no-op; a receiver that lost the tail of the
/// update stream (or never got a bitmap) sees the gap and resyncs —
/// without this, a lost *last* delta would go undetected until the next
/// publish.
fn heartbeat_update(inner: &Inner) {
    let Some(sc) = &inner.sc else { return };
    let mut sc = lock(sc);
    let snapshot = sc.summary.snapshot_published();
    let summary_cache_core::SummarySnapshot::Bloom { spec, .. } = snapshot else {
        return;
    };
    let generation = sc.summary.generation();
    let seq = sc.summary.advance_seq();
    let msg = IcpMessage::DirUpdate {
        request_number: inner.next_reqnum.fetch_add(1, Ordering::Relaxed),
        sender: inner.cfg.id(),
        update: DirUpdate {
            function_num: spec.k(),
            function_bits: spec.function_bits(),
            bit_array_size: spec.table_bits(),
            generation,
            seq,
            content: DirContent::Flips(Vec::new()),
        },
    };
    fan_out_update(inner, &msg, false);
}

/// Send ICP queries to `peer_ids`; if one answers HIT, fetch the
/// document from it. Returns the serving peer and the fetched metadata
/// when it matches the requested version (a mismatch is a remote stale
/// hit).
fn query_then_fetch(
    inner: &Inner,
    url: &str,
    want: DocMeta,
    peer_ids: &[u32],
) -> Option<(u32, DocMeta)> {
    if peer_ids.is_empty() {
        return None;
    }
    let reqnum = inner.next_reqnum.fetch_add(1, Ordering::Relaxed);
    let query = IcpMessage::Query {
        request_number: reqnum,
        requester: inner.cfg.id(),
        url: url.to_string(),
    };
    // An oversized URL cannot be queried; treat it as a miss everywhere
    // rather than taking the daemon down.
    let bytes = query.encode(inner.cfg.id()).ok()?;
    let (tx, rx) = std::sync::mpsc::sync_channel(1);
    {
        // Hold the pending-table lock across the send loop so
        // `outstanding` counts exactly the queries that actually left
        // (a peer missing from the table, or a failed send, must not
        // leave a reply slot nobody will ever fill — that made every
        // all-miss round wait out the full icp_timeout_ms). Replies
        // cannot race in while the lock is held.
        let mut pending = lock(&inner.pending);
        pending.insert(
            reqnum,
            Pending {
                outstanding: 0,
                hit: None,
                done: Some(tx),
                sent_at: Instant::now(),
            },
        );
        let mut sent = 0usize;
        for id in peer_ids {
            if let Some(peer) = inner.peers_by_id.get(id) {
                if inner.udp.send_to(&bytes, peer.icp).is_ok() {
                    sent += 1;
                    inner.stats.udp_out_to(Some(*id), bytes.len());
                    inner.stats.icp_queries_sent.incr();
                    if let Some(p) = inner.stats.peer(*id) {
                        p.queries_sent.incr();
                        p.update_staleness();
                    }
                }
            }
        }
        if sent == 0 {
            // Nothing left the socket: a miss everywhere, immediately.
            pending.remove(&reqnum);
            return None;
        }
        if let Some(p) = pending.get_mut(&reqnum) {
            p.outstanding = sent;
        }
    }
    let winner = rx
        .recv_timeout(Duration::from_millis(inner.cfg.icp_timeout_ms()))
        .ok()
        .flatten();
    lock(&inner.pending).remove(&reqnum);

    let winner = winner?;
    let peer = inner.peers_by_id.get(&winner)?;
    match fetch_http(inner, peer.http, url, want, true) {
        Ok(Some(meta)) if meta == want => {
            if let Some(p) = inner.stats.peer(winner) {
                p.tcp_bytes_fetched.add(meta.size);
            }
            Some((winner, meta))
        }
        Ok(Some(_)) | Ok(None) => {
            // Copy exists but is the wrong version, or vanished between
            // the ICP reply and the fetch.
            inner.stats.remote_stale_hits.incr();
            if let Some(p) = inner.stats.peer(winner) {
                p.stale_hits.incr();
            }
            inner
                .stats
                .journal()
                .record(EventKind::RemoteStaleHit, Some(winner), url.to_string());
            None
        }
        Err(_) => None,
    }
}

/// GET `url` from `addr` (peer or origin), draining the body. Returns
/// the document metadata or `None` on 404.
fn fetch_http(
    inner: &Inner,
    addr: SocketAddr,
    url: &str,
    want: DocMeta,
    peer: bool,
) -> std::io::Result<Option<DocMeta>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let size = want.size.to_string();
    let lm = want.last_modified.to_string();
    let mut headers: Vec<(&str, &str)> = vec![("X-Doc-Size", &size), ("X-Doc-LM", &lm)];
    if peer {
        headers.push(("X-Peer-Fetch", "1"));
    }
    let head = http::build_request(url, &headers);
    inner.stats.tcp_out(head.len());
    stream.write_all(head.as_bytes())?;

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let resp = loop {
        match http::parse_response(&buf) {
            Ok(http::Parse::Done { value, consumed }) => {
                buf.drain(..consumed);
                break value;
            }
            Ok(http::Parse::NeedMore) => {
                let mut chunk = [0u8; 16 * 1024];
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "closed before response head",
                    ));
                }
                inner.stats.tcp_in(n);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
        }
    };
    let len = http::content_length(&resp.headers).unwrap_or(0);
    let already = buf.len() as u64;
    if already < len {
        let mut counted = CountingReader {
            inner: &mut stream,
            stats: &inner.stats,
        };
        drain_body(&mut counted, len - already)?;
    }
    if resp.status == 404 {
        return Ok(None);
    }
    let lm_out = http::header(&resp.headers, "x-doc-lm")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    Ok(Some(DocMeta {
        size: len,
        last_modified: lm_out,
    }))
}

/// Read adapter that counts bytes into the proxy's TCP counters.
struct CountingReader<'a> {
    inner: &'a mut TcpStream,
    stats: &'a ProxyStats,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.stats.tcp_in(n);
        Ok(n)
    }
}

/// Handle one received ICP datagram.
fn handle_datagram(inner: &Arc<Inner>, data: &[u8], from: SocketAddr) {
    let from_peer = inner.peer_of_addr.get(&from).copied();
    inner.stats.udp_in_from(from_peer, data.len());
    let Ok(msg) = IcpMessage::decode(data) else {
        return; // malformed datagrams are dropped, as in Squid
    };
    if let Some(peer_id) = from_peer {
        if mark_heard(inner, peer_id) {
            // The peer just came back (Section VI-B): reinitialize both
            // directions through the resync machinery — restate our
            // bitmap so its replica of us recovers, and ask for its
            // bitmap to rebuild the one we dropped at failure time.
            inner.stats.peer_recoveries.incr();
            inner.stats.journal().record(
                EventKind::PeerRecovered,
                Some(peer_id),
                "bitmap re-sent, resync requested",
            );
            send_full_bitmap(inner, peer_id, from);
            let mut replicas = lock(&inner.replicas);
            let st = replicas.entry(peer_id).or_default();
            request_resync(inner, st, peer_id, from);
        }
    }
    match msg {
        IcpMessage::Query {
            request_number,
            url,
            ..
        } => {
            inner.stats.icp_queries_served.incr();
            let have = lock(&inner.cache).contains(&url);
            let reply = if have {
                IcpMessage::Hit {
                    request_number,
                    url,
                }
            } else {
                IcpMessage::Miss {
                    request_number,
                    url,
                }
            };
            if let Ok(bytes) = reply.encode(inner.cfg.id()) {
                if inner.udp.send_to(&bytes, from).is_ok() {
                    inner.stats.udp_out_to(from_peer, bytes.len());
                }
            }
        }
        IcpMessage::Hit { request_number, .. } => {
            dispatch_reply(inner, request_number, from_peer, from_peer);
        }
        IcpMessage::Miss { request_number, .. }
        | IcpMessage::MissNoFetch { request_number, .. }
        | IcpMessage::Denied { request_number, .. }
        | IcpMessage::Err { request_number, .. } => {
            dispatch_reply(inner, request_number, None, from_peer);
        }
        IcpMessage::Secho { .. } => {
            // Keep-alive: nothing to do beyond the udp_in accounting.
        }
        IcpMessage::DirUpdate { sender, update, .. } => {
            apply_update(inner, sender, update, from);
        }
        IcpMessage::DirReq { .. } => {
            // A peer's replica of us is missing or gapped: restate the
            // whole published bitmap.
            if let Some(peer_id) = from_peer {
                send_full_bitmap(inner, peer_id, from);
            }
        }
    }
}

/// Route an ICP reply to the waiting query, completing it on the first
/// HIT or once every peer has answered. `replier` (when the source
/// address maps to a known peer) gets the round trip recorded into its
/// RTT histogram.
fn dispatch_reply(inner: &Inner, reqnum: u32, hit_from: Option<u32>, replier: Option<u32>) {
    let mut pending = lock(&inner.pending);
    let Some(p) = pending.get_mut(&reqnum) else {
        return; // late reply after timeout
    };
    if let Some(ps) = replier.and_then(|id| inner.stats.peer(id)) {
        ps.icp_rtt_us.record(p.sent_at.elapsed().as_micros() as u64);
    }
    p.outstanding = p.outstanding.saturating_sub(1);
    if let Some(id) = hit_from {
        p.hit = Some(id);
    }
    if p.hit.is_some() || p.outstanding == 0 {
        if let Some(done) = p.done.take() {
            let _ = done.try_send(p.hit);
        }
        pending.remove(&reqnum);
    }
}

/// Apply a received directory update to the sender's local replica.
///
/// Sequencing discipline (replaces the old "apply flips onto a freshly
/// created empty array" behavior, which silently manufactured false
/// misses): a replica is only ever *installed* from a full bitmap, and
/// delta flips apply only when they carry exactly the expected
/// `(generation, seq)`. Anything else is evidence of loss, reordering,
/// or a publisher restart — the replica is discarded and a DIRREQ asks
/// the publisher to restate its bitmap.
fn apply_update(inner: &Inner, sender: u32, update: DirUpdate, from: SocketAddr) {
    let Ok(spec) = HashSpec::new(
        update.function_num,
        update.function_bits,
        update.bit_array_size,
    ) else {
        return; // malformed spec: drop, as with any bad datagram
    };
    if !inner.peers_by_id.contains_key(&sender) {
        return; // not a configured peer: no replica, no resync
    }
    inner.stats.updates_received.incr();
    let mut replicas = lock(&inner.replicas);
    let st = replicas.entry(sender).or_default();
    match update.content {
        DirContent::Bitmap(words) => {
            if words.len() != (spec.table_bits() as usize).div_ceil(64) {
                return;
            }
            // Mask any overhang bits the sender left set.
            let mut words = words;
            let rem = spec.table_bits() as usize % 64;
            if rem != 0 {
                if let Some(last) = words.last_mut() {
                    *last &= (1u64 << rem) - 1;
                }
            }
            let first_contact = st.filter.is_none();
            st.filter = Some(BloomFilter::from_parts(
                spec,
                BitVec::from_words(spec.table_bits() as usize, words),
            ));
            st.generation = update.generation;
            st.expected_seq = update.seq.wrapping_add(1);
            st.last_resync_request = None;
            inner.stats.replica_resyncs.incr();
            inner.stats.journal().record(
                if first_contact {
                    EventKind::PeerSummaryInstalled
                } else {
                    EventKind::ReplicaResynced
                },
                Some(sender),
                format!(
                    "gen {} seq {}, {} bits",
                    update.generation,
                    update.seq,
                    spec.table_bits()
                ),
            );
        }
        DirContent::Flips(flips) => {
            let in_sync = st.generation == update.generation
                && st.filter.as_ref().is_some_and(|f| f.spec() == spec);
            if in_sync && update.seq == st.expected_seq {
                st.expected_seq = st.expected_seq.wrapping_add(1);
                if let Some(filter) = st.filter.as_mut() {
                    for f in flips {
                        if f.index() < spec.table_bits() {
                            filter.apply_flip(f.index(), f.set_bit());
                        }
                    }
                }
                return;
            }
            if in_sync && update.seq.wrapping_sub(st.expected_seq) > u32::MAX / 2 {
                return; // duplicate / late datagram from the past: already reflected
            }
            // Seq gap ahead, generation or spec change, or no replica at
            // all (first contact / already awaiting a bitmap).
            if st.filter.take().is_some() {
                inner.stats.update_gaps.incr();
                inner.stats.journal().record(
                    EventKind::UpdateGap,
                    Some(sender),
                    format!(
                        "got gen {} seq {}, expected gen {} seq {}",
                        update.generation, update.seq, st.generation, st.expected_seq
                    ),
                );
            }
            request_resync(inner, st, sender, from);
        }
    }
}

/// Minimum spacing between DIRREQs to one peer: resyncs are idempotent,
/// but a burst of gapped deltas must not become a burst of bitmap
/// requests (each answer is a full bitmap).
const RESYNC_BACKOFF: Duration = Duration::from_millis(150);

/// Ask `peer` (reachable at `to`) to restate its full bitmap, unless a
/// request went out within [`RESYNC_BACKOFF`]. Retries ride the next
/// delta or heartbeat that finds the replica still missing.
fn request_resync(inner: &Inner, st: &mut ReplicaState, peer: u32, to: SocketAddr) {
    if st
        .last_resync_request
        .is_some_and(|at| at.elapsed() < RESYNC_BACKOFF)
    {
        return;
    }
    st.last_resync_request = Some(Instant::now());
    let msg = IcpMessage::DirReq {
        request_number: inner.next_reqnum.fetch_add(1, Ordering::Relaxed),
        sender: inner.cfg.id(),
        generation: st.generation,
    };
    if let Ok(bytes) = msg.encode(inner.cfg.id()) {
        if inner.udp.send_to(&bytes, to).is_ok() {
            inner.stats.udp_out_to(Some(peer), bytes.len());
            inner.stats.resync_requests.incr();
            inner.stats.journal().record(
                EventKind::ResyncRequested,
                Some(peer),
                format!("last seen gen {}", st.generation),
            );
        }
    }
}


/// Failure timeout: a peer silent for this many keep-alive periods is
/// considered failed and its summary replica is dropped (probes then
/// treat it as empty — no candidates, no queries).
const FAILURE_KEEPALIVE_PERIODS: u32 = 3;

/// Mark `peer` as heard-from now. Returns `true` if this is a recovery
/// (the peer was marked failed).
fn mark_heard(inner: &Inner, peer: u32) -> bool {
    let mut liveness = lock(&inner.liveness);
    let Some(l) = liveness.get_mut(&peer) else {
        return false;
    };
    l.last_heard = Instant::now();
    std::mem::replace(&mut l.failed, false)
}

/// Drop the summary replicas of peers we have not heard from lately.
fn sweep_failed_peers(inner: &Inner) {
    if inner.cfg.keepalive_ms() == 0 {
        return; // no keep-alives, no liveness signal
    }
    let timeout = Duration::from_millis(inner.cfg.keepalive_ms())
        * FAILURE_KEEPALIVE_PERIODS;
    let now = Instant::now();
    let mut newly_failed = Vec::new();
    {
        let mut liveness = lock(&inner.liveness);
        for (&id, l) in liveness.iter_mut() {
            if !l.failed && now.duration_since(l.last_heard) > timeout {
                l.failed = true;
                newly_failed.push(id);
            }
        }
    }
    if !newly_failed.is_empty() {
        let mut replicas = lock(&inner.replicas);
        for id in newly_failed {
            replicas.remove(&id);
            inner.stats.peer_failures.incr();
            inner
                .stats
                .journal()
                .record(EventKind::PeerFailed, Some(id), "summary replica dropped");
        }
    }
}

/// Send our complete current published bitmap to one peer (answering a
/// DIRREQ, or reinitializing a recovered peer). No-op outside SC mode.
///
/// Stamps the *current* sequence number without advancing it: a unicast
/// bitmap must not create a seq the other peers never see (they would
/// read the skipped number as a gap). The receiver resumes expecting
/// `seq + 1`, which is exactly the next delta we will broadcast.
fn send_full_bitmap(inner: &Inner, peer_id: u32, to: SocketAddr) {
    let Some(sc) = &inner.sc else { return };
    let msg = {
        let sc = lock(sc);
        let snapshot = sc.summary.snapshot_published();
        let summary_cache_core::SummarySnapshot::Bloom { spec, bits } = snapshot else {
            return;
        };
        IcpMessage::DirUpdate {
            request_number: inner.next_reqnum.fetch_add(1, Ordering::Relaxed),
            sender: inner.cfg.id(),
            update: DirUpdate {
                function_num: spec.k(),
                function_bits: spec.function_bits(),
                bit_array_size: spec.table_bits(),
                generation: sc.summary.generation(),
                seq: sc.summary.seq(),
                content: DirContent::Bitmap(bits.as_words().to_vec()),
            },
        }
    };
    if drop_update(inner) {
        return; // injected loss applies to resync answers too
    }
    if let Ok(bytes) = msg.encode(inner.cfg.id()) {
        if inner.udp.send_to(&bytes, to).is_ok() {
            inner.stats.udp_out_to(Some(peer_id), bytes.len());
            inner.stats.updates_sent.incr();
            inner.stats.update_full_bytes.record(bytes.len() as u64);
        }
    }
}

/// A generation identifier that is, with overwhelming probability,
/// different from the one any previous incarnation of this daemon
/// used: peers compare it to detect a restart and resync rather than
/// applying deltas to a replica of the old lifetime's bitmap.
fn fresh_generation(id: u32) -> u32 {
    static SALT: AtomicU32 = AtomicU32::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let mixed = nanos ^ ((id as u64) << 40) ^ ((SALT.fetch_add(1, Ordering::Relaxed) as u64) << 52);
    ((mixed ^ (mixed >> 32)) as u32).max(1)
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_of_extracts_host() {
        assert_eq!(server_of("http://a.example.com/x/y"), b"a.example.com");
        assert_eq!(server_of("http://bare"), b"bare");
        assert_eq!(server_of("no-scheme/path"), b"no-scheme");
        assert_eq!(server_of("http://h/"), b"h");
        // Any scheme is stripped, not just http:// (the old prefix test
        // hashed "https://h" and "ftp://h" to different servers than
        // "http://h").
        assert_eq!(server_of("https://h/x"), b"h");
        assert_eq!(server_of("ftp://files.example.org/pub"), b"files.example.org");
        // A "://" after the first '/' is path content, not a scheme.
        assert_eq!(server_of("host/redirect?to=http://other"), b"host");
    }

    #[test]
    fn flips_chunking_constant_fits_a_packet() {
        // 320 flips x 4 bytes + 32 bytes of headers stays under the
        // typical 1500-byte MTU, per the prototype's packet-fill intent.
        const { assert!(FLIPS_PER_DATAGRAM * 4 + 32 < 1500) };
    }
}
