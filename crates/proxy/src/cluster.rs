//! In-process experiment clusters: N proxies + one origin on loopback,
//! driven by the synthetic benchmark or a trace replay — the threaded
//! equivalent of the paper's 10-workstation testbed (Section IV).

use crate::client::{plan_replay, BenchmarkConfig, ProxyClient, ReplayMode, SyntheticStream};
use crate::config::{Mode, PeerAddr, ProxyConfig};
use crate::daemon::Daemon;
use crate::origin::Origin;
use crate::stats::{CpuTimes, StatsSnapshot};
use sc_trace::Trace;
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::time::{Duration, Instant};

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of proxies (the paper's experiments use 4).
    pub proxies: u32,
    /// Cooperation mode, same on every proxy.
    pub mode: Mode,
    /// Cache capacity per proxy, bytes (the paper: 75 MB).
    pub cache_bytes: u64,
    /// Expected cached-document count (Bloom sizing).
    pub expected_docs: u64,
    /// Artificial origin reply delay (the paper: 1 s).
    pub origin_delay: Duration,
    /// ICP reply wait.
    pub icp_timeout_ms: u64,
    /// Keep-alive interval (ms); 0 disables.
    pub keepalive_ms: u64,
    /// Fraction of outgoing directory-update datagrams each proxy
    /// silently drops (fault injection emulating WAN loss); 0 disables.
    pub update_loss: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            proxies: 4,
            mode: Mode::NoIcp,
            cache_bytes: 75 * 1024 * 1024,
            expected_docs: 8_000,
            origin_delay: Duration::from_millis(1000),
            icp_timeout_ms: 500,
            keepalive_ms: 1_000,
            update_loss: 0.0,
        }
    }
}

/// A running cluster.
pub struct Cluster {
    /// The proxies, index = proxy id.
    pub daemons: Vec<Daemon>,
    /// The origin emulator.
    pub origin: Origin,
}

/// Join a set of driver threads, surfacing the first I/O error (a
/// panicked thread reports as an error rather than poisoning the run).
fn join_drivers(
    handles: Vec<std::thread::JoinHandle<std::io::Result<()>>>,
) -> std::io::Result<()> {
    for h in handles {
        h.join()
            .map_err(|_| std::io::Error::other("driver thread panicked"))??;
    }
    Ok(())
}

impl Cluster {
    /// Bind all sockets, compute the full peer mesh, and start
    /// everything.
    pub fn start(cfg: &ClusterConfig) -> std::io::Result<Cluster> {
        assert!(cfg.proxies >= 1);
        let origin = Origin::spawn(cfg.origin_delay)?;

        // Bind every socket first so each daemon knows the whole mesh.
        let loopback = SocketAddr::from(([127, 0, 0, 1], 0));
        let mut listeners = Vec::new();
        let mut udps = Vec::new();
        let mut addrs = Vec::new();
        for id in 0..cfg.proxies {
            let l = TcpListener::bind(loopback)?;
            let u = UdpSocket::bind(loopback)?;
            addrs.push(PeerAddr {
                id,
                icp: u.local_addr()?,
                http: l.local_addr()?,
            });
            listeners.push(l);
            udps.push(u);
        }

        let mut daemons = Vec::new();
        for (id, (listener, udp)) in listeners.into_iter().zip(udps).enumerate() {
            let peers: Vec<PeerAddr> = addrs
                .iter()
                .filter(|p| p.id != id as u32)
                .copied()
                .collect();
            let pc = ProxyConfig::builder()
                .id(id as u32)
                .cache_bytes(cfg.cache_bytes)
                .expected_docs(cfg.expected_docs)
                .mode(cfg.mode)
                .peers(peers)
                .origin(origin.addr)
                .icp_timeout_ms(cfg.icp_timeout_ms)
                .keepalive_ms(cfg.keepalive_ms)
                .update_loss(cfg.update_loss)
                .build()
                .map_err(std::io::Error::other)?;
            daemons.push(Daemon::spawn_on(pc, listener, udp)?);
        }
        Ok(Cluster { daemons, origin })
    }

    /// Per-proxy counter snapshots.
    pub fn snapshots(&self) -> Vec<StatsSnapshot> {
        self.daemons.iter().map(|d| d.stats.snapshot()).collect()
    }

    /// Aggregate counters across the cluster.
    pub fn aggregate(&self) -> StatsSnapshot {
        self.snapshots()
            .into_iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merged(&s))
    }

    /// Run the synthetic benchmark: `clients_per_proxy` concurrent
    /// clients against each proxy, each issuing its stream sequentially.
    /// Returns the wall-clock duration.
    pub fn run_benchmark(&self, bench: &BenchmarkConfig) -> std::io::Result<Duration> {
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for (pid, d) in self.daemons.iter().enumerate() {
            for c in 0..bench.clients_per_proxy {
                let global_client = (pid * bench.clients_per_proxy + c) as u64 + 1;
                let mut stream = SyntheticStream::new(bench, global_client);
                let addr = d.http_addr;
                let stats = d.stats.clone();
                let n = bench.requests_per_client;
                handles.push(std::thread::spawn(move || -> std::io::Result<()> {
                    let mut client = ProxyClient::connect(addr, stats)?;
                    for _ in 0..n {
                        let (url, meta) = stream.next_request();
                        let status = client.get(&url, meta)?;
                        debug_assert_eq!(status, 200);
                    }
                    Ok(())
                }));
            }
        }
        join_drivers(handles)?;
        Ok(t0.elapsed())
    }

    /// Replay a trace per Section VII: `tasks_per_proxy` driver threads
    /// per proxy (the paper: 20, for 80 total), bound per `mode`.
    pub fn run_replay(
        &self,
        trace: &Trace,
        tasks_per_proxy: usize,
        mode: ReplayMode,
    ) -> std::io::Result<Duration> {
        assert_eq!(
            trace.groups as usize,
            self.daemons.len(),
            "trace groups must match cluster size"
        );
        let plans = plan_replay(trace, tasks_per_proxy, mode);
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for (tid, plan) in plans.into_iter().enumerate() {
            if plan.is_empty() {
                continue;
            }
            let d = &self.daemons[tid % self.daemons.len()];
            let addr = d.http_addr;
            let stats = d.stats.clone();
            handles.push(std::thread::spawn(move || -> std::io::Result<()> {
                let mut client = ProxyClient::connect(addr, stats)?;
                for (url, meta) in plan {
                    client.get(&url, meta)?;
                }
                Ok(())
            }));
        }
        join_drivers(handles)?;
        Ok(t0.elapsed())
    }

    /// Stop every daemon and the origin.
    pub fn shutdown(&self) {
        for d in &self.daemons {
            d.shutdown();
        }
        self.origin.shutdown();
    }
}

/// One experiment's results, as printed by the Table II/IV/V harnesses.
#[derive(Debug, Clone, Default)]
pub struct ExperimentReport {
    /// Mode label ("no-ICP", "ICP", "SC-ICP").
    pub mode: String,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Process CPU consumed during the run.
    pub cpu_user: f64,
    /// System CPU seconds consumed during the run.
    pub cpu_system: f64,
    /// Aggregate counters.
    pub totals: StatsSnapshot,
    /// Per-proxy counters.
    pub per_proxy: Vec<StatsSnapshot>,
    /// Median client latency across the cluster, milliseconds (from the
    /// aggregated sc-obs latency distribution).
    pub latency_ms_p50: f64,
    /// 95th-percentile client latency, milliseconds.
    pub latency_ms_p95: f64,
    /// 99th-percentile client latency, milliseconds.
    pub latency_ms_p99: f64,
}

sc_json::json_struct!(ExperimentReport {
    mode,
    wall_seconds,
    cpu_user,
    cpu_system,
    totals,
    per_proxy,
    latency_ms_p50,
    latency_ms_p95,
    latency_ms_p99
});

impl ExperimentReport {
    /// Assemble a report from a finished run.
    pub fn build(
        mode: Mode,
        wall: Duration,
        cpu_start: &CpuTimes,
        cluster: &Cluster,
    ) -> ExperimentReport {
        let cpu = CpuTimes::now().since(cpu_start);
        let totals = cluster.aggregate();
        ExperimentReport {
            mode: mode.label().to_string(),
            wall_seconds: wall.as_secs_f64(),
            cpu_user: cpu.user,
            cpu_system: cpu.system,
            latency_ms_p50: totals.latency_ms(0.50),
            latency_ms_p95: totals.latency_ms(0.95),
            latency_ms_p99: totals.latency_ms(0.99),
            totals,
            per_proxy: cluster.snapshots(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_cache::DocMeta;

    fn quick_cluster(mode: Mode) -> ClusterConfig {
        ClusterConfig {
            proxies: 3,
            mode,
            cache_bytes: 4 * 1024 * 1024,
            expected_docs: 1_000,
            origin_delay: Duration::from_millis(5),
            icp_timeout_ms: 300,
            keepalive_ms: 0,
            update_loss: 0.0,
        }
    }

    fn quick_bench() -> BenchmarkConfig {
        BenchmarkConfig {
            clients_per_proxy: 4,
            requests_per_client: 25,
            target_hit_ratio: 0.4,
            size_pareto: (1.1, 256, 16 * 1024),
            seed: 42,
        }
    }

    #[test]
    fn no_icp_cluster_serves_benchmark() {
        let cluster = Cluster::start(&quick_cluster(Mode::NoIcp)).unwrap();
        cluster.run_benchmark(&quick_bench()).unwrap();
        let total = cluster.aggregate();
        assert_eq!(total.http_requests, 3 * 4 * 25);
        assert_eq!(total.udp_messages(), 0, "no ICP traffic in no-ICP mode");
        assert!(total.hit_ratio() > 0.2, "inherent locality produces hits");
        cluster.shutdown();
    }

    #[test]
    fn icp_mode_queries_on_every_miss() {
        let cluster = Cluster::start(&quick_cluster(Mode::Icp)).unwrap();
        cluster.run_benchmark(&quick_bench()).unwrap();
        let total = cluster.aggregate();
        let misses = total.http_requests - total.local_hits - total.remote_hits;
        assert_eq!(
            total.icp_queries_sent,
            misses * 2,
            "each miss queries both neighbours"
        );
        // Disjoint client streams: queries never find anything.
        assert_eq!(total.remote_hits, 0);
        // Every query got a reply; sent and received UDP line up.
        assert_eq!(total.udp_sent, total.udp_recv, "loopback loses nothing");
        cluster.shutdown();
    }

    #[test]
    fn summary_cache_mode_sends_almost_no_queries() {
        let cluster = Cluster::start(&quick_cluster(Mode::summary_cache_default())).unwrap();
        cluster.run_benchmark(&quick_bench()).unwrap();
        let total = cluster.aggregate();
        // Disjoint streams: summaries point nowhere except Bloom false
        // positives, so queries are a tiny fraction of ICP's.
        let misses = total.http_requests - total.local_hits - total.remote_hits;
        assert!(
            total.icp_queries_sent < misses / 5,
            "queries {} vs misses {}",
            total.icp_queries_sent,
            misses
        );
        assert!(total.updates_sent > 0, "directory updates flowed");
        assert!(total.updates_received > 0);
        cluster.shutdown();
    }

    #[test]
    fn remote_hits_flow_between_peers() {
        // Two proxies; client of proxy 0 fetches a doc, then a client of
        // proxy 1 asks for the same doc: ICP must turn it into a remote
        // hit.
        let cfg = ClusterConfig {
            proxies: 2,
            mode: Mode::Icp,
            origin_delay: Duration::from_millis(50),
            ..quick_cluster(Mode::Icp)
        };
        let cluster = Cluster::start(&cfg).unwrap();
        let url = "http://server-9.trace.invalid/doc/99";
        let meta = DocMeta {
            size: 5000,
            last_modified: 3,
        };
        let mut c0 =
            ProxyClient::connect(cluster.daemons[0].http_addr, cluster.daemons[0].stats.clone())
                .unwrap();
        assert_eq!(c0.get(url, meta).unwrap(), 200);
        let mut c1 =
            ProxyClient::connect(cluster.daemons[1].http_addr, cluster.daemons[1].stats.clone())
                .unwrap();
        let t0 = Instant::now();
        assert_eq!(c1.get(url, meta).unwrap(), 200);
        let remote_latency = t0.elapsed();
        let s1 = cluster.daemons[1].stats.snapshot();
        assert_eq!(s1.remote_hits, 1, "{s1:?}");
        assert!(
            remote_latency < Duration::from_millis(45),
            "remote hit must beat the 50ms origin delay: {remote_latency:?}"
        );
        cluster.shutdown();
    }

    #[test]
    fn summary_cache_remote_hit_after_update() {
        // SC mode with an aggressive update policy: after proxy 0 caches
        // a doc and publishes, proxy 1 finds it via the Bloom replica.
        let cfg = ClusterConfig {
            proxies: 2,
            mode: Mode::SummaryCache {
                load_factor: 16,
                hashes: 4,
                policy: summary_cache_core::UpdatePolicy::Threshold(0.0),
            },
            origin_delay: Duration::from_millis(20),
            ..quick_cluster(Mode::NoIcp)
        };
        let cluster = Cluster::start(&cfg).unwrap();
        let url = "http://server-9.trace.invalid/doc/42";
        let meta = DocMeta {
            size: 2000,
            last_modified: 9,
        };
        let mut c0 =
            ProxyClient::connect(cluster.daemons[0].http_addr, cluster.daemons[0].stats.clone())
                .unwrap();
        assert_eq!(c0.get(url, meta).unwrap(), 200);
        // Give the update datagram a moment to land.
        std::thread::sleep(Duration::from_millis(100));
        let mut c1 =
            ProxyClient::connect(cluster.daemons[1].http_addr, cluster.daemons[1].stats.clone())
                .unwrap();
        assert_eq!(c1.get(url, meta).unwrap(), 200);
        let s1 = cluster.daemons[1].stats.snapshot();
        assert_eq!(s1.remote_hits, 1, "{s1:?}");
        assert_eq!(s1.icp_queries_sent, 1, "queried exactly the candidate");
        cluster.shutdown();
    }

    #[test]
    fn replay_drives_all_requests() {
        let trace = sc_trace::TraceGenerator::new(sc_trace::GeneratorConfig {
            requests: 400,
            clients: 12,
            documents: 100,
            groups: 3,
            mean_gap_ms: 1.0,
            ..Default::default()
        })
        .generate();
        let cfg = ClusterConfig {
            origin_delay: Duration::from_millis(1),
            ..quick_cluster(Mode::Icp)
        };
        let cluster = Cluster::start(&cfg).unwrap();
        cluster.run_replay(&trace, 4, ReplayMode::PerClient).unwrap();
        let total = cluster.aggregate();
        assert_eq!(total.http_requests, 400);
        assert!(total.remote_hits > 0, "shared documents produce remote hits");
        cluster.shutdown();

        let cluster2 = Cluster::start(&cfg).unwrap();
        cluster2
            .run_replay(&trace, 4, ReplayMode::RoundRobin)
            .unwrap();
        assert_eq!(cluster2.aggregate().http_requests, 400);
        cluster2.shutdown();
    }

    #[test]
    fn experiment_report_json_roundtrip() {
        use sc_json::{FromJson, ToJson};
        let report = ExperimentReport {
            mode: "SC-ICP".into(),
            wall_seconds: 1.25,
            totals: StatsSnapshot {
                http_requests: 100,
                ..Default::default()
            },
            per_proxy: vec![StatsSnapshot::default(); 2],
            ..Default::default()
        };
        let v = report.to_json();
        let back = ExperimentReport::from_json(&v).unwrap();
        assert_eq!(back.mode, "SC-ICP");
        assert_eq!(back.totals.http_requests, 100);
        assert_eq!(back.per_proxy.len(), 2);
        assert!((back.wall_seconds - 1.25).abs() < 1e-12);
    }
}
