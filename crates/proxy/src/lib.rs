#![warn(missing_docs)]

//! A working summary-cache web proxy over `std::net` + threads, plus
//! everything needed to reproduce the paper's live experiments
//! (Tables II, IV, V).
//!
//! The pieces:
//!
//! * [`machine`] — the sans-I/O protocol vocabulary (events, outputs,
//!   effects, virtual time) and the single-shard `Machine` facade:
//!   every replication/ICP decision (query answering, replica
//!   sequencing, gap-triggered resync, failure detection, publish
//!   fan-out) as a pure function of `(virtual time, event)` — no
//!   sockets, no clocks, no sleeps.
//! * [`shard`] + [`router`] — the shard-per-core runtime behind that
//!   facade: N lock-free shards partition the local directory and the
//!   peer-replica space by `UrlKey` digest, the router owns the
//!   control plane (liveness, request numbering, the publish ledger)
//!   and turns cross-shard concerns into explicit merge steps.
//! * [`daemon`] — the proxy itself: an HTTP front end with a
//!   metadata-only document cache, a UDP ICP endpoint feeding the
//!   machine, and three peering modes ([`config::Mode`]): no
//!   cooperation, classic ICP (query every neighbour on every miss),
//!   and summary-cache enhanced ICP (probe local Bloom replicas of peer
//!   directories, query only candidates, ship `ICP_OP_DIRUPDATE`
//!   deltas).
//! * [`replica`] — the lock-free read path: the machine publishes
//!   immutable peer-replica snapshots into an epoch-swapped cell, and
//!   SC-mode candidate selection reads them (via the hash-once
//!   `UrlKey` probe) without ever taking the machine lock.
//! * [`simnet`] — the deterministic simulation harness: N machines, a
//!   virtual clock, one event priority-queue, and a seeded fault plan
//!   (loss, duplication, reordering, crash+restart, partitions) for
//!   replayable protocol soak tests.
//! * [`origin`] — the origin-server emulator: answers every GET with the
//!   size the URL's headers request, after a configurable artificial
//!   delay (the benchmark's stand-in for Internet latency, Section IV).
//! * [`client`] — load drivers: the Wisconsin-style synthetic benchmark
//!   (Pareto sizes, temporal locality, adjustable inherent hit ratio,
//!   optional disjoint per-proxy document spaces) and the two
//!   trace-replay modes of Section VII (per-client binding and
//!   round-robin dispatch).
//! * [`cluster`] — spins up N proxies + an origin in-process on loopback
//!   and runs a driver against them, collecting per-proxy statistics.
//! * [`stats`] — the per-daemon sc-obs registry (counters, per-peer
//!   gauges/histograms, event journal) standing in for the paper's
//!   `netstat` and CPU measurements, including `/proc/self/stat`-based
//!   CPU time.
//! * [`admin`] — a loopback observability endpoint per daemon serving
//!   `/metrics` (Prometheus text), `/json` (registry snapshot) and
//!   `/events` (recent protocol events).
//!
//! Bodies are synthesized (the cache stores metadata, not payloads):
//! the experiments measure protocol traffic, CPU and latency, none of
//! which depend on payload contents — only on their sizes, which are
//! preserved exactly.

pub mod admin;
pub mod client;
pub mod cluster;
pub mod config;
pub mod daemon;
pub mod histogram;
pub mod machine;
pub mod origin;
pub mod replica;
pub mod router;
pub mod scratch;
pub mod shard;
pub mod simnet;
pub mod stats;

pub use client::{BenchmarkConfig, ReplayMode};
pub use cluster::{Cluster, ClusterConfig, ExperimentReport};
pub use config::{ConfigError, Mode, ProxyConfig, ProxyConfigBuilder};
pub use histogram::{LatencyHistogram, LatencySummary};
pub use stats::{CpuTimes, PeerStats, ProxyStats, StatsSnapshot};
