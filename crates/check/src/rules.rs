//! Rules 2–11, expressed on the [`crate::engine`].
//!
//! Per-file rules emit through a [`Sink`] (suppression-aware). Rules
//! that need the whole tree — metric uniqueness (5), lock-order
//! inversion (8), wire exhaustiveness (10) — accumulate into
//! [`CrossFile`] during the per-file pass and are judged in [`finish`].

use crate::engine::{Sink, SourceFile};
use crate::Violation;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Every rule name `// sc-check: allow(…)` may reference.
pub const KNOWN_RULES: [&str; 11] = [
    "deps",
    "panic",
    "determinism",
    "counters",
    "metrics",
    "sans_io",
    "hash_once",
    "locks",
    "alloc",
    "wire",
    "shards",
];

/// Path prefixes (relative, `/`-separated) rule 2 applies to.
const PANIC_SCOPES: [&str; 2] = ["crates/proxy/src", "crates/wire/src"];
/// Path prefixes rule 3 applies to.
const DETERMINISM_SCOPES: [&str; 3] = ["crates/sim/src", "crates/core/src", "crates/bloom/src"];
/// Ambient time / entropy tokens rule 3 forbids.
const DETERMINISM_TOKENS: [&str; 5] = [
    "Instant::now",
    "SystemTime::now",
    "rand::",
    "getrandom",
    "RandomState::new",
];
/// Exact files (relative, `/`-separated) rule 6 applies to: the
/// sans-I/O protocol modules — the machine facade, the shard/router
/// runtime it wraps, the deterministic simnet built on them, and the
/// scenario generators that feed the simnet its workloads.
const SANS_IO_SCOPES: [&str; 5] = [
    "crates/proxy/src/machine.rs",
    "crates/proxy/src/simnet.rs",
    "crates/proxy/src/shard.rs",
    "crates/proxy/src/router.rs",
    "crates/trace/src/scenario.rs",
];
/// Transport/clock tokens rule 6 forbids in those files.
const SANS_IO_TOKENS: [&str; 3] = ["std::net", "Instant::now", "thread::sleep"];
/// Exact files rule 7 applies to: the probe path, where every digest
/// must come through a `UrlKey` or `HashSpec`, plus the request-path
/// entry files listed in [`HASH_ONCE_ENTRY_SCOPES`].
const HASH_ONCE_SCOPES: [&str; 5] = [
    "crates/core/src/probe.rs",
    "crates/bloom/src/filter.rs",
    "crates/bloom/src/counting.rs",
    "crates/proxy/src/daemon.rs",
    "crates/proxy/src/router.rs",
];
/// Direct digest calls rule 7 forbids in those files. (`md5(` does not
/// match `md5_repeated(`, hence both tokens.)
const HASH_ONCE_TOKENS: [&str; 2] = ["md5(", "md5_repeated("];
/// Request-path files where rule 7 additionally hunts *re-keying*: the
/// daemon digests a client URL exactly once at request entry and
/// threads the resulting `UrlKey` through stripes, events, and the
/// router. Any other `UrlKey::new(` here digests a URL some caller
/// already keyed. The sanctioned entry digests (request entry, ICP
/// query answering, eviction victims) carry
/// `// sc-check: allow(hash_once)`.
const HASH_ONCE_ENTRY_SCOPES: [&str; 2] =
    ["crates/proxy/src/daemon.rs", "crates/proxy/src/router.rs"];
/// The re-keying token rule 7 hunts in those files.
const HASH_ONCE_ENTRY_TOKEN: &str = "UrlKey::new(";
/// Path prefix rule 8 (lock discipline) applies to.
const LOCKS_SCOPE: &str = "crates/proxy/src";
/// Calls that may block (or sleep) — forbidden while a `MutexGuard` is
/// live. Dot-prefixed so `try_send(`/`try_recv(` do not match.
const BLOCKING_TOKENS: [&str; 14] = [
    "thread::sleep",
    ".send(",
    ".send_to(",
    ".recv(",
    ".recv_timeout(",
    ".recv_deadline(",
    ".recv_from(",
    ".write(",
    ".write_all(",
    ".read(",
    ".read_exact(",
    ".flush(",
    ".accept(",
    ".connect(",
];
/// Exact files rule 9 (zero-alloc hot path) applies to: the per-probe
/// request path, which the sub-µs ROADMAP item needs allocation-free.
const ALLOC_SCOPES: [&str; 7] = [
    "crates/core/src/probe.rs",
    "crates/bloom/src/filter.rs",
    "crates/bloom/src/counting.rs",
    "crates/bloom/src/key.rs",
    "crates/bloom/src/hashing.rs",
    "crates/proxy/src/replica.rs",
    "crates/proxy/src/scratch.rs",
];
/// Allocation/formatting tokens rule 9 forbids there. `Arc::clone(&x)`
/// is the sanctioned way to bump a refcount without matching
/// `.clone()`; setup/COW sites use `// sc-check: allow(alloc)`.
const ALLOC_TOKENS: [&str; 6] = [
    "Vec::new(",
    "vec![",
    ".to_string()",
    "format!(",
    "Box::new(",
    ".clone()",
];
/// The wire definition file rule 10 (exhaustiveness) applies to.
const WIRE_FILE: &str = "crates/wire/src/icp.rs";
/// The shard data plane rule 11 applies to: each shard is owned by
/// exactly one protocol turn at a time, so in-shard locking is a
/// design smell, not a safety tool.
const SHARDS_FILE: &str = "crates/proxy/src/shard.rs";
/// Lock types rule 11 forbids there.
const SHARDS_TOKENS: [&str; 2] = ["Mutex", "RwLock"];
/// Registration call tokens for rule 5: a metric is born where one of
/// these methods is applied to a name literal. Snapshot *reads* use
/// `counter_value` / `gauge_value` / `histogram_value` and never match.
const METRIC_METHODS: [&str; 6] = [
    "counter",
    "counter_with",
    "gauge",
    "gauge_with",
    "histogram",
    "histogram_with",
];

/// State accumulated across files for the whole-tree rules.
#[derive(Default)]
pub struct CrossFile {
    /// Rule 5: metric name → registration sites.
    pub metric_sites: BTreeMap<String, Vec<(PathBuf, usize)>>,
    /// Rule 8: recorded nested lock acquisitions (held → taken).
    pub lock_edges: Vec<LockEdge>,
    /// Rule 10: `ICP_OP_*` constants and their encode/decode coverage.
    pub wire_consts: Vec<WireConst>,
    /// Rule 10: constants named anywhere in test context.
    pub wire_test_mentions: BTreeSet<String>,
}

/// One observed lock order: `second` acquired while `first` was held.
pub struct LockEdge {
    /// Normalized id of the lock already held.
    pub first: String,
    /// Normalized id of the lock acquired under it.
    pub second: String,
    /// File of the nested acquisition.
    pub file: PathBuf,
    /// Line of the nested acquisition.
    pub line: usize,
}

/// One `ICP_OP_*` constant and where rule 10 found it used.
pub struct WireConst {
    /// The constant's name.
    pub name: String,
    /// File declaring it.
    pub file: PathBuf,
    /// Declaration line.
    pub line: usize,
    /// Seen inside a `match` in an encode-side fn.
    pub encoded: bool,
    /// Seen inside a `match` in a decode-side fn.
    pub decoded: bool,
}

/// Run every per-file rule over `f`, appending violations to `out` and
/// whole-tree state to `cross`.
pub fn check_file(f: &SourceFile, out: &mut Vec<Violation>, cross: &mut CrossFile) {
    let mut sink = Sink::new(f, out);
    let unix = f.unix.as_str();

    if PANIC_SCOPES.iter().any(|s| unix.starts_with(s)) {
        for token in [".unwrap()", ".expect("] {
            for line in f.token_lines(token) {
                sink.emit(
                    "panic",
                    line,
                    format!(
                        "`{token}` in a runtime path; propagate a Result (a bad datagram must not kill the daemon)"
                    ),
                );
            }
        }
    }
    if DETERMINISM_SCOPES.iter().any(|s| unix.starts_with(s)) {
        for token in DETERMINISM_TOKENS {
            for line in f.token_lines(token) {
                sink.emit(
                    "determinism",
                    line,
                    format!(
                        "`{token}` introduces ambient nondeterminism; drive time/entropy from the trace or a seeded Rng"
                    ),
                );
            }
        }
    }
    if SANS_IO_SCOPES.contains(&unix) {
        for token in SANS_IO_TOKENS {
            for line in f.token_lines(token) {
                sink.emit(
                    "sans_io",
                    line,
                    format!(
                        "`{token}` in a sans-I/O protocol module; sockets, wall clocks and sleeps belong to the daemon shell or the simnet scheduler"
                    ),
                );
            }
        }
    }
    if HASH_ONCE_SCOPES.contains(&unix) {
        for token in HASH_ONCE_TOKENS {
            for line in f.token_lines(token) {
                sink.emit(
                    "hash_once",
                    line,
                    format!(
                        "direct `{token}…)` on the probe path; digests are computed once at UrlKey construction or inside HashSpec — probe via the key/indices APIs"
                    ),
                );
            }
        }
    }
    if HASH_ONCE_ENTRY_SCOPES.contains(&unix) {
        for line in f.token_lines(HASH_ONCE_ENTRY_TOKEN) {
            sink.emit(
                "hash_once",
                line,
                format!(
                    "`{HASH_ONCE_ENTRY_TOKEN}…)` downstream of request entry re-digests a URL the request already keyed; thread the entry `UrlKey` through, or mark a sanctioned entry digest with `// sc-check: allow(hash_once)`"
                ),
            );
        }
    }
    if unix == SHARDS_FILE {
        for token in SHARDS_TOKENS {
            for line in bounded_token_lines(f, token) {
                sink.emit(
                    "shards",
                    line,
                    format!(
                        "`{token}` inside a shard; shards are single-owner slices — cross-shard coordination belongs to the router, and shared state behind locks belongs to the daemon shell"
                    ),
                );
            }
        }
    }
    if unix.ends_with("bloom/src/counting.rs") {
        check_counters(f, &mut sink);
    }
    if ALLOC_SCOPES.contains(&unix) {
        for token in ALLOC_TOKENS {
            for line in bounded_token_lines(f, token) {
                sink.emit(
                    "alloc",
                    line,
                    format!(
                        "`{token}…` allocates on the probe hot path; preallocate/reuse a buffer (or `Arc::clone`), or mark a setup/COW site with `// sc-check: allow(alloc)`"
                    ),
                );
            }
        }
    }
    if unix.starts_with(LOCKS_SCOPE) && !f.file_is_test {
        check_locks(f, &mut sink, &mut cross.lock_edges);
    }
    for (name, line) in metric_registrations(f) {
        cross
            .metric_sites
            .entry(name)
            .or_default()
            .push((f.rel.clone(), line));
    }
    if unix == WIRE_FILE {
        collect_wire_consts(f, cross);
    }
    collect_wire_mentions(f, cross);
}

/// Judge the whole-tree rules once every file has been scanned.
pub fn finish(files: &[SourceFile], cross: &CrossFile, out: &mut Vec<Violation>) {
    let by_rel: BTreeMap<&std::path::Path, &SourceFile> =
        files.iter().map(|f| (f.rel.as_path(), f)).collect();
    let mut emit = |rule: &'static str, file: &PathBuf, line: usize, message: String| {
        if let Some(f) = by_rel.get(file.as_path()) {
            if f.suppressed(rule, line) {
                return;
            }
        }
        out.push(Violation {
            rule,
            file: file.clone(),
            line,
            message,
        });
    };

    // Rule 5: every duplicated metric name, flagged at each site.
    for (name, at) in &cross.metric_sites {
        if at.len() < 2 {
            continue;
        }
        for (file, line) in at {
            emit(
                "metrics",
                file,
                *line,
                format!(
                    "metric `{name}` is registered at {} sites; register once and share the handle (the registry get-or-creates by name)",
                    at.len()
                ),
            );
        }
    }

    // Rule 8: lock-order inversions — any pair of edges A→B and B→A,
    // flagged at both acquisition sites.
    let mut seen: BTreeSet<(PathBuf, usize, String)> = BTreeSet::new();
    for (i, e1) in cross.lock_edges.iter().enumerate() {
        for e2 in &cross.lock_edges[i + 1..] {
            if e1.first == e2.second && e1.second == e2.first && e1.first != e1.second {
                for (site, other) in [(e1, e2), (e2, e1)] {
                    let msg = format!(
                        "lock order inversion: `{}` acquired while `{}` is held here, but `{}` is acquired under `{}` at {}:{}",
                        site.second,
                        site.first,
                        other.second,
                        other.first,
                        other.file.display(),
                        other.line
                    );
                    if seen.insert((site.file.clone(), site.line, msg.clone())) {
                        emit("locks", &site.file, site.line, msg);
                    }
                }
            }
        }
    }

    // Rule 10: every ICP_OP_* constant must be wired end-to-end.
    for c in &cross.wire_consts {
        let mut missing = Vec::new();
        if !c.encoded {
            missing.push("an encode-side match arm (`to_u8`/`*encode*`)");
        }
        if !c.decoded {
            missing.push("a decode-side match arm (`from_u8`/`*decode*`)");
        }
        if !cross.wire_test_mentions.contains(&c.name) {
            missing.push("any test");
        }
        if !missing.is_empty() {
            emit(
                "wire",
                &c.file,
                c.line,
                format!(
                    "opcode constant `{}` is missing from {}; a half-wired opcode ships undecodable or untested",
                    c.name,
                    missing.join(" and ")
                ),
            );
        }
    }
}

/// The unused-suppression lint (plus unknown rule names), run last so
/// suppressions consumed by [`finish`] count as used.
pub fn check_suppressions(files: &[SourceFile], out: &mut Vec<Violation>) {
    for f in files {
        for s in &f.suppressions {
            for r in &s.rules {
                if !KNOWN_RULES.contains(&r.as_str()) {
                    out.push(Violation {
                        rule: "suppression",
                        file: f.rel.clone(),
                        line: s.line,
                        message: format!(
                            "unknown rule `{r}` in sc-check allow (known: {})",
                            KNOWN_RULES.join(", ")
                        ),
                    });
                }
            }
            if !s.used.get() && s.rules.iter().any(|r| KNOWN_RULES.contains(&r.as_str())) {
                out.push(Violation {
                    rule: "suppression",
                    file: f.rel.clone(),
                    line: s.line,
                    message: format!(
                        "suppression `allow({})` never fired; remove it",
                        s.rules.join(", ")
                    ),
                });
            }
        }
    }
}

/// Like [`SourceFile::token_lines`], but a token starting with an
/// identifier character must sit on a word boundary — so `Vec::new(`
/// does not match inside `BitVec::new(`.
fn bounded_token_lines(f: &SourceFile, token: &str) -> Vec<usize> {
    let needs_boundary = token
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    let mut lines = Vec::new();
    for (idx, line) in f.stripped.lines().enumerate() {
        let line_no = idx + 1;
        if f.is_test_line(line_no) {
            continue;
        }
        let mut at = 0usize;
        while let Some(p) = line[at..].find(token) {
            let start = at + p;
            at = start + 1;
            if needs_boundary && start > 0 && is_ident(line.as_bytes()[start - 1]) {
                continue;
            }
            lines.push(line_no);
            break; // one violation per token per line
        }
    }
    lines
}

// ---------------------------------------------------------------------------
// Rule 4: counter safety
// ---------------------------------------------------------------------------

fn check_counters(f: &SourceFile, sink: &mut Sink<'_>) {
    for token in ["wrapping_add(", "wrapping_sub("] {
        for line in f.token_lines(token) {
            sink.emit(
                "counters",
                line,
                format!(
                    "`{token}…)` on a 4-bit counter wraps silently; use saturating_*/checked_* (Section V-C)"
                ),
            );
        }
    }
    // Counter updates fed by bare infix +/- must instead go through a
    // bounded op.
    for (idx, line) in f.stripped.lines().enumerate() {
        let line_no = idx + 1;
        if f.is_test_line(line_no) {
            continue;
        }
        let Some(pos) = line.find("set_count(") else {
            continue;
        };
        let args = &line[pos + "set_count(".len()..];
        let bounded = args.contains("saturating_") || args.contains("checked_");
        let bytes = args.as_bytes();
        let bare_arith = bytes.iter().enumerate().any(|(k, &c)| {
            (c == b'+' || c == b'-')
                && bytes.get(k + 1) != Some(&c)
                && bytes.get(k + 1) != Some(&b'=')
                && bytes.get(k + 1) != Some(&b'>') // `->` is not arithmetic
                && (k == 0 || bytes[k - 1] != c)
        });
        if bare_arith && !bounded {
            sink.emit(
                "counters",
                line_no,
                "bare +/- arithmetic feeding set_count; use saturating_*/checked_* (Section V-C)"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: metric registration sites (token-based)
// ---------------------------------------------------------------------------

/// All `(metric name, 1-based line)` registrations in one file, test
/// context excluded. Token-based: `.` `method` `(` `"name"`, so the
/// name literal may even sit on the next line.
pub fn metric_registrations(f: &SourceFile) -> Vec<(String, usize)> {
    use crate::lexer::TokenKind;
    let sig: Vec<&crate::lexer::Token> = f
        .tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut found = Vec::new();
    for w in sig.windows(4) {
        let [dot, method, open, lit] = w else {
            continue;
        };
        if dot.kind == TokenKind::Punct
            && dot.text(&f.src) == "."
            && method.kind == TokenKind::Ident
            && METRIC_METHODS.contains(&method.text(&f.src))
            && open.kind == TokenKind::Open
            && open.text(&f.src) == "("
            && lit.kind == TokenKind::Str
            && !f.is_test_line(method.line)
        {
            let text = lit.text(&f.src);
            if let (Some(a), Some(z)) = (text.find('"'), text.rfind('"')) {
                if z > a + 1 {
                    found.push((text[a + 1..z].to_string(), method.line));
                }
            }
        }
    }
    found
}

// ---------------------------------------------------------------------------
// Rule 8: lock discipline
// ---------------------------------------------------------------------------

struct Guard {
    name: String,
    lock_id: String,
    decl_line: usize,
    /// Byte offset just past the binding statement's `;`.
    live_from: usize,
}

fn check_locks(f: &SourceFile, sink: &mut Sink<'_>, edges: &mut Vec<LockEdge>) {
    let bytes = f.stripped.as_bytes();
    let closes = brace_matches(bytes);
    for item in &f.fns {
        if item.is_test {
            continue;
        }
        let Some((lo, hi)) = item.body else {
            continue;
        };
        let mut stack: Vec<usize> = Vec::new();
        let mut i = lo;
        while i < hi {
            match bytes[i] {
                b'{' => {
                    stack.push(i);
                    i += 1;
                }
                b'}' => {
                    stack.pop();
                    i += 1;
                }
                b'l' if word_at(bytes, i, "let") => {
                    let enclosing = stack.last().copied().unwrap_or(lo);
                    let block_end = closes.get(&enclosing).copied().unwrap_or(hi).min(hi);
                    if let Some(g) = parse_guard(f, i, hi) {
                        analyze_live_range(f, sink, edges, &g, block_end);
                    }
                    i += 3;
                }
                _ => i += 1,
            }
        }
    }
}

/// `open brace byte → close brace byte` over stripped text (literal
/// interiors are blanked, so every brace is structural).
fn brace_matches(b: &[u8]) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c == b'{' {
            stack.push(i);
        } else if c == b'}' {
            if let Some(o) = stack.pop() {
                map.insert(o, i);
            }
        }
    }
    map
}

fn word_at(b: &[u8], i: usize, word: &str) -> bool {
    let w = word.as_bytes();
    if i + w.len() > b.len() || &b[i..i + w.len()] != w {
        return false;
    }
    let before_ok = i == 0 || !is_ident(b[i - 1]);
    let after_ok = i + w.len() >= b.len() || !is_ident(b[i + w.len()]);
    before_ok && after_ok
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// At a `let` keyword: if this is a simple-ident binding whose
/// initializer's final value is a lock acquisition, return the guard.
/// Pattern bindings (`let Some(g) = …`, tuples) and temporaries whose
/// lock call is not the final value (`lock(&x).len()`) are not guards.
fn parse_guard(f: &SourceFile, let_pos: usize, hi: usize) -> Option<Guard> {
    let s = &f.stripped;
    let b = s.as_bytes();
    let mut j = let_pos + 3;
    let skip_ws = |j: &mut usize| {
        while *j < hi && b[*j].is_ascii_whitespace() {
            *j += 1;
        }
    };
    skip_ws(&mut j);
    if word_at(b, j, "mut") {
        j += 3;
        skip_ws(&mut j);
    }
    let name_start = j;
    while j < hi && is_ident(b[j]) {
        j += 1;
    }
    if j == name_start || b[name_start].is_ascii_digit() {
        return None;
    }
    let name = s[name_start..j].to_string();
    skip_ws(&mut j);
    if j >= hi || (b[j] != b':' && b[j] != b'=') {
        return None; // pattern binding or malformed
    }
    // Find the top-level `=` (skipping a type annotation), then the
    // statement-ending `;`.
    let mut depth = 0i32;
    while j < hi {
        match b[j] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            b'=' if depth == 0 => {
                if b.get(j + 1) == Some(&b'=') {
                    j += 2;
                    continue;
                }
                break;
            }
            b';' if depth == 0 => return None, // `let x;`
            _ => {}
        }
        j += 1;
    }
    if j >= hi {
        return None;
    }
    let init_start = j + 1;
    let mut k = init_start;
    let mut depth = 0i32;
    while k < hi {
        match b[k] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            b';' if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    if k >= hi {
        return None;
    }
    let lock_id = lock_acquisition_id(&s[init_start..k])?;
    Some(Guard {
        name,
        lock_id,
        decl_line: f.line_of(let_pos),
        live_from: k + 1,
    })
}

/// If this expression's *final value* is a lock acquisition — a
/// trailing `.lock()` method or `lock(target)` free-fn call, possibly
/// through `?` / `.unwrap*()` / `.expect()` adapters — return the
/// normalized lock target.
fn lock_acquisition_id(init: &str) -> Option<String> {
    let mut s = init.trim();
    loop {
        s = s.trim_end();
        while let Some(rest) = s.strip_suffix('?') {
            s = rest.trim_end();
        }
        if !s.ends_with(')') {
            return None;
        }
        let open = matching_open_paren(s)?;
        let callee = s[..open].trim_end();
        let mut adapted = false;
        for ad in [
            ".unwrap_or_else",
            ".unwrap_or_default",
            ".unwrap_or",
            ".unwrap",
            ".expect",
        ] {
            if let Some(pre) = callee.strip_suffix(ad) {
                s = pre;
                adapted = true;
                break;
            }
        }
        if adapted {
            continue;
        }
        if let Some(recv) = callee.strip_suffix(".lock") {
            return Some(normalize_lock_target(recv));
        }
        let last = callee.rsplit("::").next().unwrap_or(callee);
        let path_like = callee
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
        if last == "lock" && path_like && !callee.is_empty() {
            return Some(normalize_lock_target(&s[open + 1..s.len() - 1]));
        }
        return None;
    }
}

/// Backward-scan for the `(` matching the expression's trailing `)`.
fn matching_open_paren(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut depth = 0i32;
    for i in (0..b.len()).rev() {
        match b[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Canonical lock identity from its target expression: strip borrows,
/// `mut`, derefs and whitespace so `&inner.machine`, `& inner.machine`
/// and `*inner.machine` compare equal.
fn normalize_lock_target(t: &str) -> String {
    let mut t = t.trim();
    loop {
        let before = t;
        t = t.trim_start_matches('&').trim_start_matches('*').trim();
        if let Some(rest) = t.strip_prefix("mut ") {
            t = rest.trim();
        }
        if t == before {
            break;
        }
    }
    t.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Scan a guard's live range (binding → end of enclosing block, or an
/// explicit `drop(guard)`) for blocking calls and nested acquisitions.
fn analyze_live_range(
    f: &SourceFile,
    sink: &mut Sink<'_>,
    edges: &mut Vec<LockEdge>,
    g: &Guard,
    block_end: usize,
) {
    let live_end = find_drop(&f.stripped, g.live_from, block_end, &g.name).unwrap_or(block_end);
    let region = &f.stripped[g.live_from..live_end.max(g.live_from)];
    for token in BLOCKING_TOKENS {
        let mut from = 0usize;
        while let Some(p) = region[from..].find(token) {
            let abs = g.live_from + from + p;
            // `thread::sleep` has no call-shape prefix; the dot tokens
            // embed their own boundary.
            sink.emit(
                "locks",
                f.line_of(abs),
                format!(
                    "`{token}…` while guard `{}` of lock `{}` (taken at line {}) is live; narrow the guard's block or drop() it first",
                    g.name, g.lock_id, g.decl_line
                ),
            );
            from += p + token.len();
        }
    }
    for (abs, other) in find_acquisitions(&f.stripped, g.live_from, live_end) {
        if other == g.lock_id {
            sink.emit(
                "locks",
                f.line_of(abs),
                format!(
                    "lock `{}` acquired again while guard `{}` already holds it (taken at line {}); self-deadlock",
                    g.lock_id, g.name, g.decl_line
                ),
            );
        } else {
            edges.push(LockEdge {
                first: g.lock_id.clone(),
                second: other,
                file: f.rel.clone(),
                line: f.line_of(abs),
            });
        }
    }
}

/// First `drop(name)` statement position within the range, if any.
fn find_drop(s: &str, from: usize, to: usize, name: &str) -> Option<usize> {
    let b = s.as_bytes();
    let region = &s[from..to.max(from)];
    let mut at = 0usize;
    while let Some(p) = region[at..].find("drop") {
        let abs = from + at + p;
        if word_at(b, abs, "drop") {
            let mut j = abs + 4;
            while j < to && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < to && b[j] == b'(' {
                if let Some(close) = matching_close_paren(b, j, to) {
                    if s[j + 1..close].trim() == name {
                        return Some(abs);
                    }
                }
            }
        }
        at += p + 4;
    }
    None
}

fn matching_close_paren(b: &[u8], open: usize, to: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().take(to).skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Every lock acquisition inside a byte range: `(position, lock id)`.
/// Matches the workspace's `lock(&target)` helper (free fn, any path)
/// and the inherent `.lock()` method.
fn find_acquisitions(s: &str, from: usize, to: usize) -> Vec<(usize, String)> {
    let b = s.as_bytes();
    let region = &s[from..to.max(from)];
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some(p) = region[at..].find("lock(") {
        let abs = from + at + p;
        at += p + 4;
        let before = if abs == 0 { b' ' } else { b[abs - 1] };
        if is_ident(before) {
            continue; // unlock(, relock( …
        }
        if before == b'.' {
            // Method form: walk the receiver chain backward.
            let mut r = abs - 1;
            while r > 0 && (is_ident(b[r - 1]) || b[r - 1] == b'.' || b[r - 1] == b':') {
                r -= 1;
            }
            let recv = s[r..abs - 1].trim_matches(|c| c == '.' || c == ':');
            if !recv.is_empty() {
                out.push((abs, normalize_lock_target(recv)));
            }
            continue;
        }
        // Free-fn form: the argument names the lock.
        if let Some(close) = matching_close_paren(b, abs + 4, to) {
            let arg = &s[abs + 5..close];
            if !arg.trim().is_empty() {
                out.push((abs, normalize_lock_target(arg)));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 10: wire exhaustiveness
// ---------------------------------------------------------------------------

/// In the wire file: find `const ICP_OP_*` declarations and whether
/// each appears in a `match` block of an encode-side and a decode-side
/// function.
fn collect_wire_consts(f: &SourceFile, cross: &mut CrossFile) {
    use crate::lexer::TokenKind;
    let sig: Vec<&crate::lexer::Token> = f
        .tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut consts = Vec::new();
    for w in sig.windows(2) {
        if w[0].kind == TokenKind::Ident
            && w[0].text(&f.src) == "const"
            && w[1].kind == TokenKind::Ident
            && w[1].text(&f.src).starts_with("ICP_OP_")
        {
            consts.push((w[1].text(&f.src).to_string(), w[1].line));
        }
    }
    if consts.is_empty() {
        return;
    }
    let encode_ranges = match_ranges_of(f, |n| n == "to_u8" || n.contains("encode"));
    let decode_ranges = match_ranges_of(f, |n| n == "from_u8" || n.contains("decode"));
    let in_ranges = |ranges: &[(usize, usize)], name: &str| {
        ranges.iter().any(|&(lo, hi)| {
            let region = &f.stripped[lo..hi];
            let mut at = 0usize;
            while let Some(p) = region[at..].find(name) {
                let abs = lo + at + p;
                if word_at(f.stripped.as_bytes(), abs, name) {
                    return true;
                }
                at += p + name.len();
            }
            false
        })
    };
    for (name, line) in consts {
        let encoded = in_ranges(&encode_ranges, &name);
        let decoded = in_ranges(&decode_ranges, &name);
        cross.wire_consts.push(WireConst {
            name,
            file: f.rel.clone(),
            line,
            encoded,
            decoded,
        });
    }
}

/// Byte ranges of every `match { … }` block inside non-test fns whose
/// name satisfies `pick`.
fn match_ranges_of(f: &SourceFile, pick: impl Fn(&str) -> bool) -> Vec<(usize, usize)> {
    let b = f.stripped.as_bytes();
    let closes = brace_matches(b);
    let mut out = Vec::new();
    for item in &f.fns {
        if item.is_test || !pick(&item.name) {
            continue;
        }
        let Some((lo, hi)) = item.body else {
            continue;
        };
        let region = &f.stripped[lo..hi];
        let mut at = 0usize;
        while let Some(p) = region[at..].find("match") {
            let abs = lo + at + p;
            at += p + 5;
            if !word_at(b, abs, "match") {
                continue;
            }
            // The match block is the first `{` after the scrutinee.
            let mut j = abs + 5;
            while j < hi && b[j] != b'{' {
                j += 1;
            }
            if j < hi {
                let close = closes.get(&j).copied().unwrap_or(hi).min(hi);
                out.push((j, close + 1));
            }
        }
    }
    out
}

/// Record every `ICP_OP_*` identifier appearing in test context (any
/// file) for rule 10's "named in at least one test" leg.
fn collect_wire_mentions(f: &SourceFile, cross: &mut CrossFile) {
    for (idx, line) in f.stripped.lines().enumerate() {
        if !f.is_test_line(idx + 1) {
            continue;
        }
        let mut at = 0usize;
        while let Some(p) = line[at..].find("ICP_OP_") {
            let start = at + p;
            let rest = &line[start..];
            let end = rest
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            // Require a word boundary on the left.
            let left_ok = start == 0 || !is_ident(line.as_bytes()[start - 1]);
            if left_ok && end > "ICP_OP_".len() {
                cross.wire_test_mentions.insert(rest[..end].to_string());
            }
            at = start + end.max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn proxy_file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("crates/proxy/src/daemon.rs"), src.to_string())
    }

    fn run(src: &str) -> (Vec<Violation>, CrossFile) {
        let f = proxy_file(src);
        let mut out = Vec::new();
        let mut cross = CrossFile::default();
        check_file(&f, &mut out, &mut cross);
        (out, cross)
    }

    #[test]
    fn guard_id_recognizes_helper_and_method_forms() {
        assert_eq!(
            lock_acquisition_id("lock(&inner.machine)").as_deref(),
            Some("inner.machine")
        );
        assert_eq!(
            lock_acquisition_id("self.current.lock().unwrap_or_else(|e| e.into_inner())")
                .as_deref(),
            Some("self.current")
        );
        assert_eq!(lock_acquisition_id("m.lock().unwrap()?").as_deref(), Some("m"));
        assert_eq!(lock_acquisition_id("m.lock().expect(\"poisoned\")").as_deref(), Some("m"));
        // Temporaries: the lock call is not the final value.
        assert_eq!(lock_acquisition_id("lock(&inner.cache).lookup(&url)"), None);
        assert_eq!(lock_acquisition_id("lock(&inner.cache).len()"), None);
        assert_eq!(lock_acquisition_id("compute(&x)"), None);
        assert_eq!(lock_acquisition_id("42"), None);
    }

    #[test]
    fn sleep_under_guard_is_flagged_drop_clears_it() {
        let (out, _) = run(
            "fn bad(m: &std::sync::Mutex<u32>) {\n\
             \x20   let g = lock(m);\n\
             \x20   std::thread::sleep(std::time::Duration::from_millis(1));\n\
             \x20   let _ = *g;\n\
             }\n\
             fn good(m: &std::sync::Mutex<u32>) {\n\
             \x20   let g = lock(m);\n\
             \x20   drop(g);\n\
             \x20   std::thread::sleep(std::time::Duration::from_millis(1));\n\
             }\n",
        );
        let locks: Vec<_> = out.iter().filter(|v| v.rule == "locks").collect();
        assert_eq!(locks.len(), 1, "{out:?}");
        assert_eq!(locks[0].line, 3);
    }

    #[test]
    fn guard_dies_at_end_of_enclosing_block() {
        let (out, _) = run(
            "fn scoped(m: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {\n\
             \x20   {\n\
             \x20       let g = lock(m);\n\
             \x20       let _ = *g;\n\
             \x20   }\n\
             \x20   let _ = tx.send(1);\n\
             }\n",
        );
        assert!(
            out.iter().all(|v| v.rule != "locks"),
            "send after the guard's block is fine: {out:?}"
        );
    }

    #[test]
    fn nested_same_lock_is_self_deadlock_and_pairs_record_edges() {
        let (out, cross) = run(
            "fn twice(s: &S) {\n\
             \x20   let a = lock(&s.a);\n\
             \x20   let b = lock(&s.a);\n\
             \x20   let _ = (*a, *b);\n\
             }\n\
             fn ordered(s: &S) {\n\
             \x20   let a = lock(&s.a);\n\
             \x20   let b = lock(&s.b);\n\
             \x20   let _ = (*a, *b);\n\
             }\n",
        );
        let dbl: Vec<_> = out.iter().filter(|v| v.message.contains("self-deadlock")).collect();
        assert_eq!(dbl.len(), 1, "{out:?}");
        assert_eq!(dbl[0].line, 3);
        assert!(
            cross.lock_edges.iter().any(|e| e.first == "s.a" && e.second == "s.b"),
            "ordered acquisition recorded as an edge"
        );
    }

    #[test]
    fn inversion_flagged_at_both_sites() {
        let src = "fn ab(s: &S) {\n\
             \x20   let a = lock(&s.a);\n\
             \x20   let b = lock(&s.b);\n\
             \x20   let _ = (*a, *b);\n\
             }\n\
             fn ba(s: &S) {\n\
             \x20   let b = lock(&s.b);\n\
             \x20   let a = lock(&s.a);\n\
             \x20   let _ = (*a, *b);\n\
             }\n";
        let f = proxy_file(src);
        let mut out = Vec::new();
        let mut cross = CrossFile::default();
        check_file(&f, &mut out, &mut cross);
        let files = [f];
        finish(&files, &cross, &mut out);
        let inv: Vec<_> = out.iter().filter(|v| v.message.contains("inversion")).collect();
        assert_eq!(inv.len(), 2, "{out:?}");
        assert_eq!(inv[0].line, 3);
        assert_eq!(inv[1].line, 8);
    }

    #[test]
    fn try_send_and_temporaries_do_not_trip_rule_8() {
        let (out, _) = run(
            "fn ok(s: &S, done: &std::sync::mpsc::SyncSender<u32>) {\n\
             \x20   let g = lock(&s.a);\n\
             \x20   let _ = done.try_send(*g);\n\
             \x20   let n = lock2(&s.b);\n\
             }\n",
        );
        assert!(out.iter().all(|v| v.rule != "locks"), "{out:?}");
    }

    #[test]
    fn locks_inside_shard_rs_are_flagged_elsewhere_not() {
        let src = "struct Shard {\n\
             \x20   dir: std::sync::Mutex<Directory>,\n\
             \x20   replicas: RwLock<Replicas>,\n\
             }\n";
        let f = SourceFile::parse(
            PathBuf::from("crates/proxy/src/shard.rs"),
            src.to_string(),
        );
        let mut out = Vec::new();
        let mut cross = CrossFile::default();
        check_file(&f, &mut out, &mut cross);
        let shards: Vec<_> = out.iter().filter(|v| v.rule == "shards").collect();
        assert_eq!(shards.len(), 2, "{out:?}");
        assert_eq!(shards[0].line, 2);
        assert_eq!(shards[1].line, 3);

        // The same tokens one directory over are the daemon's business.
        let (out, _) = run(src);
        assert!(out.iter().all(|v| v.rule != "shards"), "{out:?}");
    }

    #[test]
    fn metric_registration_spanning_lines_is_found() {
        let f = SourceFile::parse(
            PathBuf::from("crates/obs/src/lib.rs"),
            "fn wire(r: &Registry) {\n    r.counter(\n        \"sc_a_total\",\n    );\n}\n"
                .to_string(),
        );
        let got = metric_registrations(&f);
        assert_eq!(got, vec![("sc_a_total".to_string(), 2)]);
    }

    #[test]
    fn wire_consts_coverage_resolves_per_side() {
        let f = SourceFile::parse(
            PathBuf::from("crates/wire/src/icp.rs"),
            "pub const ICP_OP_QUERY: u8 = 1;\n\
             pub const ICP_OP_HIT: u8 = 2;\n\
             fn to_u8(op: Op) -> u8 {\n\
             \x20   match op { Op::Query => ICP_OP_QUERY, Op::Hit => ICP_OP_HIT }\n\
             }\n\
             fn from_u8(v: u8) -> Option<Op> {\n\
             \x20   match v { ICP_OP_QUERY => Some(Op::Query), _ => None }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { assert_eq!(super::ICP_OP_QUERY, 1); }\n\
             }\n"
                .to_string(),
        );
        let mut out = Vec::new();
        let mut cross = CrossFile::default();
        check_file(&f, &mut out, &mut cross);
        let files = [f];
        finish(&files, &cross, &mut out);
        let wire: Vec<_> = out.iter().filter(|v| v.rule == "wire").collect();
        assert_eq!(wire.len(), 1, "{out:?}");
        assert_eq!(wire[0].line, 2);
        assert!(wire[0].message.contains("ICP_OP_HIT"));
        assert!(wire[0].message.contains("decode-side"));
        assert!(wire[0].message.contains("any test"));
    }
}
