//! `sc-check` — the workspace's static-analysis gate.
//!
//! Seven rules, each guarding an invariant the reproduction depends on:
//!
//! 1. **Dependency firewall** (`deps`): every `Cargo.toml` may only
//!    reference path-local workspace crates. No registry crates means
//!    the build needs zero network — the property that makes tier-1
//!    verification reproducible anywhere.
//! 2. **Panic hygiene** (`panic`): no `.unwrap()` / `.expect(` in the
//!    runtime paths of `crates/proxy` and `crates/wire`. A malformed
//!    ICP datagram or a peer hangup must degrade gracefully (the
//!    paper's false-hit handling argument), never take the daemon down.
//! 3. **Determinism** (`determinism`): no `Instant::now` /
//!    `SystemTime::now` / ambient entropy inside `crates/sim`,
//!    `crates/core`, `crates/bloom`. Simulated time comes from the
//!    trace; hashing comes from MD5 — results must replay bit-for-bit.
//! 4. **Counter safety** (`counters`): all 4-bit counter arithmetic in
//!    `bloom/counting.rs` uses `saturating_*` / `checked_*` ops
//!    (Section V-C bounds overflow probability assuming counters pin at
//!    their maximum instead of wrapping).
//! 5. **Metric registry hygiene** (`metrics`): every sc-obs metric name
//!    is registered at exactly one source site across the workspace.
//!    The registry get-or-creates by name, so a second registration
//!    site silently shares (or, on a kind clash, detaches from) the
//!    first — exposition stays ambiguous instead of failing. One site
//!    per name keeps every exposition line attributable.
//! 6. **Sans-I/O boundary** (`sans_io`): the protocol machine and its
//!    simulation harness (`proxy/src/machine.rs`, `proxy/src/simnet.rs`)
//!    must not touch `std::net`, `Instant::now`, or `thread::sleep`.
//!    Every seeded-simulation guarantee — bit-for-bit replay, the
//!    one-line failure repro — rests on those modules seeing only
//!    `VirtualTime` and in-memory datagrams; one stray socket or wall
//!    clock silently reintroduces the flakiness the harness exists to
//!    kill.
//! 7. **Hash-once probe pipeline** (`hash_once`): the probe-path files
//!    (`core/src/probe.rs`, `bloom/src/filter.rs`, `bloom/src/counting.rs`)
//!    must not call `md5(` / `md5_repeated(` directly. URL digests are
//!    computed exactly once, at `UrlKey` construction (`bloom/src/key.rs`)
//!    or inside `HashSpec` (`bloom/src/hashing.rs`); a direct call on
//!    the probe path silently reintroduces the `2 × k × peers`
//!    per-request hashing cost the pipeline exists to eliminate.
//!
//! Everything here is hand-rolled on `std` — a line-oriented
//! TOML-subset reader and a lexical Rust scanner, no `syn`, no
//! dependencies — so the gate itself can never break the firewall it
//! enforces. `#[cfg(test)]` items are exempt from rules 2–4, 6 and 7:
//! tests may unwrap (and a machine test may name a banned token in an
//! assertion).

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short rule name: `deps`, `panic`, `determinism`, `counters`,
    /// `metrics`, `sans_io`, `hash_once`.
    pub rule: &'static str,
    /// File the violation is in, relative to the checked root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// What a full run looked at and found.
#[derive(Debug)]
pub struct Report {
    /// `Cargo.toml` files scanned.
    pub manifests: usize,
    /// `.rs` files scanned.
    pub sources: usize,
    /// Everything the rules flagged.
    pub violations: Vec<Violation>,
}

/// Directory names never descended into.
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | ".git" | "fixtures" | "results" | ".cargo")
}

/// Recursively collect files under `root` matching `want`, skipping
/// build/VCS/fixture trees, in sorted order for stable output.
fn collect(root: &Path, want: &dyn Fn(&Path) -> bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !skip_dir(name) {
                collect(&path, want, out);
            }
        } else if want(&path) {
            out.push(path);
        }
    }
}

/// Run every rule against the workspace at `root`. Returns all
/// violations, manifest rules first, then source rules in path order.
pub fn check_repo(root: &Path) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut manifests = Vec::new();
    collect(
        root,
        &|p| p.file_name().is_some_and(|n| n == "Cargo.toml"),
        &mut manifests,
    );
    let mut sources = Vec::new();
    collect(
        root,
        &|p| p.extension().is_some_and(|e| e == "rs"),
        &mut sources,
    );

    let mut violations = Vec::new();
    for m in &manifests {
        check_manifest(root, m, &mut violations);
    }
    // Rule 5 accumulates registration sites across every file and is
    // judged after the whole tree has been walked.
    let mut metric_sites: BTreeMap<String, Vec<(PathBuf, usize)>> = BTreeMap::new();
    for s in &sources {
        check_source(root, s, &mut violations);
        collect_metric_sites(root, s, &mut metric_sites);
    }
    check_metric_sites(&metric_sites, &mut violations);
    Ok(Report {
        manifests: manifests.len(),
        sources: sources.len(),
        violations,
    })
}

// ---------------------------------------------------------------------------
// Rule 1: dependency firewall
// ---------------------------------------------------------------------------

/// Which kind of dependency table a `[section]` header opens, if any.
///
/// Covers `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]`, `[target.'…'.dependencies]`, and their
/// single-dependency dotted forms (`[dependencies.foo]`).
fn dep_section(header: &str) -> Option<DepSection> {
    let h = header.trim();
    for kind in ["dependencies", "dev-dependencies", "build-dependencies"] {
        if let Some(pos) = h.find(kind) {
            let before_ok = pos == 0 || h.as_bytes()[pos - 1] == b'.';
            let after = &h[pos + kind.len()..];
            if before_ok && after.is_empty() {
                return Some(DepSection::Table);
            }
            if before_ok && after.starts_with('.') {
                return Some(DepSection::Single(after[1..].to_string()));
            }
        }
    }
    None
}

enum DepSection {
    /// `[dependencies]`-style: each `name = …` line is one dependency.
    Table,
    /// `[dependencies.foo]`-style: the whole section is one dependency.
    Single(String),
}

/// Is a single dependency value (the right-hand side of `name = …`)
/// path-local? Accepts inline tables carrying a `path` key and
/// `{ workspace = true }` references. Bare version strings and inline
/// tables with only `version`/`features` are registry pulls.
fn value_is_local(value: &str) -> bool {
    let v = value.trim();
    if !v.starts_with('{') {
        return false;
    }
    inline_table_keys(v)
        .iter()
        .any(|(k, val)| k == "path" || (k == "workspace" && val.trim() == "true"))
}

/// Split a single-line inline table `{ a = 1, b = "x" }` into
/// (key, value) pairs. Good enough for Cargo manifests: values never
/// contain top-level commas except inside `[…]` arrays or strings.
fn inline_table_keys(v: &str) -> Vec<(String, String)> {
    let inner = v
        .trim()
        .trim_start_matches('{')
        .trim_end_matches('}')
        .trim();
    let mut pairs = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut cur = String::new();
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '[' | '{' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ']' | '}' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            ',' if !in_str && depth == 0 => {
                push_pair(&mut pairs, &cur);
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    push_pair(&mut pairs, &cur);
    pairs
}

fn push_pair(pairs: &mut Vec<(String, String)>, entry: &str) {
    if let Some((k, val)) = entry.split_once('=') {
        pairs.push((k.trim().to_string(), val.trim().to_string()));
    }
}

fn check_manifest(root: &Path, path: &Path, out: &mut Vec<Violation>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let mut in_deps: Option<DepSection> = None;
    // For `[dependencies.foo]` single-dep tables: (name, header line,
    // proven-local yet).
    let mut single: Option<(String, usize, bool)> = None;

    fn flush_single(
        rel: &Path,
        single: &mut Option<(String, usize, bool)>,
        out: &mut Vec<Violation>,
    ) {
        if let Some((name, line, is_local)) = single.take() {
            if !is_local {
                out.push(Violation {
                    rule: "deps",
                    file: rel.to_path_buf(),
                    line,
                    message: format!(
                        "dependency `{name}` is not path-local (add `path = …` or `workspace = true`)"
                    ),
                });
            }
        }
    }

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            flush_single(&rel, &mut single, out);
            let header = &line[1..line.len() - 1];
            in_deps = dep_section(header);
            if let Some(DepSection::Single(name)) = &in_deps {
                single = Some((name.clone(), line_no, false));
            }
            continue;
        }
        match &in_deps {
            None => {}
            Some(DepSection::Table) => {
                let Some((key, value)) = line.split_once('=') else {
                    continue;
                };
                let key = key.trim();
                // `name.workspace = true` key form is a local reference.
                if key.ends_with(".workspace") && value.trim() == "true" {
                    continue;
                }
                if !value_is_local(value) {
                    out.push(Violation {
                        rule: "deps",
                        file: rel.clone(),
                        line: line_no,
                        message: format!(
                            "dependency `{key}` is not path-local (add `path = …` or `workspace = true`)"
                        ),
                    });
                }
            }
            Some(DepSection::Single(_)) => {
                if let Some((key, value)) = line.split_once('=') {
                    let key = key.trim();
                    if key == "path" || (key == "workspace" && value.trim() == "true") {
                        if let Some(s) = &mut single {
                            s.2 = true;
                        }
                    }
                }
            }
        }
    }
    flush_single(&rel, &mut single, out);
}

// ---------------------------------------------------------------------------
// Lexical Rust scanning shared by rules 2–4
// ---------------------------------------------------------------------------

/// Blank out comments and the contents of string/char literals,
/// preserving newlines (and byte positions for ASCII source), so token
/// searches cannot false-positive inside text.
pub fn strip_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string: r"…" or r#"…"# (any hash count). `r#foo`
                // raw identifiers fall through to the plain-byte arm.
                let mut j = i + 1;
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    out.push(b'r');
                    out.extend(std::iter::repeat(b' ').take(hashes));
                    out.push(b'"');
                    j += 1;
                    while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = j + 1;
                            let mut h = 0;
                            while k < b.len() && b[k] == b'#' && h < hashes {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                out.push(b'"');
                                out.extend(std::iter::repeat(b' ').take(hashes));
                                j = k;
                                break;
                            }
                        }
                        out.push(if b[j] == b'\n' { b'\n' } else { b' ' });
                        j += 1;
                    }
                    i = j;
                } else {
                    out.push(b'r');
                    i += 1;
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.push(b' ');
                        out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal or lifetime: a literal closes within a
                // few bytes, a lifetime has no nearby closing quote.
                let close = if i + 1 < b.len() && b[i + 1] == b'\\' {
                    // '\n', '\u{41}' — find the closing quote.
                    (i + 2..(i + 12).min(b.len())).find(|&k| b[k] == b'\'')
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(c) = close {
                    out.push(b'\'');
                    out.extend(std::iter::repeat(b' ').take(c - i - 1));
                    out.push(b'\'');
                    i = c + 1;
                } else {
                    out.push(b'\''); // lifetime
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// 1-based inclusive line ranges covered by `#[cfg(test)]`-gated items
/// (modules or functions), computed on stripped source by brace
/// matching.
pub fn test_regions(stripped: &str) -> Vec<(usize, usize)> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Find the gated item's opening brace, then match it. A gated
        // item with no body (`use`, `struct X;`) ends at the `;`.
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i + 1;
        'item: while j < lines.len() {
            for ch in lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            break 'item;
                        }
                    }
                    ';' if !opened && depth == 0 => break 'item,
                    _ => {}
                }
            }
            j += 1;
        }
        regions.push((i + 1, (j + 1).min(lines.len())));
        i = j + 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// 1-based lines of non-test stripped code containing `token`.
fn token_lines(stripped: &str, regions: &[(usize, usize)], token: &str) -> Vec<usize> {
    stripped
        .lines()
        .enumerate()
        .filter(|(idx, line)| !in_regions(regions, idx + 1) && line.contains(token))
        .map(|(idx, _)| idx + 1)
        .collect()
}

// ---------------------------------------------------------------------------
// Rules 2–4: source rules
// ---------------------------------------------------------------------------

/// Path prefixes (relative, `/`-separated) rule 2 applies to.
const PANIC_SCOPES: [&str; 2] = ["crates/proxy/src", "crates/wire/src"];
/// Path prefixes rule 3 applies to.
const DETERMINISM_SCOPES: [&str; 3] = ["crates/sim/src", "crates/core/src", "crates/bloom/src"];
/// Ambient time / entropy tokens rule 3 forbids.
const DETERMINISM_TOKENS: [&str; 5] = [
    "Instant::now",
    "SystemTime::now",
    "rand::",
    "getrandom",
    "RandomState::new",
];
/// Exact files (relative, `/`-separated) rule 6 applies to: the
/// sans-I/O protocol machine and the deterministic simnet built on it.
const SANS_IO_SCOPES: [&str; 2] = ["crates/proxy/src/machine.rs", "crates/proxy/src/simnet.rs"];
/// Transport/clock tokens rule 6 forbids in those files.
const SANS_IO_TOKENS: [&str; 3] = ["std::net", "Instant::now", "thread::sleep"];
/// Exact files (relative, `/`-separated) rule 7 applies to: the probe
/// path, where every digest must come through a `UrlKey` or `HashSpec`.
const HASH_ONCE_SCOPES: [&str; 3] = [
    "crates/core/src/probe.rs",
    "crates/bloom/src/filter.rs",
    "crates/bloom/src/counting.rs",
];
/// Direct digest calls rule 7 forbids in those files. (`md5(` does not
/// match `md5_repeated(`, hence both tokens.)
const HASH_ONCE_TOKENS: [&str; 2] = ["md5(", "md5_repeated("];

fn check_source(root: &Path, path: &Path, out: &mut Vec<Violation>) {
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let unix = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    let in_panic_scope = PANIC_SCOPES.iter().any(|s| unix.starts_with(s));
    let in_det_scope = DETERMINISM_SCOPES.iter().any(|s| unix.starts_with(s));
    let in_sans_io_scope = SANS_IO_SCOPES.contains(&unix.as_str());
    let in_hash_once_scope = HASH_ONCE_SCOPES.contains(&unix.as_str());
    let is_counting = unix.ends_with("bloom/src/counting.rs");
    if !in_panic_scope && !in_det_scope && !in_sans_io_scope && !in_hash_once_scope && !is_counting
    {
        return;
    }
    let Ok(src) = std::fs::read_to_string(path) else {
        return;
    };
    let stripped = strip_code(&src);
    let regions = test_regions(&stripped);

    if in_panic_scope {
        for token in [".unwrap()", ".expect("] {
            for line in token_lines(&stripped, &regions, token) {
                out.push(Violation {
                    rule: "panic",
                    file: rel.clone(),
                    line,
                    message: format!(
                        "`{token}` in a runtime path; propagate a Result (a bad datagram must not kill the daemon)"
                    ),
                });
            }
        }
    }
    if in_det_scope {
        for token in DETERMINISM_TOKENS {
            for line in token_lines(&stripped, &regions, token) {
                out.push(Violation {
                    rule: "determinism",
                    file: rel.clone(),
                    line,
                    message: format!(
                        "`{token}` introduces ambient nondeterminism; drive time/entropy from the trace or a seeded Rng"
                    ),
                });
            }
        }
    }
    if in_sans_io_scope {
        for token in SANS_IO_TOKENS {
            for line in token_lines(&stripped, &regions, token) {
                out.push(Violation {
                    rule: "sans_io",
                    file: rel.clone(),
                    line,
                    message: format!(
                        "`{token}` in a sans-I/O protocol module; sockets, wall clocks and sleeps belong to the daemon shell or the simnet scheduler"
                    ),
                });
            }
        }
    }
    if in_hash_once_scope {
        for token in HASH_ONCE_TOKENS {
            for line in token_lines(&stripped, &regions, token) {
                out.push(Violation {
                    rule: "hash_once",
                    file: rel.clone(),
                    line,
                    message: format!(
                        "direct `{token}…)` on the probe path; digests are computed once at UrlKey construction or inside HashSpec — probe via the key/indices APIs"
                    ),
                });
            }
        }
    }
    if is_counting {
        for token in ["wrapping_add(", "wrapping_sub("] {
            for line in token_lines(&stripped, &regions, token) {
                out.push(Violation {
                    rule: "counters",
                    file: rel.clone(),
                    line,
                    message: format!(
                        "`{token}…)` on a 4-bit counter wraps silently; use saturating_*/checked_* (Section V-C)"
                    ),
                });
            }
        }
        // Counter updates fed by bare infix +/- must instead go through
        // a bounded op.
        for (idx, line) in stripped.lines().enumerate() {
            let line_no = idx + 1;
            if in_regions(&regions, line_no) {
                continue;
            }
            let Some(pos) = line.find("set_count(") else {
                continue;
            };
            let args = &line[pos + "set_count(".len()..];
            let bounded = args.contains("saturating_") || args.contains("checked_");
            let bytes = args.as_bytes();
            let bare_arith = bytes.iter().enumerate().any(|(k, &c)| {
                (c == b'+' || c == b'-')
                    && bytes.get(k + 1) != Some(&c)
                    && bytes.get(k + 1) != Some(&b'=')
                    && bytes.get(k + 1) != Some(&b'>') // `->` is not arithmetic
                    && (k == 0 || bytes[k - 1] != c)
            });
            if bare_arith && !bounded {
                out.push(Violation {
                    rule: "counters",
                    file: rel.clone(),
                    line: line_no,
                    message:
                        "bare +/- arithmetic feeding set_count; use saturating_*/checked_* (Section V-C)"
                            .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: metric registry hygiene
// ---------------------------------------------------------------------------

/// Registration call tokens: a metric is born where one of these is
/// applied to a name literal. Snapshot *reads* use `counter_value` /
/// `gauge_value` / `histogram_value` and never match.
const METRIC_TOKENS: [&str; 6] = [
    ".counter(\"",
    ".counter_with(\"",
    ".gauge(\"",
    ".gauge_with(\"",
    ".histogram(\"",
    ".histogram_with(\"",
];

/// Record every metric name this file registers (outside test code)
/// into `sites`. Token positions come from the stripped text — so a
/// registration quoted in a comment or doc string is ignored — but the
/// name itself is read from the original line, where literal contents
/// survive (byte positions are preserved by `strip_code`).
fn collect_metric_sites(
    root: &Path,
    path: &Path,
    sites: &mut BTreeMap<String, Vec<(PathBuf, usize)>>,
) {
    let Ok(src) = std::fs::read_to_string(path) else {
        return;
    };
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    for (name, line_no) in metric_registrations(&src) {
        sites.entry(name).or_default().push((rel.clone(), line_no));
    }
}

/// All `(metric name, 1-based line)` registrations in one source text,
/// test regions excluded.
pub fn metric_registrations(src: &str) -> Vec<(String, usize)> {
    let stripped = strip_code(src);
    let regions = test_regions(&stripped);
    let mut found = Vec::new();
    for (idx, (stripped_line, original)) in stripped.lines().zip(src.lines()).enumerate() {
        let line_no = idx + 1;
        if in_regions(&regions, line_no) {
            continue;
        }
        for token in METRIC_TOKENS {
            let mut from = 0;
            while let Some(pos) = stripped_line[from..].find(token) {
                let name_start = from + pos + token.len();
                if let Some(name) = original
                    .get(name_start..)
                    .and_then(|rest| rest.split('"').next())
                {
                    if !name.is_empty() {
                        found.push((name.to_string(), line_no));
                    }
                }
                from = name_start;
            }
        }
    }
    found
}

/// Flag every name registered at more than one distinct source site.
/// Each site of a duplicated name gets its own diagnostic so the fix
/// locations are all visible.
fn check_metric_sites(
    sites: &BTreeMap<String, Vec<(PathBuf, usize)>>,
    out: &mut Vec<Violation>,
) {
    for (name, at) in sites {
        if at.len() < 2 {
            continue;
        }
        for (file, line) in at {
            out.push(Violation {
                rule: "metrics",
                file: file.clone(),
                line: *line,
                message: format!(
                    "metric `{name}` is registered at {} sites; register once and share the handle (the registry get-or-creates by name)",
                    at.len()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_comments_and_strings() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\nlet b = 1; /* .expect( */\n";
        let s = strip_code(src);
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains(".expect("));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn strip_keeps_positions() {
        let src = "ab\"cd\"ef\n";
        let s = strip_code(src);
        assert_eq!(s.len(), src.len());
        assert!(s.starts_with("ab\""));
        assert!(s.contains("\"ef"));
    }

    #[test]
    fn strip_handles_raw_strings_chars_lifetimes() {
        let src = "r#\"has .unwrap() inside\"#; let c = '\\n'; let l: &'static str = x;";
        let s = strip_code(src);
        assert!(!s.contains(".unwrap()"));
        assert!(s.contains("&'static str"), "lifetime untouched: {s}");
    }

    #[test]
    fn strip_handles_nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still out */ code()";
        let s = strip_code(src);
        assert!(!s.contains(".unwrap()"));
        assert!(s.contains("code()"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let stripped = strip_code(src);
        let regions = test_regions(&stripped);
        assert_eq!(regions, vec![(2, 5)]);
        let lines = token_lines(&stripped, &regions, ".unwrap()");
        assert_eq!(lines, vec![1], "only the non-test unwrap is flagged");
    }

    #[test]
    fn metric_registrations_found_outside_tests_only() {
        let src = concat!(
            "fn wire(r: &Registry) {\n",
            "    r.counter(\"sc_a_total\").incr();\n",
            "    let g = r.gauge_with(\"sc_stale\", &[(\"peer\", \"1\")]);\n",
            "    // a comment naming .counter(\"sc_ghost_total\") is not a site\n",
            "    let doc = \"reads use .histogram(\\\"sc_ghost2\\\") too\";\n",
            "    let v = snap.counter_value(\"sc_a_total\");\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(r: &Registry) { r.counter(\"sc_a_total\").incr(); }\n",
            "}\n",
        );
        let got = metric_registrations(src);
        assert_eq!(
            got,
            vec![("sc_a_total".to_string(), 2), ("sc_stale".to_string(), 3)],
            "comments, string contents, reads and test code are not sites"
        );
    }

    #[test]
    fn duplicate_metric_sites_flagged_at_each_site() {
        let mut sites = BTreeMap::new();
        sites.insert(
            "sc_dup_total".to_string(),
            vec![(PathBuf::from("a.rs"), 3), (PathBuf::from("b.rs"), 9)],
        );
        sites.insert("sc_once_total".to_string(), vec![(PathBuf::from("a.rs"), 4)]);
        let mut out = Vec::new();
        check_metric_sites(&sites, &mut out);
        assert_eq!(out.len(), 2, "one diagnostic per duplicated site");
        assert!(out.iter().all(|v| v.rule == "metrics"));
        assert!(out.iter().all(|v| v.message.contains("sc_dup_total")));
    }

    #[test]
    fn dep_sections_recognized() {
        assert!(matches!(dep_section("dependencies"), Some(DepSection::Table)));
        assert!(matches!(dep_section("dev-dependencies"), Some(DepSection::Table)));
        assert!(matches!(
            dep_section("workspace.dependencies"),
            Some(DepSection::Table)
        ));
        assert!(matches!(
            dep_section("dependencies.serde"),
            Some(DepSection::Single(n)) if n == "serde"
        ));
        assert!(dep_section("package").is_none());
        assert!(dep_section("features").is_none());
        assert!(dep_section("profile.release").is_none());
    }

    #[test]
    fn local_values_pass_registry_values_fail() {
        assert!(value_is_local("{ path = \"../md5\" }"));
        assert!(value_is_local("{ workspace = true }"));
        assert!(value_is_local("{ path = \"../core\", package = \"summary-cache-core\" }"));
        assert!(!value_is_local("\"1.0\""));
        assert!(!value_is_local("{ version = \"1\", features = [\"derive\"] }"));
        // A `features = ["path"]` array must not count as a path key.
        assert!(!value_is_local("{ version = \"1\", features = [\"path\"] }"));
    }
}
