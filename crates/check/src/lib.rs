//! `sc-check` — the repo's own invariant gate.
//!
//! A scope-aware static-analysis engine (see [`lexer`] and [`engine`])
//! enforcing eleven rules that encode this codebase's architectural
//! contract with the paper:
//!
//! 1. **deps** — every dependency in every `Cargo.toml` is path-local;
//!    no registry crates, so tier-1 verification needs zero network
//!    ([`manifest`]).
//! 2. **panic** — no `.unwrap()` / `.expect(` in `crates/proxy/src` or
//!    `crates/wire/src` runtime paths; a malformed ICP datagram or a
//!    peer hangup must degrade gracefully, never kill the daemon.
//! 3. **determinism** — no ambient time or entropy (`Instant::now`,
//!    `SystemTime::now`, `rand::`, …) in `crates/sim`, `crates/core`,
//!    `crates/bloom`; simulations replay bit-for-bit from traces and
//!    seeds.
//! 4. **counters** — `crates/bloom/src/counting.rs` must not use
//!    wrapping or bare `+`/`-` arithmetic on the 4-bit counters
//!    (paper §V-C: saturate, never wrap).
//! 5. **metrics** — a metric name is registered at exactly one source
//!    site across the workspace; the registry get-or-creates by name,
//!    so a second site silently aliases.
//! 6. **sans_io** — `machine.rs` / `simnet.rs` / `shard.rs` /
//!    `router.rs` stay free of `std::net`, wall clocks and sleeps; I/O
//!    belongs to the daemon shell and the simnet scheduler.
//! 7. **hash_once** — no direct `md5(` / `md5_repeated(` on the probe
//!    path; URL digests happen once, at `UrlKey` construction or inside
//!    `HashSpec`. In the request-path files (`proxy/src/daemon.rs`,
//!    `proxy/src/router.rs`) the rule also hunts `UrlKey::new(`: a
//!    request's URL is keyed exactly once at entry and the key threads
//!    through everything downstream, so re-keying sites must justify
//!    themselves with `// sc-check: allow(hash_once)`.
//! 8. **locks** — in `crates/proxy/src`, no `MutexGuard` live across
//!    `thread::sleep`, channel send/recv, socket I/O, a re-acquisition
//!    of the same lock, or an acquisition order inverting one recorded
//!    elsewhere. Guard liveness is scope-based: binding → end of the
//!    enclosing block, truncated by an explicit `drop(guard)`.
//! 9. **alloc** — the probe hot-path files (`core/src/probe.rs`,
//!    `bloom/src/{filter,counting,key,hashing}.rs`,
//!    `proxy/src/replica.rs`) do not allocate per call: no `Vec::new`,
//!    `vec![`, `.to_string()`, `format!`, `Box::new`, `.clone()`.
//!    Setup/COW sites opt out with `// sc-check: allow(alloc)`;
//!    refcount bumps are written `Arc::clone(&x)`.
//! 10. **wire** — every `ICP_OP_*` constant in `crates/wire/src/icp.rs`
//!     appears in an encode-side match arm, a decode-side match arm,
//!     and at least one test, so an opcode cannot ship half-wired.
//! 11. **shards** — `proxy/src/shard.rs` contains no `Mutex` or
//!     `RwLock`: a shard is a single-owner slice of the directory, and
//!     any cross-shard coordination must surface in the router (or the
//!     daemon shell) where it is visible, not hide behind a lock.
//!
//! Everything is hand-rolled on `std` (plus the path-local `sc-json`
//! for `--json` output) — no `syn`, no registry crates — so the gate
//! itself can never break the firewall it enforces. Test context
//! (resolved from real item structure: `#[cfg(test)]`,
//! `cfg(all(test, …))`, `#[test]` fns, un-attributed `mod tests`, and
//! whole `tests/`/`benches/`/`examples/` files) is exempt from the
//! source rules.
//!
//! Any rule can be silenced at a specific site with a
//! `// sc-check: allow(rule)` comment on (or directly above) the
//! offending line; a suppression that never fires is itself reported
//! (rule id `suppression`), so allows cannot go stale.

pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short rule name (`deps`, `panic`, …, `wire`, `suppression`).
    pub rule: &'static str,
    /// File the violation is in, relative to the checked root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The outcome of checking a tree.
pub struct Report {
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests: usize,
    /// Number of `.rs` sources scanned.
    pub sources: usize,
    /// All violations, in deterministic order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Machine-readable form for CI annotation (`sc-check --json`).
    pub fn to_json(&self) -> sc_json::Value {
        use sc_json::Value;
        let violations = self
            .violations
            .iter()
            .map(|v| {
                let unix = v
                    .file
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                Value::Object(vec![
                    ("rule".to_string(), Value::Str(v.rule.to_string())),
                    ("file".to_string(), Value::Str(unix)),
                    ("line".to_string(), Value::UInt(v.line as u64)),
                    ("message".to_string(), Value::Str(v.message.clone())),
                ])
            })
            .collect();
        Value::Object(vec![
            ("ok".to_string(), Value::Bool(self.violations.is_empty())),
            ("manifests".to_string(), Value::UInt(self.manifests as u64)),
            ("sources".to_string(), Value::UInt(self.sources as u64)),
            ("violations".to_string(), Value::Array(violations)),
        ])
    }
}

/// Should a directory be skipped entirely?
///
/// By *name* anywhere: build output and VCS metadata. By *exact
/// relative path*: the gate's own violation fixtures and the repo-root
/// `results/` corpus — scoped precisely so a future source directory
/// that happens to be called `fixtures` or `results` is still scanned.
fn skip_dir(rel_unix: &str, name: &str) -> bool {
    matches!(name, "target" | ".git" | ".cargo")
        || matches!(rel_unix, "crates/check/tests/fixtures" | "results")
}

/// Recursively collect manifests and sources under `dir`, tracking the
/// `/`-separated path relative to the scanned root.
fn collect(
    dir: &Path,
    rel: &str,
    manifests: &mut Vec<PathBuf>,
    sources: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        let child_rel = if rel.is_empty() {
            name.clone()
        } else {
            format!("{rel}/{name}")
        };
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if skip_dir(&child_rel, &name) {
                continue;
            }
            collect(&path, &child_rel, manifests, sources)?;
        } else if name == "Cargo.toml" {
            manifests.push(path);
        } else if name.ends_with(".rs") {
            sources.push(path);
        }
    }
    Ok(())
}

/// Check the workspace rooted at `root` against all eleven rules.
pub fn check_repo(root: &Path) -> std::io::Result<Report> {
    let mut manifests = Vec::new();
    let mut source_paths = Vec::new();
    collect(root, "", &mut manifests, &mut source_paths)?;

    let mut violations = Vec::new();
    for m in &manifests {
        manifest::check_manifest(root, m, &mut violations);
    }

    let mut files = Vec::new();
    for path in &source_paths {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        files.push(engine::SourceFile::parse(rel, src));
    }

    let mut cross = rules::CrossFile::default();
    for f in &files {
        rules::check_file(f, &mut violations, &mut cross);
    }
    rules::finish(&files, &cross, &mut violations);
    rules::check_suppressions(&files, &mut violations);

    Ok(Report {
        manifests: manifests.len(),
        sources: files.len(),
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_is_scoped_to_exact_paths() {
        assert!(skip_dir("crates/check/tests/fixtures", "fixtures"));
        assert!(skip_dir("results", "results"));
        // The same names elsewhere are scanned (the old scanner skipped
        // any dir called fixtures/results anywhere in the tree).
        assert!(!skip_dir("crates/proxy/src/fixtures", "fixtures"));
        assert!(!skip_dir("crates/sim/results", "results"));
        // Build output and VCS dirs are skipped at any depth.
        assert!(skip_dir("target", "target"));
        assert!(skip_dir("crates/x/target", "target"));
        assert!(skip_dir(".git", ".git"));
    }

    #[test]
    fn report_serializes_to_sc_json() {
        let report = Report {
            manifests: 3,
            sources: 7,
            violations: vec![Violation {
                rule: "panic",
                file: PathBuf::from("crates/proxy/src/daemon.rs"),
                line: 42,
                message: "boom".to_string(),
            }],
        };
        let text = report.to_json().to_compact();
        let back = sc_json::Value::parse(&text).expect("round-trips");
        assert_eq!(back.get("ok").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(back.get("manifests").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(back.get("sources").and_then(|v| v.as_u64()), Some(7));
        let vs = back.get("violations").and_then(|v| v.as_array()).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].get("rule").and_then(|v| v.as_str()), Some("panic"));
        assert_eq!(vs[0].get("line").and_then(|v| v.as_u64()), Some(42));
    }

    #[test]
    fn violation_display_is_stable() {
        let v = Violation {
            rule: "alloc",
            file: PathBuf::from("crates/bloom/src/key.rs"),
            line: 7,
            message: "msg".to_string(),
        };
        assert_eq!(v.to_string(), "crates/bloom/src/key.rs:7: [alloc] msg");
    }
}
