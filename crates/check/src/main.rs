//! CLI for the static-analysis gate: `cargo run -p sc-check [ROOT]`
//! (or `cargo check-repo` via the workspace alias). Prints one
//! `file:line: [rule] message` diagnostic per violation and exits
//! nonzero if any were found.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args_os()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let report = match sc_check::check_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sc-check: {e}");
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    if report.violations.is_empty() {
        eprintln!(
            "sc-check: ok ({} manifests, {} source files, 0 violations)",
            report.manifests, report.sources
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "sc-check: {} violation(s) across {} manifests and {} source files",
            report.violations.len(),
            report.manifests,
            report.sources
        );
        ExitCode::FAILURE
    }
}
