//! CLI for the static-analysis gate:
//! `cargo run -p sc-check [--soak] [--json] [ROOT]` (or
//! `cargo check-repo` via the workspace alias).
//!
//! Default output is one `file:line: [rule] message` diagnostic per
//! violation, a summary on stderr, and a `sc-check: ok (N manifests,
//! M source files)` line on stdout for a clean run. `--json` instead
//! prints a single sc-json object (`{ok, manifests, sources,
//! violations}`) to stdout for CI annotation. Unknown `--flags` are
//! rejected (exit 2) rather than being misread as ROOT.
//!
//! `--soak` additionally runs the simnet property suite over an
//! extended seed range (default 1000 seeds; override with
//! `SC_SIM_SEEDS`, or replay one failing seed with `SC_SIM_SEED`)
//! after a clean gate pass.

use std::path::PathBuf;
use std::process::ExitCode;

/// Seeds the soak sweeps when `SC_SIM_SEEDS` is not already set —
/// 5x the in-repo default, still well inside a CI minute.
const SOAK_SEEDS: &str = "1000";

fn main() -> ExitCode {
    let mut soak = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args_os().skip(1) {
        if arg == "--soak" {
            soak = true;
        } else if arg == "--json" {
            json = true;
        } else if arg.to_string_lossy().starts_with('-') {
            eprintln!(
                "sc-check: unknown flag {:?}\nusage: sc-check [--soak] [--json] [ROOT]",
                arg.to_string_lossy()
            );
            return ExitCode::from(2);
        } else if root.is_none() {
            root = Some(PathBuf::from(arg));
        } else {
            eprintln!("sc-check: usage: sc-check [--soak] [--json] [ROOT]");
            return ExitCode::from(2);
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let report = match sc_check::check_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sc-check: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json().to_pretty());
        if !report.violations.is_empty() {
            return ExitCode::FAILURE;
        }
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        if !report.violations.is_empty() {
            eprintln!(
                "sc-check: {} violation(s) across {} manifests and {} source files",
                report.violations.len(),
                report.manifests,
                report.sources
            );
            return ExitCode::FAILURE;
        }
        println!(
            "sc-check: ok ({} manifests, {} source files, 0 violations)",
            report.manifests, report.sources
        );
    }
    if soak {
        return run_soak(&root);
    }
    ExitCode::SUCCESS
}

/// Run the seeded simnet soak in the checked workspace. The seed count
/// flows through the same `SC_SIM_SEEDS` env the test reads directly,
/// so an operator override wins over our extended default.
fn run_soak(root: &std::path::Path) -> ExitCode {
    let seeds =
        std::env::var("SC_SIM_SEEDS").unwrap_or_else(|_| SOAK_SEEDS.to_string());
    eprintln!("sc-check: soak — simnet property suite over {seeds} seeds");
    let status = std::process::Command::new("cargo")
        .args([
            "test",
            "-q",
            "--offline",
            "--test",
            "simnet_properties",
            "seeded_soak",
            "--",
            "--nocapture",
        ])
        .env("SC_SIM_SEEDS", &seeds)
        .current_dir(root)
        .status();
    match status {
        Ok(s) if s.success() => {
            eprintln!("sc-check: soak ok ({seeds} seeds)");
            ExitCode::SUCCESS
        }
        Ok(_) => {
            eprintln!("sc-check: soak FAILED — see the repro line above");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sc-check: could not spawn cargo for the soak: {e}");
            ExitCode::from(2)
        }
    }
}
