//! The scope-aware analysis layer on top of [`crate::lexer`].
//!
//! A [`SourceFile`] carries everything a rule needs:
//!
//! * the stripped text (comments and literal interiors blanked, byte
//!   positions preserved) for substring searches that cannot
//!   false-positive inside strings;
//! * per-line *test context*, resolved from real item structure:
//!   `#[cfg(test)]` **and** `cfg(all(test, …))`/`cfg(any(test, …))`
//!   attributes, `#[test]`/`#[bench]` functions, un-attributed
//!   `mod tests { … }` modules, and whole files under `tests/`,
//!   `benches/` or `examples/` — the three shapes the old line-oriented
//!   heuristic missed;
//! * `fn` item boundaries with body byte-ranges (rule 8's guard
//!   liveness is "binding → end of enclosing block", which needs real
//!   scopes, and rule 10 needs to know which `match` sits in which
//!   function);
//! * `// sc-check: allow(rule)` suppressions with use-tracking, so a
//!   stale allow is itself a diagnostic.
//!
//! Violations are emitted through [`Sink`], which consults the file's
//! suppressions before recording anything.

use crate::lexer::{self, Token, TokenKind};
use crate::Violation;
use std::cell::Cell;
use std::path::PathBuf;

/// A `fn` item found by the scope walker.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the function is test context (its own attributes or any
    /// enclosing scope).
    pub is_test: bool,
    /// Byte range of the body in the (stripped) text, spanning the
    /// opening `{` to one past the closing `}`. `None` for bodyless
    /// declarations (trait methods).
    pub body: Option<(usize, usize)>,
}

/// One `// sc-check: allow(rule, …)` comment.
#[derive(Debug)]
pub struct Suppression {
    /// The rule names inside `allow(…)`.
    pub rules: Vec<String>,
    /// 1-based line of the comment itself.
    pub line: usize,
    /// 1-based line the suppression applies to: the comment's own line
    /// when code precedes it there, otherwise the next line holding any
    /// significant token.
    pub target: usize,
    /// Set once any emission was silenced by this suppression.
    pub used: Cell<bool>,
}

/// A parsed, scope-resolved source file.
pub struct SourceFile {
    /// Path relative to the checked root.
    pub rel: PathBuf,
    /// `rel` with `/` separators, for scope matching.
    pub unix: String,
    /// The original text.
    pub src: String,
    /// Comment/literal-blanked text, byte-for-byte aligned with `src`.
    pub stripped: String,
    /// The full token tiling of `src`.
    pub tokens: Vec<Token>,
    /// Byte offset of each line start (index 0 = line 1).
    line_starts: Vec<usize>,
    /// `test_lines[n]` = line `n + 1` is test context.
    test_lines: Vec<bool>,
    /// Whole file is test context (under `tests/`/`benches/`/`examples/`).
    pub file_is_test: bool,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every suppression comment, in source order.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lex and scope-resolve one file.
    pub fn parse(rel: PathBuf, src: String) -> SourceFile {
        let unix = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let tokens = lexer::lex(&src);
        let stripped = lexer::stripped(&src, &tokens);
        let line_count = src.lines().count().max(1);
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let file_is_test = {
            let with_slash = format!("/{unix}");
            ["/tests/", "/benches/", "/examples/"]
                .iter()
                .any(|d| with_slash.contains(d))
        };

        let mut f = SourceFile {
            rel,
            unix,
            src,
            stripped,
            tokens,
            line_starts,
            test_lines: vec![false; line_count],
            file_is_test,
            fns: Vec::new(),
            suppressions: Vec::new(),
        };
        let sig: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let mut cur = 0usize;
        walk(&mut f, &sig, &mut cur, false);
        parse_suppressions(&mut f);
        f
    }

    /// 1-based line containing byte offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Is 1-based `line` test context?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.file_is_test || self.test_lines.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// 1-based lines of non-test stripped code containing `token`.
    pub fn token_lines(&self, token: &str) -> Vec<usize> {
        self.stripped
            .lines()
            .enumerate()
            .filter(|(idx, line)| !self.is_test_line(idx + 1) && line.contains(token))
            .map(|(idx, _)| idx + 1)
            .collect()
    }

    /// Check whether an emission of `rule` at `line` is suppressed;
    /// marks the matching suppression used.
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        let mut hit = false;
        for s in &self.suppressions {
            if s.target == line && s.rules.iter().any(|r| r == rule) {
                s.used.set(true);
                hit = true;
            }
        }
        hit
    }

    fn mark_test(&mut self, from_line: usize, to_line: usize) {
        for l in from_line..=to_line.min(self.test_lines.len()) {
            if l >= 1 {
                self.test_lines[l - 1] = true;
            }
        }
    }
}

/// Emits violations for one file, honoring its suppressions.
pub struct Sink<'a> {
    file: &'a SourceFile,
    out: &'a mut Vec<Violation>,
}

impl<'a> Sink<'a> {
    /// A sink writing `file`'s violations into `out`.
    pub fn new(file: &'a SourceFile, out: &'a mut Vec<Violation>) -> Sink<'a> {
        Sink { file, out }
    }

    /// Record a violation unless a suppression at its line absorbs it.
    pub fn emit(&mut self, rule: &'static str, line: usize, message: String) {
        if self.file.suppressed(rule, line) {
            return;
        }
        self.out.push(Violation {
            rule,
            file: self.file.rel.clone(),
            line,
            message,
        });
    }
}

// ---------------------------------------------------------------------------
// Scope walking
// ---------------------------------------------------------------------------

/// Walk significant tokens from `*cur` until the matching `Close` of
/// the group we are inside (which is consumed), recording `fn` items
/// and test-context spans. Returns the token index of the consumed
/// `Close`, if one ended the walk.
fn walk(f: &mut SourceFile, sig: &[usize], cur: &mut usize, in_test: bool) -> Option<usize> {
    // A pending test-marking attribute waiting for its item, plus the
    // line the attribute block started on (for span marking).
    let mut pending_test = false;
    let mut pending_line: Option<usize> = None;
    while *cur < sig.len() {
        let ti = sig[*cur];
        let tok = f.tokens[ti];
        let text = tok.text(&f.src);
        match tok.kind {
            TokenKind::Close => {
                *cur += 1;
                return Some(ti);
            }
            TokenKind::Open => {
                *cur += 1;
                walk(f, sig, cur, in_test);
                // An attribute cannot apply across a sibling group at
                // item level except `pub(crate)` etc.; keep pending.
            }
            TokenKind::Punct if text == "#" => {
                *cur += 1;
                let inner = peek_text(f, sig, *cur) == Some("!");
                if inner {
                    *cur += 1;
                }
                if peek_kind(f, sig, *cur) == Some(TokenKind::Open)
                    && peek_text(f, sig, *cur) == Some("[")
                {
                    let attr_line = tok.line;
                    let group = collect_group(f, sig, cur);
                    if !inner && attr_is_test(&group) {
                        pending_test = true;
                        pending_line.get_or_insert(attr_line);
                    }
                }
            }
            TokenKind::Ident if text == "fn" => {
                let kw_line = tok.line;
                let item_test = in_test || pending_test;
                let start_line = pending_line.take().unwrap_or(kw_line);
                pending_test = false;
                *cur += 1;
                let name = match peek_kind(f, sig, *cur) {
                    Some(TokenKind::Ident) => {
                        let n = peek_text(f, sig, *cur).unwrap_or("").to_string();
                        *cur += 1;
                        n
                    }
                    _ => String::new(),
                };
                // Scan the signature: groups are skipped; the body is
                // the first `{` at this level, `;` means no body.
                let mut body = None;
                let mut end_line = kw_line;
                while *cur < sig.len() {
                    let si = sig[*cur];
                    let st = f.tokens[si];
                    let stext = st.text(&f.src);
                    match st.kind {
                        TokenKind::Open if stext == "{" => {
                            *cur += 1;
                            let close = walk(f, sig, cur, item_test);
                            let end = close.map_or(f.src.len(), |c| f.tokens[c].end);
                            end_line = close.map_or(st.line, |c| f.tokens[c].line);
                            body = Some((st.start, end));
                            break;
                        }
                        TokenKind::Open => {
                            *cur += 1;
                            walk(f, sig, cur, item_test);
                        }
                        TokenKind::Punct if stext == ";" => {
                            end_line = st.line;
                            *cur += 1;
                            break;
                        }
                        TokenKind::Close => {
                            end_line = st.line;
                            break; // malformed; leave for the caller
                        }
                        _ => *cur += 1,
                    }
                }
                if item_test {
                    f.mark_test(start_line, end_line);
                }
                f.fns.push(FnItem {
                    name,
                    line: kw_line,
                    is_test: item_test,
                    body,
                });
            }
            TokenKind::Ident if text == "mod" => {
                let kw_line = tok.line;
                *cur += 1;
                let name = peek_text(f, sig, *cur).unwrap_or("");
                let name_is_tests = matches!(name, "tests" | "test");
                if peek_kind(f, sig, *cur) == Some(TokenKind::Ident) {
                    *cur += 1;
                }
                let item_test = in_test || pending_test || name_is_tests;
                let start_line = pending_line.take().unwrap_or(kw_line);
                pending_test = false;
                match (peek_kind(f, sig, *cur), peek_text(f, sig, *cur)) {
                    (Some(TokenKind::Open), Some("{")) => {
                        *cur += 1;
                        let close = walk(f, sig, cur, item_test);
                        let end_line = close.map_or(kw_line, |c| f.tokens[c].line);
                        if item_test {
                            f.mark_test(start_line, end_line);
                        }
                    }
                    _ => {
                        // `mod name;` — out-of-line; the file itself is
                        // resolved on its own.
                        if item_test {
                            f.mark_test(start_line, kw_line);
                        }
                    }
                }
            }
            // Modifier keywords between an attribute and its item.
            TokenKind::Ident
                if matches!(
                    text,
                    "pub" | "unsafe" | "async" | "const" | "extern" | "default" | "crate"
                ) =>
            {
                *cur += 1;
            }
            TokenKind::Str if pending_test => {
                // `extern "C"` between attribute and fn.
                *cur += 1;
            }
            _ => {
                if pending_test {
                    // A gated non-fn/mod item (struct, use, impl, static,
                    // macro invocation…): mark through its `;` or body.
                    let start_line = pending_line.take().unwrap_or(tok.line);
                    pending_test = false;
                    let mut end_line = tok.line;
                    while *cur < sig.len() {
                        let si = sig[*cur];
                        let st = f.tokens[si];
                        let stext = st.text(&f.src);
                        match st.kind {
                            TokenKind::Open if stext == "{" => {
                                *cur += 1;
                                let close = walk(f, sig, cur, true);
                                end_line = close.map_or(st.line, |c| f.tokens[c].line);
                                break;
                            }
                            TokenKind::Open => {
                                *cur += 1;
                                walk(f, sig, cur, true);
                            }
                            TokenKind::Punct if stext == ";" => {
                                end_line = st.line;
                                *cur += 1;
                                break;
                            }
                            TokenKind::Close => {
                                end_line = st.line;
                                break; // enclosing close: not ours
                            }
                            _ => {
                                end_line = st.line;
                                *cur += 1;
                            }
                        }
                    }
                    f.mark_test(start_line, end_line);
                } else {
                    *cur += 1;
                }
            }
        }
    }
    None
}

fn peek_kind(f: &SourceFile, sig: &[usize], cur: usize) -> Option<TokenKind> {
    sig.get(cur).map(|&i| f.tokens[i].kind)
}

fn peek_text<'a>(f: &'a SourceFile, sig: &[usize], cur: usize) -> Option<&'a str> {
    sig.get(cur).map(|&i| f.tokens[i].text(&f.src))
}

/// With `*cur` at an `Open`, consume the balanced group and return the
/// significant-token texts inside it (delimiters included).
fn collect_group(f: &SourceFile, sig: &[usize], cur: &mut usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    while *cur < sig.len() {
        let t = f.tokens[sig[*cur]];
        let text = t.text(&f.src);
        out.push(text.to_string());
        *cur += 1;
        match t.kind {
            TokenKind::Open => depth += 1,
            TokenKind::Close => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
    }
    out
}

/// Does this attribute (as collected token texts, `[` … `]`) mark its
/// item as test context?
///
/// * `#[test]`, `#[bench]`, and harness attributes whose path mentions
///   a bare `test` ident (`tokio::test`-style);
/// * `#[cfg(…)]` / `#[cfg_attr(…, …)]` whose predicate contains the
///   `test` ident outside any `not(…)` group — so `cfg(all(test, x))`
///   and `cfg(any(test, x))` count, while `cfg(not(test))` does not.
fn attr_is_test(group: &[String]) -> bool {
    // group[0] is "["; the first ident is the attribute path head.
    let idents: Vec<&str> = group.iter().map(|s| s.as_str()).collect();
    let Some(head) = idents
        .iter()
        .find(|t| t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_'))
    else {
        return false;
    };
    if *head == "cfg" || *head == "cfg_attr" {
        return predicate_has_test(&idents);
    }
    idents.iter().any(|t| *t == "test" || *t == "bench")
}

/// Scan a cfg predicate token list for a bare `test` ident outside any
/// `not(…)` subtree.
fn predicate_has_test(toks: &[&str]) -> bool {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i] == "not" && toks.get(i + 1) == Some(&"(") {
            // Skip the balanced not(…) group.
            let mut depth = 0usize;
            i += 1;
            while i < toks.len() {
                match toks[i] {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else if toks[i] == "test" {
            return true;
        }
        i += 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Collect `// sc-check: allow(rule, …)` comments. The directive must
/// be the start of the comment body — doc comments *describing* the
/// syntax are not directives. The target is the comment's own line when
/// significant code precedes it on that line, otherwise the next line
/// with any significant token.
fn parse_suppressions(f: &mut SourceFile) {
    let mut found = Vec::new();
    for (i, t) in f.tokens.iter().enumerate() {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(&f.src);
        // Strip the comment opener; `///`/`//!` doc comments never carry
        // directives, only prose about them.
        let body = text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start();
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(rest) = body.strip_prefix("sc-check:") else {
            continue;
        };
        let Some(q) = rest.find("allow(") else {
            continue;
        };
        let inner = rest[q + "allow(".len()..].split(')').next().unwrap_or("");
        let rules: Vec<String> = inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let significant = |k: TokenKind| {
            !matches!(
                k,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        };
        let code_before = f.tokens[..i]
            .iter()
            .rev()
            .take_while(|o| o.line == t.line)
            .any(|o| significant(o.kind));
        let target = if code_before {
            t.line
        } else {
            f.tokens[i + 1..]
                .iter()
                .find(|o| significant(o.kind))
                .map(|o| o.line)
                .unwrap_or(t.line)
        };
        found.push(Suppression {
            rules,
            line: t.line,
            target,
            used: Cell::new(false),
        });
    }
    f.suppressions = found;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("crates/x/src/lib.rs"), src.to_string())
    }

    #[test]
    fn cfg_test_mod_is_test_context() {
        let f = parse("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n");
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_all_test_is_test_context() {
        let f = parse("#[cfg(all(test, feature = \"x\"))]\nmod harness {\n    fn h() {}\n}\n");
        assert!(f.is_test_line(1));
        assert!(f.is_test_line(3));
    }

    #[test]
    fn cfg_any_test_is_test_context() {
        let f = parse("#[cfg(any(test, doc))]\nfn helper() {\n    body();\n}\n");
        assert!(f.is_test_line(3));
    }

    #[test]
    fn cfg_not_test_is_not_test_context() {
        let f = parse("#[cfg(not(test))]\nfn runtime_only() {\n    body();\n}\n");
        assert!(!f.is_test_line(3), "cfg(not(test)) is runtime code");
    }

    #[test]
    fn bare_mod_tests_is_test_context() {
        let f = parse("mod tests {\n    fn t() {}\n}\nfn real() {}\n");
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(4));
    }

    #[test]
    fn test_attribute_fn_is_test_context() {
        let f = parse("#[test]\nfn t() {\n    body();\n}\nfn real() {}\n");
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
        let t = f.fns.iter().find(|i| i.name == "t").unwrap();
        assert!(t.is_test);
        assert!(!f.fns.iter().find(|i| i.name == "real").unwrap().is_test);
    }

    #[test]
    fn cfg_test_gated_use_and_impl_are_test_context() {
        let f = parse(
            "#[cfg(test)]\nuse std::collections::HashMap;\n#[cfg(test)]\nimpl Foo {\n    fn m(&self) {}\n}\nfn live() {}\n",
        );
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(7));
    }

    #[test]
    fn files_under_tests_dir_are_all_test_context() {
        let f = SourceFile::parse(
            PathBuf::from("crates/proxy/tests/e2e.rs"),
            "fn helper() { x.unwrap(); }\n".to_string(),
        );
        assert!(f.file_is_test);
        assert!(f.is_test_line(1));
    }

    #[test]
    fn fn_items_carry_bodies_and_modifiers_keep_attrs() {
        let f = parse("#[cfg(test)]\npub(crate) async fn gated() { body(); }\nfn plain() {}\n");
        let g = f.fns.iter().find(|i| i.name == "gated").unwrap();
        assert!(g.is_test);
        assert!(g.body.is_some());
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
        let (lo, hi) = g.body.unwrap();
        assert_eq!(&f.src[lo..lo + 1], "{");
        assert_eq!(&f.src[hi - 1..hi], "}");
    }

    #[test]
    fn suppression_targets_same_line_or_next() {
        let f = parse(
            "fn a() {\n    work(); // sc-check: allow(panic) reason\n    // sc-check: allow(locks) — next line\n    other();\n}\n",
        );
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].target, 2, "code before comment: same line");
        assert_eq!(f.suppressions[1].target, 4, "comment-only line: next code line");
        assert!(f.suppressed("panic", 2));
        assert!(f.suppressions[0].used.get());
        assert!(!f.suppressed("panic", 4), "different rule not suppressed");
        assert!(f.suppressed("locks", 4));
    }

    #[test]
    fn suppression_with_rule_list() {
        let f = parse("// sc-check: allow(alloc, locks)\nlet x = 1;\n");
        assert_eq!(f.suppressions[0].rules, vec!["alloc", "locks"]);
        assert!(f.suppressed("alloc", 2));
        assert!(f.suppressed("locks", 2));
    }

    #[test]
    fn token_lines_skip_test_context() {
        let f = parse(
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n",
        );
        assert_eq!(f.token_lines(".unwrap()"), vec![1]);
    }
}
