//! A hand-rolled Rust lexer (std-only, per the dependency firewall).
//!
//! [`lex`] turns a source text into a sequence of [`Token`]s whose byte
//! spans *tile* the input: `tokens[0].start == 0`, each token's `end`
//! is the next token's `start`, and the last `end` is `src.len()`.
//! That tiling is the round-trip property the gate's own test suite
//! checks against every `.rs` file in the workspace — it guarantees no
//! byte of input is ever silently skipped or double-counted, which is
//! what makes line/position reporting trustworthy.
//!
//! The lexer is lossless and forgiving: it never fails. Malformed
//! input (an unterminated string, a stray quote) degrades into
//! best-effort tokens that still tile the text, because the gate must
//! be able to scan a tree that does not compile yet.

/// Classification of one lexed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines (one run per token).
    Whitespace,
    /// `// …` to end of line (newline not included).
    LineComment,
    /// `/* … */`, nesting tracked.
    BlockComment,
    /// Identifier or keyword (also any non-ASCII run).
    Ident,
    /// `'lifetime` (the quote plus the name).
    Lifetime,
    /// `"…"` or `b"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` (any hash count).
    RawStr,
    /// `'c'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (digits, `0x…`, `1_000`; `1.5` lexes as
    /// number–dot–number, which still tiles).
    Number,
    /// One punctuation byte that is not a delimiter.
    Punct,
    /// `(`, `[` or `{`.
    Open,
    /// `)`, `]` or `}`.
    Close,
}

/// One lexed span of the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// What the span is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens whose spans tile the whole text. Never panics
/// on any input (see the gate's round-trip property test).
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let start = i;
        let start_line = line;
        let kind = match b[i] {
            c if c.is_ascii_whitespace() => {
                while i < b.len() && b[i].is_ascii_whitespace() {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                TokenKind::LineComment
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                i = scan_plain_string(b, i, &mut line);
                TokenKind::Str
            }
            b'\'' => {
                let (j, kind) = scan_char_or_lifetime(b, i);
                i = j;
                kind
            }
            b'r' | b'b' => match scan_prefixed_literal(b, i, &mut line) {
                Some((j, kind)) => {
                    i = j;
                    kind
                }
                None => {
                    while i < b.len() && is_ident_byte(b[i]) {
                        i += 1;
                    }
                    TokenKind::Ident
                }
            },
            c if c.is_ascii_digit() => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                TokenKind::Number
            }
            c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                while i < b.len() && is_ident_byte(b[i]) {
                    i += 1;
                }
                TokenKind::Ident
            }
            b'(' | b'[' | b'{' => {
                i += 1;
                TokenKind::Open
            }
            b')' | b']' | b'}' => {
                i += 1;
                TokenKind::Close
            }
            _ => {
                i += 1;
                TokenKind::Punct
            }
        };
        debug_assert!(i > start, "lexer must always make progress");
        toks.push(Token {
            kind,
            start,
            end: i,
            line: start_line,
        });
    }
    toks
}

/// Scan a `"…"` body starting at the opening quote; returns the offset
/// one past the closing quote (or `len` if unterminated).
fn scan_plain_string(b: &[u8], open: usize, line: &mut usize) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                if b.get(j + 1) == Some(&b'\n') {
                    *line += 1;
                }
                j = (j + 2).min(b.len());
            }
            b'"' => return j + 1,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// At a `r`/`b` byte, try the literal prefixes: `r"`, `r#…#"`, `b"`,
/// `b'`, `br"`, `br#…#"`. Returns the end offset and kind, or `None`
/// when this is just an identifier starting with r/b (including raw
/// identifiers `r#foo`, which lex as ident–punct–ident and still tile).
fn scan_prefixed_literal(b: &[u8], start: usize, line: &mut usize) -> Option<(usize, TokenKind)> {
    let mut j = start;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = b.get(j) == Some(&b'r');
    if raw {
        j += 1;
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&b'"') {
            return None;
        }
        j += 1;
        while j < b.len() {
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut h = 0usize;
                while h < hashes && b.get(k) == Some(&b'#') {
                    h += 1;
                    k += 1;
                }
                if h == hashes {
                    return Some((k, TokenKind::RawStr));
                }
            }
            if b[j] == b'\n' {
                *line += 1;
            }
            j += 1;
        }
        return Some((j, TokenKind::RawStr));
    }
    // Here the prefix was a lone `b`.
    if j == start {
        return None;
    }
    match b.get(j) {
        Some(&b'"') => Some((scan_plain_string(b, j, line), TokenKind::Str)),
        Some(&b'\'') => {
            let (end, _) = scan_char_or_lifetime(b, j);
            Some((end, TokenKind::Char))
        }
        _ => None,
    }
}

/// At a `'`, decide char literal vs lifetime. A char closes with a
/// quote right after one (possibly escaped) character; anything else is
/// a lifetime (`'static`, `'_`, loop labels).
fn scan_char_or_lifetime(b: &[u8], start: usize) -> (usize, TokenKind) {
    if b.get(start + 1) == Some(&b'\\') {
        // Escaped char: scan to the closing quote ('\n', '\u{41}').
        let mut j = start + 2;
        while j < b.len() {
            match b[j] {
                b'\\' => j = (j + 2).min(b.len()),
                b'\'' => return (j + 1, TokenKind::Char),
                b'\n' => return (j, TokenKind::Char), // malformed; stop at EOL
                _ => j += 1,
            }
        }
        return (j, TokenKind::Char);
    }
    let Some(&first) = b.get(start + 1) else {
        return (start + 1, TokenKind::Lifetime);
    };
    // Width of the one UTF-8 character following the quote.
    let w = match first {
        f if f < 0x80 => 1,
        f if f >= 0xF0 => 4,
        f if f >= 0xE0 => 3,
        f if f >= 0xC0 => 2,
        _ => 1,
    };
    if first != b'\'' && b.get(start + 1 + w) == Some(&b'\'') {
        return (start + 1 + w + 1, TokenKind::Char);
    }
    let mut j = start + 1;
    while j < b.len() && is_ident_byte(b[j]) {
        j += 1;
    }
    (j, TokenKind::Lifetime)
}

/// Blank comments and the interiors of string/char literals (keeping
/// the delimiting quotes and every newline), preserving byte positions,
/// so substring searches cannot false-positive inside text. Built from
/// the token stream, so it is exactly as robust as the lexer.
pub fn stripped(src: &str, tokens: &[Token]) -> String {
    let mut out = src.as_bytes().to_vec();
    for t in tokens {
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => {
                blank(&mut out[t.start..t.end]);
            }
            TokenKind::Str | TokenKind::RawStr | TokenKind::Char => {
                let span = &mut out[t.start..t.end];
                let first_q = span.iter().position(|&c| c == b'"' || c == b'\'');
                let last_q = span.iter().rposition(|&c| c == b'"' || c == b'\'');
                match (first_q, last_q) {
                    (Some(a), Some(z)) if z > a + 1 => blank(&mut span[a + 1..z]),
                    (Some(a), _) if a + 1 < span.len() => blank(&mut span[a + 1..]),
                    _ => {}
                }
            }
            _ => {}
        }
    }
    // Every blanked byte is ASCII space or a preserved newline; kept
    // spans are untouched, so the result is valid UTF-8.
    String::from_utf8(out).unwrap_or_default()
}

fn blank(span: &mut [u8]) {
    for c in span.iter_mut() {
        if *c != b'\n' {
            *c = b' ';
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiles(src: &str) {
        let toks = lex(src);
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.start, pos, "gap/overlap at byte {pos} in {src:?}");
            assert!(t.end > t.start, "empty token in {src:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tokens must cover all of {src:?}");
        assert_eq!(stripped(src, &toks).len(), src.len());
    }

    #[test]
    fn spans_tile_basic_and_tricky_sources() {
        for src in [
            "",
            "fn main() {}\n",
            "let s = \"a \\\" b\"; // trailing\n",
            "/* nested /* block */ still */ x",
            "r#\"raw \" string\"#; r\"plain\"",
            "br##\"bytes\"##; b\"b\"; b'\\n'; b'x'",
            "let c = 'q'; let l: &'static str = \"\"; 'outer: loop { break 'outer; }",
            "let r = r#match; let n = 0xFF_u32 + 1.5e3;",
            "\"unterminated",
            "'\\u{1F600}' '字'",
            "émoji_идент = 1;",
        ] {
            tiles(src);
        }
    }

    #[test]
    fn strings_and_comments_blank_but_quotes_survive() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\nlet b = 1; /* .expect( */\n";
        let s = stripped(src, &lex(src));
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains(".expect("));
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(s.contains('"'), "string delimiters preserved");
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "impl<'a> Foo<'a> { fn f(&'a self) -> &'a str { self.s } }";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime));
        assert!(!toks.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn raw_string_hides_banned_tokens() {
        let src = "let s = r#\"calls .unwrap() and md5( here\"#;";
        let s = stripped(src, &lex(src));
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains("md5("));
    }

    #[test]
    fn line_numbers_advance_through_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"s\ntr\" c";
        let toks = lex(src);
        let find = |txt: &str| toks.iter().find(|t| t.text(src) == txt).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5);
    }
}
