//! Rule 1 (`deps`): the dependency firewall over a TOML-subset reader.
//!
//! Every dependency in every `Cargo.toml` must be path-local (`path =
//! …` or `{ workspace = true }` / `name.workspace = true`). No registry
//! crates means the build needs zero network — the property that makes
//! tier-1 verification reproducible anywhere.
//!
//! The reader understands exactly the TOML shapes Cargo manifests use:
//! `[section]` headers (including dotted `[dependencies.foo]`),
//! `key = value` entries with inline tables and arrays, `#` comments
//! (string-aware, so `path = "a#b"` survives), and **multi-line
//! values** — an entry whose brackets stay open is joined with the
//! following physical lines into one logical line, reported at the line
//! the entry started on.

use crate::Violation;
use std::path::Path;

/// Which kind of dependency table a `[section]` header opens, if any.
///
/// Covers `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]`, `[target.'…'.dependencies]`, and their
/// single-dependency dotted forms (`[dependencies.foo]`).
pub fn dep_section(header: &str) -> Option<DepSection> {
    let h = header.trim();
    for kind in ["dependencies", "dev-dependencies", "build-dependencies"] {
        if let Some(pos) = h.find(kind) {
            let before_ok = pos == 0 || h.as_bytes()[pos - 1] == b'.';
            let after = &h[pos + kind.len()..];
            if before_ok && after.is_empty() {
                return Some(DepSection::Table);
            }
            if before_ok && after.starts_with('.') {
                return Some(DepSection::Single(after[1..].to_string()));
            }
        }
    }
    None
}

/// The two shapes of dependency section.
pub enum DepSection {
    /// `[dependencies]`-style: each `name = …` line is one dependency.
    Table,
    /// `[dependencies.foo]`-style: the whole section is one dependency.
    Single(String),
}

/// Is a single dependency value (the right-hand side of `name = …`)
/// path-local? Accepts inline tables carrying a `path` key and
/// `{ workspace = true }` references. Bare version strings and inline
/// tables with only `version`/`features` are registry pulls.
pub fn value_is_local(value: &str) -> bool {
    let v = value.trim();
    if !v.starts_with('{') {
        return false;
    }
    inline_table_keys(v)
        .iter()
        .any(|(k, val)| k == "path" || (k == "workspace" && val.trim() == "true"))
}

/// Split an inline table `{ a = 1, b = "x" }` into (key, value) pairs.
/// Good enough for Cargo manifests: values never contain top-level
/// commas except inside `[…]` arrays or strings.
pub fn inline_table_keys(v: &str) -> Vec<(String, String)> {
    let inner = v
        .trim()
        .trim_start_matches('{')
        .trim_end_matches('}')
        .trim();
    let mut pairs = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut cur = String::new();
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '[' | '{' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ']' | '}' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            ',' if !in_str && depth == 0 => {
                push_pair(&mut pairs, &cur);
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    push_pair(&mut pairs, &cur);
    pairs
}

fn push_pair(pairs: &mut Vec<(String, String)>, entry: &str) {
    if let Some((k, val)) = entry.split_once('=') {
        pairs.push((k.trim().to_string(), val.trim().to_string()));
    }
}

/// Strip a `#` comment from one physical line, ignoring `#` inside
/// strings. Returns the retained prefix.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Join physical lines into logical `(start_line, text)` entries: a
/// line whose `[`/`{` nesting (outside strings) stays open swallows the
/// following lines until balanced. Comments are stripped per physical
/// line, so a `# trailing comment` inside a multi-line array is fine.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut open = 0i32;
    for (idx, raw) in text.lines().enumerate() {
        let piece = strip_comment(raw);
        let mut in_str = false;
        let mut delta = 0i32;
        for c in piece.chars() {
            match c {
                '"' => in_str = !in_str,
                '[' | '{' if !in_str => delta += 1,
                ']' | '}' if !in_str => delta -= 1,
                _ => {}
            }
        }
        if open > 0 {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(piece.trim());
            }
        } else if !piece.trim().is_empty() {
            out.push((idx + 1, piece.trim().to_string()));
        }
        open = (open + delta).max(0);
    }
    out
}

/// Check one manifest, appending `deps` violations.
pub fn check_manifest(root: &Path, path: &Path, out: &mut Vec<Violation>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let mut in_deps: Option<DepSection> = None;
    // For `[dependencies.foo]` single-dep tables: (name, header line,
    // proven-local yet).
    let mut single: Option<(String, usize, bool)> = None;

    fn flush_single(
        rel: &Path,
        single: &mut Option<(String, usize, bool)>,
        out: &mut Vec<Violation>,
    ) {
        if let Some((name, line, is_local)) = single.take() {
            if !is_local {
                out.push(Violation {
                    rule: "deps",
                    file: rel.to_path_buf(),
                    line,
                    message: format!(
                        "dependency `{name}` is not path-local (add `path = …` or `workspace = true`)"
                    ),
                });
            }
        }
    }

    for (line_no, line) in logical_lines(&text) {
        // A `[header]` line: section headers never continue, so the
        // logical line *is* the physical line.
        if line.starts_with('[') && line.ends_with(']') && !line.contains('=') {
            flush_single(&rel, &mut single, out);
            let header = &line[1..line.len() - 1];
            in_deps = dep_section(header);
            if let Some(DepSection::Single(name)) = &in_deps {
                single = Some((name.clone(), line_no, false));
            }
            continue;
        }
        match &in_deps {
            None => {}
            Some(DepSection::Table) => {
                let Some((key, value)) = line.split_once('=') else {
                    continue;
                };
                let key = key.trim();
                // `name.workspace = true` key form is a local reference.
                if key.ends_with(".workspace") && value.trim() == "true" {
                    continue;
                }
                if !value_is_local(value) {
                    out.push(Violation {
                        rule: "deps",
                        file: rel.clone(),
                        line: line_no,
                        message: format!(
                            "dependency `{key}` is not path-local (add `path = …` or `workspace = true`)"
                        ),
                    });
                }
            }
            Some(DepSection::Single(_)) => {
                if let Some((key, value)) = line.split_once('=') {
                    let key = key.trim();
                    if key == "path" || (key == "workspace" && value.trim() == "true") {
                        if let Some(s) = &mut single {
                            s.2 = true;
                        }
                    }
                }
            }
        }
    }
    flush_single(&rel, &mut single, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(toml: &str) -> Vec<Violation> {
        let dir = std::env::temp_dir().join(format!(
            "sc-check-manifest-{}-{}",
            std::process::id(),
            toml.len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("Cargo.toml");
        std::fs::write(&path, toml).unwrap();
        let mut out = Vec::new();
        check_manifest(&dir, &path, &mut out);
        std::fs::remove_dir_all(&dir).ok();
        out
    }

    #[test]
    fn dep_sections_recognized() {
        assert!(matches!(dep_section("dependencies"), Some(DepSection::Table)));
        assert!(matches!(dep_section("dev-dependencies"), Some(DepSection::Table)));
        assert!(matches!(
            dep_section("workspace.dependencies"),
            Some(DepSection::Table)
        ));
        assert!(matches!(
            dep_section("dependencies.serde"),
            Some(DepSection::Single(n)) if n == "serde"
        ));
        assert!(dep_section("package").is_none());
        assert!(dep_section("features").is_none());
        assert!(dep_section("profile.release").is_none());
    }

    #[test]
    fn local_values_pass_registry_values_fail() {
        assert!(value_is_local("{ path = \"../md5\" }"));
        assert!(value_is_local("{ workspace = true }"));
        assert!(value_is_local("{ path = \"../core\", package = \"summary-cache-core\" }"));
        assert!(!value_is_local("\"1.0\""));
        assert!(!value_is_local("{ version = \"1\", features = [\"derive\"] }"));
        // A `features = ["path"]` array must not count as a path key.
        assert!(!value_is_local("{ version = \"1\", features = [\"path\"] }"));
    }

    #[test]
    fn comments_after_values_do_not_confuse_the_reader() {
        let out = violations(
            "[dependencies]\n\
             good = { path = \"../good\" } # registry-sounding comment: serde = \"1\"\n\
             bad = \"1.0\" # trailing note\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("`bad`"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let out = violations(
            "[dependencies]\n\
             odd = { path = \"../with#hash\" }\n",
        );
        assert!(out.is_empty(), "a # inside a string survives: {out:?}");
    }

    #[test]
    fn multiline_dependency_values_join_into_one_logical_line() {
        let out = violations(
            "[dependencies]\n\
             spread = { version = \"1\", features = [\n\
                 \"alpha\", # per-feature comment\n\
                 \"beta\",\n\
             ] }\n\
             local-spread = { path = \"../x\", features = [\n\
                 \"gamma\",\n\
             ] }\n",
        );
        assert_eq!(out.len(), 1, "only the registry dep is flagged: {out:?}");
        assert_eq!(out[0].line, 2, "flagged at the entry's first line");
        assert!(out[0].message.contains("`spread`"));
    }

    #[test]
    fn inline_tables_and_dotted_single_sections() {
        let out = violations(
            "[dependencies.alpha]\n\
             version = \"1\"\n\
             [dependencies.beta]\n\
             path = \"../beta\"\n\
             [dependencies]\n\
             gamma = { workspace = true }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1, "single-dep section flagged at its header");
        assert!(out[0].message.contains("`alpha`"));
    }

    #[test]
    fn dev_dependencies_registry_crate_still_violates() {
        let out = violations(
            "[package]\n\
             name = \"x\"\n\
             [dev-dependencies]\n\
             proptest = \"1\"\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("`proptest`"));
    }
}
