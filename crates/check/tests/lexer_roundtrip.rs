//! Property tests for the lexer: every `.rs` file in the real
//! workspace must tile exactly (token spans reconstruct the byte
//! length, stripped text stays aligned), and random byte soup must
//! never panic the lexer.

use sc_check::lexer;
use std::path::{Path, PathBuf};

fn workspace_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            workspace_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The tiling invariant: tokens cover `[0, len)` contiguously, in
/// order, with no gaps or overlaps, and line numbers never decrease.
fn assert_tiles(path: &Path, src: &str) {
    let tokens = lexer::lex(src);
    let mut pos = 0usize;
    let mut line = 1usize;
    for t in &tokens {
        assert_eq!(
            t.start,
            pos,
            "{}: gap/overlap at byte {pos} (token {:?})",
            path.display(),
            t.kind
        );
        assert!(t.end > t.start, "{}: empty token", path.display());
        assert!(
            t.line >= line,
            "{}: line went backwards at byte {pos}",
            path.display()
        );
        line = t.line;
        pos = t.end;
    }
    assert_eq!(
        pos,
        src.len(),
        "{}: tokens reconstruct the byte length",
        path.display()
    );
    let stripped = lexer::stripped(src, &tokens);
    assert_eq!(
        stripped.len(),
        src.len(),
        "{}: stripped text stays byte-aligned",
        path.display()
    );
    assert_eq!(
        stripped.matches('\n').count(),
        src.matches('\n').count(),
        "{}: stripping preserves line structure",
        path.display()
    );
}

#[test]
fn lexer_round_trips_every_workspace_source() {
    // CARGO_MANIFEST_DIR is crates/check; the workspace root is ../..
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut sources = Vec::new();
    workspace_sources(&root, &mut sources);
    assert!(
        sources.len() >= 50,
        "expected a real workspace, found {} sources",
        sources.len()
    );
    for path in sources {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue; // non-UTF-8 fixture bait, if any ever appears
        };
        assert_tiles(&path, &src);
    }
}

#[test]
fn lexer_never_panics_on_random_ascii_soup() {
    // Deterministic xorshift64* stream — no ambient entropy in tests.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545F4914F6CDD1D);
        state
    };
    // Bytes weighted toward the lexer's interesting characters.
    let alphabet: &[u8] = b"\"'/r#b\\\n {}()[]a1!:;.*_-=<>";
    for _ in 0..2000 {
        let len = (next() % 64) as usize;
        let bytes: Vec<u8> = (0..len)
            .map(|_| alphabet[(next() as usize) % alphabet.len()])
            .collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiles(Path::new("<random>"), &src);
    }
}

#[test]
fn lexer_handles_adversarial_literals() {
    for src in [
        "r#\"raw \" string\"# + 'a' + '\\n' + b\"bytes\" + br##\"x\"##",
        "let s = \"unterminated",
        "let r = r\"also unterminated",
        "/* nested /* block */ comment */ fn x() {}",
        "/* unterminated block",
        "'lifetime_not_char let x: &'a str = y;",
        "let q = '\\u{1F600}'; let emoji = \"😀\";",
        "macro_rules! m { () => { \"#\" } }",
        "r#match // raw identifier, not a raw string",
        "",
        "\n\n\n",
    ] {
        assert_tiles(Path::new("<adversarial>"), src);
    }
}
