//! End-to-end tests for the `sc-check` binary: each fixture tree seeds
//! one class of violation, and the gate must exit nonzero with a
//! `file:line: [rule] …` diagnostic pointing at the seeded site —
//! while the clean fixture (and the real workspace) pass.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_gate(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sc-check"))
        .arg(root)
        .output()
        .expect("spawn sc-check")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_fixture_passes() {
    let out = run_gate(&fixture("clean"));
    assert!(
        out.status.success(),
        "clean fixture must pass, got:\n{}",
        stdout(&out)
    );
    let text = stdout(&out);
    assert!(
        !text.contains("[") && text.contains("sc-check: ok ("),
        "a clean tree prints only the ok/count line:\n{text}"
    );
    assert!(
        text.contains("manifests") && text.contains("source files"),
        "success reports scanned counts:\n{text}"
    );
}

#[test]
fn real_workspace_passes() {
    // CARGO_MANIFEST_DIR is crates/check; the workspace root is ../..
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_gate(&root);
    assert!(
        out.status.success(),
        "the shipped workspace must satisfy its own gate, got:\n{}",
        stdout(&out)
    );
}

#[test]
fn registry_dep_flagged_with_file_and_line() {
    let out = run_gate(&fixture("registry_dep"));
    assert!(!out.status.success(), "registry deps must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("Cargo.toml:8: [deps]") && text.contains("`serde`"),
        "inline-table registry dep flagged at its line:\n{text}"
    );
    assert!(
        text.contains("Cargo.toml:12: [deps]") && text.contains("`proptest`"),
        "bare-version dev-dependency flagged:\n{text}"
    );
    assert!(
        text.contains("Cargo.toml:14: [deps]") && text.contains("`tokio`"),
        "[dependencies.tokio] section flagged at its header:\n{text}"
    );
    assert!(
        !text.contains("local-ok"),
        "path-local dep must not be flagged:\n{text}"
    );
}

#[test]
fn unwrap_in_proxy_flagged_tests_exempt() {
    let out = run_gate(&fixture("unwrap_in_proxy"));
    assert!(!out.status.success(), "runtime unwrap must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("daemon.rs:5: [panic]") && text.contains(".unwrap()"),
        "unwrap flagged at its line:\n{text}"
    );
    assert!(
        text.contains("daemon.rs:6: [panic]") && text.contains(".expect("),
        "expect flagged at its line:\n{text}"
    );
    assert_eq!(
        text.matches("[panic]").count(),
        2,
        "the cfg(test) unwrap is exempt:\n{text}"
    );
}

#[test]
fn wallclock_in_sim_flagged() {
    let out = run_gate(&fixture("wallclock_in_sim"));
    assert!(!out.status.success(), "ambient time must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("lib.rs:6: [determinism]") && text.contains("Instant::now"),
        "Instant::now flagged:\n{text}"
    );
    assert!(
        text.contains("lib.rs:7: [determinism]") && text.contains("SystemTime::now"),
        "SystemTime::now flagged:\n{text}"
    );
}

#[test]
fn counter_arith_flagged() {
    let out = run_gate(&fixture("counter_arith"));
    assert!(!out.status.success(), "wrapping counters must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("counting.rs:15: [counters]") && text.contains("wrapping_add"),
        "wrapping_add flagged:\n{text}"
    );
    assert!(
        text.contains("counting.rs:20: [counters]") && text.contains("set_count"),
        "bare arithmetic into set_count flagged:\n{text}"
    );
}

#[test]
fn duplicate_metric_registration_flagged_at_both_sites() {
    let out = run_gate(&fixture("dup_metric"));
    assert!(!out.status.success(), "duplicate metric names must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("crates/a/src/lib.rs:5: [metrics]") && text.contains("`sc_dup_total`"),
        "first counter registration site flagged:\n{text}"
    );
    assert!(
        text.contains("crates/b/src/lib.rs:8: [metrics]"),
        "second counter registration site flagged:\n{text}"
    );
    // Histograms are held to the same one-owner rule as counters.
    assert!(
        text.contains("crates/a/src/lib.rs:7: [metrics]") && text.contains("`sc_dup_bytes`"),
        "first histogram registration site flagged:\n{text}"
    );
    assert!(
        text.contains("crates/b/src/lib.rs:9: [metrics]"),
        "second histogram registration site flagged:\n{text}"
    );
    assert_eq!(
        text.matches("[metrics]").count(),
        4,
        "single-site `sc_only_here` and the cfg(test) re-registrations are exempt:\n{text}"
    );
}

#[test]
fn net_in_machine_flagged_tests_exempt() {
    let out = run_gate(&fixture("net_in_machine"));
    assert!(
        !out.status.success(),
        "transport/clock use in the protocol machine must fail the gate"
    );
    let text = stdout(&out);
    assert!(
        text.contains("machine.rs:4: [sans_io]") && text.contains("std::net"),
        "std::net import flagged:\n{text}"
    );
    assert!(
        text.contains("machine.rs:7: [sans_io]") && text.contains("Instant::now"),
        "wall-clock read flagged:\n{text}"
    );
    assert!(
        text.contains("machine.rs:8: [sans_io]") && text.contains("thread::sleep"),
        "sleep flagged:\n{text}"
    );
    assert_eq!(
        text.matches("[sans_io]").count(),
        3,
        "the cfg(test) uses are exempt:\n{text}"
    );
}

#[test]
fn net_in_scenario_flagged_tests_exempt() {
    let out = run_gate(&fixture("net_in_scenario"));
    assert!(
        !out.status.success(),
        "transport/clock use in the scenario generators must fail the gate"
    );
    let text = stdout(&out);
    assert!(
        text.contains("scenario.rs:4: [sans_io]") && text.contains("std::net"),
        "std::net import flagged:\n{text}"
    );
    assert!(
        text.contains("scenario.rs:7: [sans_io]") && text.contains("Instant::now"),
        "wall-clock read flagged:\n{text}"
    );
    assert!(
        text.contains("scenario.rs:8: [sans_io]") && text.contains("thread::sleep"),
        "sleep flagged:\n{text}"
    );
    assert_eq!(
        text.matches("[sans_io]").count(),
        3,
        "the cfg(test) uses are exempt:\n{text}"
    );
}

#[test]
fn md5_in_probe_flagged_tests_exempt() {
    let out = run_gate(&fixture("md5_in_probe"));
    assert!(
        !out.status.success(),
        "direct digest calls on the probe path must fail the gate"
    );
    let text = stdout(&out);
    assert!(
        text.contains("probe.rs:5: [hash_once]") && text.contains("md5("),
        "md5( call flagged:\n{text}"
    );
    assert!(
        text.contains("probe.rs:6: [hash_once]") && text.contains("md5_repeated("),
        "md5_repeated( call flagged:\n{text}"
    );
    assert_eq!(
        text.matches("[hash_once]").count(),
        2,
        "the cfg(test) digest is exempt:\n{text}"
    );
}

#[test]
fn redigest_in_daemon_flagged_entry_and_tests_exempt() {
    let out = run_gate(&fixture("redigest_in_daemon"));
    assert!(
        !out.status.success(),
        "re-keying a URL downstream of request entry must fail the gate"
    );
    let text = stdout(&out);
    assert!(
        text.contains("daemon.rs:8: [hash_once]") && text.contains("UrlKey::new("),
        "the second UrlKey::new flagged at its line:\n{text}"
    );
    assert_eq!(
        text.matches("[hash_once]").count(),
        1,
        "the allow-marked entry digest and the cfg(test) digest are exempt:\n{text}"
    );
}

#[test]
fn lock_in_shard_flagged_tests_exempt() {
    let out = run_gate(&fixture("lock_in_shard"));
    assert!(
        !out.status.success(),
        "lock types inside a shard must fail the gate"
    );
    let text = stdout(&out);
    assert!(
        text.contains("shard.rs:5: [shards]") && text.contains("Mutex"),
        "Mutex field flagged:\n{text}"
    );
    assert!(
        text.contains("shard.rs:6: [shards]") && text.contains("RwLock"),
        "RwLock field flagged:\n{text}"
    );
    assert_eq!(
        text.matches("[shards]").count(),
        2,
        "the cfg(test) locks are exempt:\n{text}"
    );
}

#[test]
fn missing_root_is_a_usage_error() {
    let out = run_gate(Path::new("/nonexistent/definitely-not-a-repo"));
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
}

#[test]
fn unknown_flag_is_rejected_not_treated_as_root() {
    let out = Command::new(env!("CARGO_BIN_EXE_sc-check"))
        .arg("--bogus")
        .arg(fixture("clean"))
        .output()
        .expect("spawn sc-check");
    assert_eq!(out.status.code(), Some(2), "unknown flags exit 2");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        err.contains("unknown flag") && err.contains("--bogus") && err.contains("usage:"),
        "the error names the flag and prints usage:\n{err}"
    );
}

#[test]
fn lock_discipline_flagged_with_drop_and_scope_negatives() {
    let out = run_gate(&fixture("lock_discipline"));
    assert!(!out.status.success(), "guards across blocking calls must fail");
    let text = stdout(&out);
    assert!(
        text.contains("daemon.rs:17: [locks]") && text.contains("thread::sleep"),
        "sleep under a live guard flagged:\n{text}"
    );
    assert!(
        text.contains("daemon.rs:24: [locks]") && text.contains(".send("),
        "channel send under a live guard flagged (drop_hint must not truncate):\n{text}"
    );
    assert!(
        text.contains("daemon.rs:31: [locks]") && text.contains("self-deadlock"),
        "re-acquiring the held lock flagged:\n{text}"
    );
    assert!(
        text.contains("daemon.rs:37: [locks]")
            && text.contains("daemon.rs:43: [locks]")
            && text.matches("inversion").count() == 2,
        "the a→b / b→a inversion is flagged at both sites:\n{text}"
    );
    assert_eq!(
        text.matches("[locks]").count(),
        5,
        "drop(), block scoping, the allow(locks) hold and the test module are all clean:\n{text}"
    );
    assert!(
        !text.contains("[suppression]"),
        "the allow(locks) suppression fired, so it is not stale:\n{text}"
    );
}

#[test]
fn alloc_in_probe_flagged_with_boundary_and_cfg_negatives() {
    let out = run_gate(&fixture("alloc_in_probe"));
    assert!(!out.status.success(), "hot-path allocations must fail");
    let text = stdout(&out);
    for (line, token) in [
        (9, "Vec::new("),
        (11, "vec!["),
        (12, ".to_string()"),
        (13, "format!("),
        (14, "Box::new("),
        (15, ".clone()"),
    ] {
        assert!(
            text.contains(&format!("key.rs:{line}: [alloc]")) && text.contains(token),
            "`{token}` flagged at line {line}:\n{text}"
        );
    }
    assert_eq!(
        text.matches("[alloc]").count(),
        6,
        "allow(alloc) setup, BitVec::new word boundary, cfg(all(test,…)) and bare mod tests are clean:\n{text}"
    );
}

#[test]
fn scratch_leak_flagged_with_suppression_and_test_negatives() {
    let out = run_gate(&fixture("scratch_leak"));
    assert!(!out.status.success(), "per-request scratch allocations must fail");
    let text = stdout(&out);
    for (line, token) in [
        (14, "vec!["),
        (20, ".to_string()"),
        (21, "Vec::new("),
    ] {
        assert!(
            text.contains(&format!("scratch.rs:{line}: [alloc]")) && text.contains(token),
            "`{token}` flagged at line {line}:\n{text}"
        );
    }
    assert_eq!(
        text.matches("[alloc]").count(),
        3,
        "the allow(alloc) construction line and the test module are clean:\n{text}"
    );
}

#[test]
fn half_wired_opcode_flagged_per_missing_side() {
    let out = run_gate(&fixture("half_wired_opcode"));
    assert!(!out.status.success(), "half-wired opcodes must fail");
    let text = stdout(&out);
    assert!(
        text.contains("icp.rs:5: [wire]")
            && text.contains("ICP_OP_HIT")
            && text.contains("encode-side"),
        "constant missing from the encode match flagged:\n{text}"
    );
    assert!(
        text.contains("icp.rs:6: [wire]")
            && text.contains("ICP_OP_SECHO")
            && text.contains("any test"),
        "constant never named in a test flagged:\n{text}"
    );
    assert_eq!(
        text.matches("[wire]").count(),
        2,
        "the fully wired ICP_OP_QUERY is clean:\n{text}"
    );
}

#[test]
fn stale_suppressions_flagged_and_nested_fixtures_dir_scanned() {
    let out = run_gate(&fixture("suppressions"));
    assert!(!out.status.success(), "stale suppressions must fail");
    let text = stdout(&out);
    assert!(
        text.contains("daemon.rs:4: [suppression]") && text.contains("never fired"),
        "unused allow(panic) flagged:\n{text}"
    );
    assert!(
        text.contains("daemon.rs:9: [suppression]") && text.contains("unknown rule `nosuchrule`"),
        "unknown rule name flagged:\n{text}"
    );
    // The satellite-1 regression: a *source* directory named `fixtures`
    // is scanned (the old scanner skipped any dir with that name).
    assert!(
        text.contains("fixtures/helper.rs:5: [panic]"),
        "code under crates/proxy/src/fixtures must still be checked:\n{text}"
    );
}

#[test]
fn json_output_is_valid_sc_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_sc-check"))
        .arg("--json")
        .arg(fixture("lock_discipline"))
        .output()
        .expect("spawn sc-check");
    assert!(!out.status.success(), "violations still fail in --json mode");
    let text = stdout(&out);
    let v = sc_json::Value::parse(&text).expect("stdout parses as sc-json");
    assert_eq!(v.get("ok").and_then(|x| x.as_bool()), Some(false));
    assert_eq!(v.get("manifests").and_then(|x| x.as_u64()), Some(1));
    assert!(v.get("sources").and_then(|x| x.as_u64()).unwrap_or(0) >= 1);
    let violations = v
        .get("violations")
        .and_then(|x| x.as_array())
        .expect("violations array");
    assert_eq!(violations.len(), 5, "same count as the human output");
    for item in violations {
        assert_eq!(item.get("rule").and_then(|x| x.as_str()), Some("locks"));
        assert_eq!(
            item.get("file").and_then(|x| x.as_str()),
            Some("crates/proxy/src/daemon.rs"),
            "file paths are /-separated in JSON"
        );
        assert!(item.get("line").and_then(|x| x.as_u64()).is_some());
        assert!(item.get("message").and_then(|x| x.as_str()).is_some());
    }

    // A clean tree: ok=true, empty violations, exit 0, still valid JSON.
    let out = Command::new(env!("CARGO_BIN_EXE_sc-check"))
        .arg("--json")
        .arg(fixture("clean"))
        .output()
        .expect("spawn sc-check");
    assert!(out.status.success());
    let v = sc_json::Value::parse(&stdout(&out)).expect("clean JSON parses");
    assert_eq!(v.get("ok").and_then(|x| x.as_bool()), Some(true));
    assert_eq!(
        v.get("violations").and_then(|x| x.as_array()).map(<[_]>::len),
        Some(0)
    );
}
