//! End-to-end tests for the `sc-check` binary: each fixture tree seeds
//! one class of violation, and the gate must exit nonzero with a
//! `file:line: [rule] …` diagnostic pointing at the seeded site —
//! while the clean fixture (and the real workspace) pass.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_gate(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sc-check"))
        .arg(root)
        .output()
        .expect("spawn sc-check")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_fixture_passes() {
    let out = run_gate(&fixture("clean"));
    assert!(
        out.status.success(),
        "clean fixture must pass, got:\n{}",
        stdout(&out)
    );
    assert!(stdout(&out).is_empty(), "no diagnostics on a clean tree");
}

#[test]
fn real_workspace_passes() {
    // CARGO_MANIFEST_DIR is crates/check; the workspace root is ../..
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_gate(&root);
    assert!(
        out.status.success(),
        "the shipped workspace must satisfy its own gate, got:\n{}",
        stdout(&out)
    );
}

#[test]
fn registry_dep_flagged_with_file_and_line() {
    let out = run_gate(&fixture("registry_dep"));
    assert!(!out.status.success(), "registry deps must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("Cargo.toml:8: [deps]") && text.contains("`serde`"),
        "inline-table registry dep flagged at its line:\n{text}"
    );
    assert!(
        text.contains("Cargo.toml:12: [deps]") && text.contains("`proptest`"),
        "bare-version dev-dependency flagged:\n{text}"
    );
    assert!(
        text.contains("Cargo.toml:14: [deps]") && text.contains("`tokio`"),
        "[dependencies.tokio] section flagged at its header:\n{text}"
    );
    assert!(
        !text.contains("local-ok"),
        "path-local dep must not be flagged:\n{text}"
    );
}

#[test]
fn unwrap_in_proxy_flagged_tests_exempt() {
    let out = run_gate(&fixture("unwrap_in_proxy"));
    assert!(!out.status.success(), "runtime unwrap must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("daemon.rs:5: [panic]") && text.contains(".unwrap()"),
        "unwrap flagged at its line:\n{text}"
    );
    assert!(
        text.contains("daemon.rs:6: [panic]") && text.contains(".expect("),
        "expect flagged at its line:\n{text}"
    );
    assert_eq!(
        text.matches("[panic]").count(),
        2,
        "the cfg(test) unwrap is exempt:\n{text}"
    );
}

#[test]
fn wallclock_in_sim_flagged() {
    let out = run_gate(&fixture("wallclock_in_sim"));
    assert!(!out.status.success(), "ambient time must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("lib.rs:6: [determinism]") && text.contains("Instant::now"),
        "Instant::now flagged:\n{text}"
    );
    assert!(
        text.contains("lib.rs:7: [determinism]") && text.contains("SystemTime::now"),
        "SystemTime::now flagged:\n{text}"
    );
}

#[test]
fn counter_arith_flagged() {
    let out = run_gate(&fixture("counter_arith"));
    assert!(!out.status.success(), "wrapping counters must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("counting.rs:15: [counters]") && text.contains("wrapping_add"),
        "wrapping_add flagged:\n{text}"
    );
    assert!(
        text.contains("counting.rs:20: [counters]") && text.contains("set_count"),
        "bare arithmetic into set_count flagged:\n{text}"
    );
}

#[test]
fn duplicate_metric_registration_flagged_at_both_sites() {
    let out = run_gate(&fixture("dup_metric"));
    assert!(!out.status.success(), "duplicate metric names must fail the gate");
    let text = stdout(&out);
    assert!(
        text.contains("crates/a/src/lib.rs:5: [metrics]") && text.contains("`sc_dup_total`"),
        "first counter registration site flagged:\n{text}"
    );
    assert!(
        text.contains("crates/b/src/lib.rs:8: [metrics]"),
        "second counter registration site flagged:\n{text}"
    );
    // Histograms are held to the same one-owner rule as counters.
    assert!(
        text.contains("crates/a/src/lib.rs:7: [metrics]") && text.contains("`sc_dup_bytes`"),
        "first histogram registration site flagged:\n{text}"
    );
    assert!(
        text.contains("crates/b/src/lib.rs:9: [metrics]"),
        "second histogram registration site flagged:\n{text}"
    );
    assert_eq!(
        text.matches("[metrics]").count(),
        4,
        "single-site `sc_only_here` and the cfg(test) re-registrations are exempt:\n{text}"
    );
}

#[test]
fn net_in_machine_flagged_tests_exempt() {
    let out = run_gate(&fixture("net_in_machine"));
    assert!(
        !out.status.success(),
        "transport/clock use in the protocol machine must fail the gate"
    );
    let text = stdout(&out);
    assert!(
        text.contains("machine.rs:4: [sans_io]") && text.contains("std::net"),
        "std::net import flagged:\n{text}"
    );
    assert!(
        text.contains("machine.rs:7: [sans_io]") && text.contains("Instant::now"),
        "wall-clock read flagged:\n{text}"
    );
    assert!(
        text.contains("machine.rs:8: [sans_io]") && text.contains("thread::sleep"),
        "sleep flagged:\n{text}"
    );
    assert_eq!(
        text.matches("[sans_io]").count(),
        3,
        "the cfg(test) uses are exempt:\n{text}"
    );
}

#[test]
fn md5_in_probe_flagged_tests_exempt() {
    let out = run_gate(&fixture("md5_in_probe"));
    assert!(
        !out.status.success(),
        "direct digest calls on the probe path must fail the gate"
    );
    let text = stdout(&out);
    assert!(
        text.contains("probe.rs:5: [hash_once]") && text.contains("md5("),
        "md5( call flagged:\n{text}"
    );
    assert!(
        text.contains("probe.rs:6: [hash_once]") && text.contains("md5_repeated("),
        "md5_repeated( call flagged:\n{text}"
    );
    assert_eq!(
        text.matches("[hash_once]").count(),
        2,
        "the cfg(test) digest is exempt:\n{text}"
    );
}

#[test]
fn missing_root_is_a_usage_error() {
    let out = run_gate(Path::new("/nonexistent/definitely-not-a-repo"));
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
}
