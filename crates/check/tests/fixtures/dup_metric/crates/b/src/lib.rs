//! Second site re-registering the same name — the violation. The
//! registry would silently hand back the crate-a counter, so crate-b's
//! increments disappear into a series nobody can attribute.

pub fn record_reply(r: &sc_obs::Registry) {
    r.counter("sc_dup_total").incr();
}

#[cfg(test)]
mod tests {
    // Tests may re-register freely; this must not add a third site.
    fn t(r: &sc_obs::Registry) {
        r.counter("sc_dup_total").add(2);
    }
}
