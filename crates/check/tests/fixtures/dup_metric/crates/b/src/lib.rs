//! Second site re-registering the same names — the violation. The
//! registry would silently hand back the crate-a instruments, so
//! crate-b's samples disappear into a series nobody can attribute.
//! Histograms are covered the same as counters: a size distribution
//! split across two anonymous sites is as unattributable as a count.

pub fn record_reply(r: &sc_obs::Registry) {
    r.counter("sc_dup_total").incr();
    r.histogram("sc_dup_bytes").record(128);
}

#[cfg(test)]
mod tests {
    // Tests may re-register freely; this must not add more sites.
    fn t(r: &sc_obs::Registry) {
        r.counter("sc_dup_total").add(2);
        r.histogram("sc_dup_bytes").record(1);
    }
}
