//! First registration site: this one owns `sc_dup_total` and
//! `sc_dup_bytes`.

pub fn record_request(r: &sc_obs::Registry) {
    r.counter("sc_dup_total").incr();
    r.gauge("sc_only_here").set(1.0);
    r.histogram("sc_dup_bytes").record(64);
}
