//! Seeded violations: each banned digest call once in runtime code,
//! plus one inside `#[cfg(test)]` that must NOT be flagged.

pub fn probe(url: &[u8]) -> bool {
    let digest = sc_md5::md5(url); // line 5: [hash_once] md5(
    let again = sc_md5::md5_repeated(url, 2); // line 6: [hash_once] md5_repeated(
    digest[0] == again[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        // Test code may digest directly to build expectations.
        let _ = sc_md5::md5(b"key");
    }
}
