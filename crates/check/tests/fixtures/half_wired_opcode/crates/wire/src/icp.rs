//! Three opcode constants: one fully wired, one absent from the encode
//! side, one never named in a test.

pub const ICP_OP_QUERY: u8 = 1;
pub const ICP_OP_HIT: u8 = 2;
pub const ICP_OP_SECHO: u8 = 10;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    Query,
    Hit,
    Secho,
}

impl Opcode {
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => ICP_OP_QUERY,
            Opcode::Hit => 2,
            Opcode::Secho => ICP_OP_SECHO,
        }
    }

    pub fn from_u8(v: u8) -> Option<Opcode> {
        match v {
            ICP_OP_QUERY => Some(Opcode::Query),
            ICP_OP_HIT => Some(Opcode::Hit),
            ICP_OP_SECHO => Some(Opcode::Secho),
            _ => None,
        }
    }
}
