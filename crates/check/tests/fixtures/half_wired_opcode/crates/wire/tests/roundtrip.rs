//! Covers Query and Hit — Secho is deliberately never named here.

#[test]
fn query_and_hit_covered() {
    assert_eq!(half_wired::Opcode::from_u8(half_wired::ICP_OP_QUERY).is_some(), true);
    assert_eq!(half_wired::Opcode::from_u8(half_wired::ICP_OP_HIT).is_some(), true);
}
