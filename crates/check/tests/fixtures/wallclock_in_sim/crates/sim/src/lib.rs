//! A simulator that reads the wall clock — results would never replay.

use std::time::{Instant, SystemTime};

pub fn simulate() -> u128 {
    let started = Instant::now();
    let seed = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    seed ^ started.elapsed().as_nanos()
}
