//! A counting Bloom filter whose counters can wrap 15 -> 0, silently
//! corrupting the summary — the overflow Section V-C rules out.

pub struct Counting {
    counts: Vec<u8>,
}

impl Counting {
    fn set_count(&mut self, i: usize, v: u8) {
        self.counts[i] = v & 0x0f;
    }

    pub fn insert(&mut self, i: usize) {
        let c = self.counts[i];
        self.set_count(i, c.wrapping_add(1));
    }

    pub fn remove(&mut self, i: usize) {
        let c = self.counts[i];
        self.set_count(i, c - 1);
    }
}
