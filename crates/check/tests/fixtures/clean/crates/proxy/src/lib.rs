//! Runtime path propagates errors; only test context unwraps.

pub fn decode(buf: &[u8]) -> Result<u8, &'static str> {
    // Strings and comments mentioning .unwrap() must not trip the gate.
    let _doc = "never call .unwrap() here";
    buf.first().copied().ok_or("empty datagram")
}

pub fn risky(buf: &[u8]) -> u8 {
    // sc-check: allow(panic) — fixture: exercises a *used* suppression.
    buf.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::decode(&[7]).unwrap(), 7);
    }
}

#[cfg(all(test, feature = "extra"))]
mod gated_harness {
    // `cfg(all(test, …))` is test context, not just bare `cfg(test)`.
    pub fn helper() -> u8 {
        [1u8].first().copied().unwrap()
    }
}

mod test {
    // Un-attributed `mod test` is still test context.
    pub fn helper() -> u8 {
        [2u8].first().copied().unwrap()
    }
}

#[test]
fn test_attribute_alone_is_exempt() {
    assert_eq!(decode(&[9]).unwrap(), 9);
}
