//! Runtime path propagates errors; only the test module unwraps.

pub fn decode(buf: &[u8]) -> Result<u8, &'static str> {
    // Strings and comments mentioning .unwrap() must not trip the gate.
    let _doc = "never call .unwrap() here";
    buf.first().copied().ok_or("empty datagram")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::decode(&[7]).unwrap(), 7);
    }
}
