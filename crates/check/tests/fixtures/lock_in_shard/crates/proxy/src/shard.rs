//! Seeded violations: each banned lock type once in runtime code, plus
//! uses inside `#[cfg(test)]` that must NOT be flagged.

pub struct Shard {
    dir: std::sync::Mutex<u64>, // line 5: [shards] Mutex
    replicas: std::sync::RwLock<u64>, // line 6: [shards] RwLock
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        // Test code may stage shared state behind Mutex / RwLock.
        let m = std::sync::Mutex::new(0u64);
        let r = std::sync::RwLock::new(0u64);
        let _ = (*m.lock().unwrap(), *r.read().unwrap());
    }
}
