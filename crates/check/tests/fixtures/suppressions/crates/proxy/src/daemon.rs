//! Suppressions that should themselves be diagnostics.

pub fn tidy(v: &[u8]) -> u8 {
    // sc-check: allow(panic) — stale: nothing below can panic.
    v.first().copied().unwrap_or(0)
}

pub fn also(v: &[u8]) -> u8 {
    // sc-check: allow(nosuchrule)
    v.len() as u8
}
