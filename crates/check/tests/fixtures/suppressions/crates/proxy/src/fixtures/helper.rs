//! Lives under a source directory named `fixtures` — the skip list is
//! scoped to the gate's own fixture tree, so this file IS scanned.

pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
