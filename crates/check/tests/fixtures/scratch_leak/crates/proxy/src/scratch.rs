//! A scratch module that defeats its own purpose: per-request
//! allocations inside the reuse path.

pub struct RequestScratch {
    pub candidates: Vec<u32>,
    pub wire: Vec<u8>,
}

impl RequestScratch {
    pub fn new() -> RequestScratch {
        RequestScratch {
            // sc-check: allow(alloc) — once-per-thread construction.
            candidates: Vec::new(),
            wire: vec![0u8; 64],
        }
    }

    pub fn begin_request(&mut self, url: &str) -> String {
        self.candidates.clear();
        let owned = url.to_string();
        self.wire = Vec::new();
        owned
    }
}

impl Default for RequestScratch {
    fn default() -> RequestScratch {
        RequestScratch::new()
    }
}

#[cfg(test)]
mod tests {
    pub fn harness_only() -> Vec<u8> {
        // Test context: allocation tokens here are exempt.
        let mut v = Vec::new();
        v.push(1);
        v
    }
}
