//! A daemon loop that panics on malformed input — exactly what the
//! gate exists to reject.

pub fn handle_datagram(buf: &[u8]) -> u8 {
    let first = buf.first().unwrap();
    let second = buf.get(1).copied().expect("datagram too short");
    first.wrapping_add(second)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        // This unwrap is inside cfg(test) and must NOT be reported.
        assert_eq!(super::handle_datagram(&[1, 2]), [3u8].first().copied().unwrap());
    }
}
