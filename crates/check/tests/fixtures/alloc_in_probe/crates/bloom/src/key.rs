//! A probe path that allocates per call — every banned token once.

pub struct Key {
    bytes: Vec<u8>,
}

impl Key {
    pub fn probe(&self) -> usize {
        let mut scratch = Vec::new();
        scratch.extend_from_slice(&self.bytes);
        let spare = vec![0u8; 4];
        let label = "k".to_string();
        let msg = format!("{label}{}", spare.len());
        let boxed = Box::new(self.bytes.len());
        let copy = self.bytes.clone();
        msg.len() + *boxed + copy.len() + scratch.len()
    }

    pub fn setup() -> Key {
        // sc-check: allow(alloc) — construction is off the hot path.
        Key { bytes: Vec::new() }
    }

    pub fn grow(&mut self) {
        // BitVec::new is not Vec::new — word boundaries matter.
        self.bytes.push(BitVec::new(8).len() as u8);
    }
}

pub struct BitVec(usize);

impl BitVec {
    pub fn new(n: usize) -> BitVec {
        BitVec(n)
    }

    pub fn len(&self) -> usize {
        self.0
    }

    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

#[cfg(all(test, feature = "extra"))]
mod harness {
    pub fn scratch() -> Vec<u8> {
        let mut v = Vec::new();
        v.push(1);
        v
    }
}

mod tests {
    // Un-attributed `mod tests` is still test context.
    pub fn helper() -> String {
        "t".to_string()
    }
}
