//! Lock-discipline violations: guards live across blocking calls,
//! re-acquisition, and an acquisition-order inversion.

use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

pub struct Shared {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn sleepy(s: &Shared) {
    let g = lock(&s.a);
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = *g;
}

pub fn sender(s: &Shared, tx: &std::sync::mpsc::Sender<u32>) {
    let g = lock(&s.a);
    drop_hint(0);
    let _ = tx.send(*g);
}

fn drop_hint(_: u32) {}

pub fn double(s: &Shared) {
    let first = lock(&s.a);
    let again = lock(&s.a);
    let _ = (*first, *again);
}

pub fn ab(s: &Shared) {
    let a = lock(&s.a);
    let b = lock(&s.b);
    let _ = (*a, *b);
}

pub fn ba(s: &Shared) {
    let b = lock(&s.b);
    let a = lock(&s.a);
    let _ = (*a, *b);
}

pub fn dropped(s: &Shared, tx: &std::sync::mpsc::Sender<u32>) {
    let g = lock(&s.a);
    let v = *g;
    drop(g);
    let _ = tx.send(v);
}

pub fn scoped(s: &Shared, tx: &std::sync::mpsc::Sender<u32>) {
    let v = {
        let g = lock(&s.a);
        *g
    };
    let _ = tx.send(v);
}

pub fn deliberate(s: &Shared, tx: &std::sync::mpsc::Sender<u32>) {
    let g = lock(&s.a);
    // sc-check: allow(locks) — fixture: a justified, documented hold.
    let _ = tx.send(*g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_hold_across_send() {
        let s = Shared {
            a: Mutex::new(1),
            b: Mutex::new(2),
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let g = lock(&s.a);
        tx.send(*g).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
