//! Seeded violations: each banned token once in runtime code, plus one
//! of each inside `#[cfg(test)]` that must NOT be flagged.

use std::net::UdpSocket; // line 4: [sans_io] std::net

pub fn flash_crowd() {
    let _t = std::time::Instant::now(); // line 7: [sans_io] Instant::now
    std::thread::sleep(std::time::Duration::from_millis(1)); // line 8: [sans_io] thread::sleep
    let _s: Option<UdpSocket> = None;
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        // Test code may reference std::net, Instant::now, thread::sleep.
        let _ = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(0));
        let _b = std::net::UdpSocket::bind("127.0.0.1:0");
    }
}
