//! Seeded violation: a second `UrlKey::new(` downstream of request
//! entry. The sanctioned entry digest (suppressed) and the
//! `#[cfg(test)]` digest must NOT be flagged.

pub fn serve(url: &str) -> u8 {
    // sc-check: allow(hash_once) — the request's one entry digest.
    let key = UrlKey::new(url.as_bytes());
    let rekeyed = UrlKey::new(url.as_bytes()); // line 8: [hash_once]
    key.byte(0) ^ rekeyed.byte(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        // Test code may key directly to build expectations.
        let _ = UrlKey::new(b"http://s/a");
    }
}
