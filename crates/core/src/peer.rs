//! The peer-summary table: one snapshot per cooperating proxy, probed on
//! every local miss.

use crate::representation::SummarySnapshot;
use std::collections::BTreeMap;

/// Identity of a cooperating proxy.
pub type PeerId = u32;

/// A proxy's view of all its neighbours' directories.
///
/// "Each proxy stores a summary of its directory of cached document in
/// every other proxy. When a user request misses in the local cache, the
/// local proxy checks the stored summaries to see if the requested
/// document might be stored in other proxies" (Section V).
#[derive(Debug, Default)]
pub struct PeerTable {
    peers: BTreeMap<PeerId, SummarySnapshot>,
}

impl PeerTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install or replace `peer`'s snapshot (a full update, or the state
    /// rebuilt after a peer restart — Squid-style reinitialization).
    pub fn install(&mut self, peer: PeerId, snapshot: SummarySnapshot) {
        self.peers.insert(peer, snapshot);
    }

    /// Drop a failed peer's snapshot.
    pub fn evict(&mut self, peer: PeerId) -> bool {
        self.peers.remove(&peer).is_some()
    }

    /// Mutable access to a peer's snapshot, for applying delta updates.
    pub fn get_mut(&mut self, peer: PeerId) -> Option<&mut SummarySnapshot> {
        self.peers.get_mut(&peer)
    }

    /// Read access to a peer's snapshot.
    pub fn get(&self, peer: PeerId) -> Option<&SummarySnapshot> {
        self.peers.get(&peer)
    }

    /// Number of peers with installed snapshots.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when no snapshots are installed.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The peers whose summaries indicate `url` might be cached there —
    /// the set the proxy actually queries.
    pub fn probe_all(&self, url: &[u8], server: &[u8]) -> Vec<PeerId> {
        crate::probe::filter_candidates(self.peers.iter().map(|(&id, snap)| (id, snap)), url, server)
    }

    /// [`probe_all`](Self::probe_all) with pre-hashed keys: the URL is
    /// hashed once and every peer's snapshot reuses the digest/memoized
    /// indices.
    pub fn probe_all_key(&self, url: &sc_bloom::UrlKey, server: &sc_bloom::UrlKey) -> Vec<PeerId> {
        crate::probe::filter_candidates_key(
            self.peers.iter().map(|(&id, snap)| (id, snap)),
            url,
            server,
        )
    }

    /// Total memory devoted to peer summaries — the quantity Section V-B
    /// warns "grows linearly with the number of proxies".
    pub fn memory_bytes(&self) -> usize {
        self.peers.values().map(SummarySnapshot::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::SummaryKind;
    use crate::summary::ProxySummary;

    fn summary_with(urls: &[(&[u8], &[u8])], kind: SummaryKind) -> SummarySnapshot {
        let mut s = ProxySummary::new(kind, 1 << 20);
        for (u, srv) in urls {
            s.insert(u, srv);
        }
        s.publish();
        s.snapshot_published()
    }

    #[test]
    fn probe_all_returns_candidates() {
        let mut t = PeerTable::new();
        t.install(
            1,
            summary_with(&[(b"http://a/x", b"a")], SummaryKind::ExactDirectory),
        );
        t.install(
            2,
            summary_with(&[(b"http://b/y", b"b")], SummaryKind::ExactDirectory),
        );
        t.install(
            3,
            summary_with(
                &[(b"http://a/x", b"a"), (b"http://b/y", b"b")],
                SummaryKind::recommended(),
            ),
        );
        assert_eq!(t.probe_all(b"http://a/x", b"a"), vec![1, 3]);
        assert_eq!(t.probe_all(b"http://b/y", b"b"), vec![2, 3]);
        assert!(t.probe_all(b"http://c/z", b"c").is_empty());
    }

    #[test]
    fn evict_and_reinstall() {
        let mut t = PeerTable::new();
        t.install(
            7,
            summary_with(&[(b"http://a/x", b"a")], SummaryKind::ExactDirectory),
        );
        assert!(t.evict(7));
        assert!(!t.evict(7));
        assert!(t.probe_all(b"http://a/x", b"a").is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn memory_sums_over_peers() {
        let mut t = PeerTable::new();
        t.install(
            1,
            summary_with(
                &[(b"http://a/x", b"a"), (b"http://a/y", b"a")],
                SummaryKind::ExactDirectory,
            ),
        );
        t.install(
            2,
            summary_with(&[(b"http://b/z", b"b")], SummaryKind::ExactDirectory),
        );
        assert_eq!(t.memory_bytes(), 3 * 16);
    }

    #[test]
    fn install_replaces() {
        let mut t = PeerTable::new();
        t.install(
            1,
            summary_with(&[(b"http://a/x", b"a")], SummaryKind::ExactDirectory),
        );
        t.install(
            1,
            summary_with(&[(b"http://b/y", b"b")], SummaryKind::ExactDirectory),
        );
        assert_eq!(t.len(), 1);
        assert!(t.probe_all(b"http://a/x", b"a").is_empty());
        assert_eq!(t.probe_all(b"http://b/y", b"b"), vec![1]);
    }
}
