//! When to publish a summary update (Section V-A / V-E).
//!
//! The paper's primary trigger is a *threshold*: publish when the
//! fraction of cached documents not yet reflected in peers' summaries
//! reaches 1–10 %. A time-based trigger is equivalent once converted via
//! the request rate and miss ratio; and the Section V-A NLANR
//! sub-experiment uses a raw request-count trigger. All three are here.


/// The update trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdatePolicy {
    /// Publish when `fresh_docs / cached_docs` reaches this fraction.
    /// The paper recommends 0.01–0.10.
    Threshold(f64),
    /// Publish every `n` user requests (the Section V-A "delay being 2
    /// and 10 user requests" sub-experiment).
    EveryRequests(u64),
    /// Publish when `elapsed_ms` since the last publish reaches this.
    EveryMillis(u64),
    /// Publish when at least `n` documents have been cached since the
    /// last publish — the Section VI-B prototype's behaviour of sending
    /// an update "whenever there are enough changes to fill an IP
    /// packet" (≈45 new documents ≈ 360 bit flips ≈ one 1.4 KB packet
    /// at 4 hash functions).
    EveryFreshDocs(u64),
}

impl UpdatePolicy {
    /// The paper's recommended default: a 1 % threshold.
    pub fn recommended() -> Self {
        UpdatePolicy::Threshold(0.01)
    }

    /// The Section VI-B prototype's trigger: enough pending changes to
    /// fill one IP packet.
    pub fn packet_fill() -> Self {
        UpdatePolicy::EveryFreshDocs(45)
    }

    /// The fraction of the current directory not yet reflected in
    /// peers' summaries (`fresh_docs / cached_docs`, clamped to 1) —
    /// the quantity [`UpdatePolicy::Threshold`] compares against, and
    /// the "summary staleness" gauge the proxy exports.
    pub fn staleness(fresh_docs: u64, cached_docs: u64) -> f64 {
        (fresh_docs as f64 / cached_docs.max(1) as f64).min(1.0)
    }

    /// Should the proxy publish now?
    ///
    /// * `fresh_docs` — documents cached since the last publish;
    /// * `cached_docs` — documents currently cached;
    /// * `requests_since` — user requests handled since the last publish;
    /// * `elapsed_ms` — wall-clock (or trace-clock) time since it.
    pub fn should_publish(
        &self,
        fresh_docs: u64,
        cached_docs: u64,
        requests_since: u64,
        elapsed_ms: u64,
    ) -> bool {
        match *self {
            UpdatePolicy::Threshold(t) => {
                fresh_docs > 0 && fresh_docs as f64 >= t * cached_docs.max(1) as f64
            }
            UpdatePolicy::EveryRequests(n) => requests_since >= n,
            UpdatePolicy::EveryMillis(ms) => elapsed_ms >= ms,
            UpdatePolicy::EveryFreshDocs(n) => fresh_docs >= n,
        }
    }

    /// Convert a time interval to the equivalent threshold, as Section
    /// V-A prescribes: "based on request rate and typical cache miss
    /// ratio, one can calculate how many new documents enter the cache
    /// during each time interval and their percentage".
    pub fn threshold_for_interval(
        interval_ms: u64,
        requests_per_sec: f64,
        miss_ratio: f64,
        cached_docs: u64,
    ) -> f64 {
        assert!(requests_per_sec >= 0.0 && (0.0..=1.0).contains(&miss_ratio));
        let new_docs = requests_per_sec * miss_ratio * (interval_ms as f64 / 1000.0);
        new_docs / cached_docs.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_fires_at_fraction() {
        let p = UpdatePolicy::Threshold(0.01);
        assert!(!p.should_publish(0, 10_000, 500, 0), "nothing new, never fire");
        assert!(!p.should_publish(99, 10_000, 0, 0));
        assert!(p.should_publish(100, 10_000, 0, 0));
        // Empty cache: any fresh doc fires (cached_docs floored at 1).
        assert!(p.should_publish(1, 0, 0, 0));
    }

    #[test]
    fn request_count_trigger() {
        let p = UpdatePolicy::EveryRequests(10);
        assert!(!p.should_publish(100, 100, 9, 0));
        assert!(p.should_publish(0, 100, 10, 0));
    }

    #[test]
    fn fresh_docs_trigger() {
        let p = UpdatePolicy::packet_fill();
        assert!(!p.should_publish(44, 10_000, 500, 500));
        assert!(p.should_publish(45, 10_000, 0, 0));
    }

    #[test]
    fn time_trigger() {
        let p = UpdatePolicy::EveryMillis(5 * 60 * 1000);
        assert!(!p.should_publish(0, 0, 0, 299_999));
        assert!(p.should_publish(0, 0, 0, 300_000));
    }

    #[test]
    fn staleness_is_clamped_fraction() {
        assert_eq!(UpdatePolicy::staleness(0, 1000), 0.0);
        assert!((UpdatePolicy::staleness(25, 1000) - 0.025).abs() < 1e-12);
        assert_eq!(UpdatePolicy::staleness(10, 5), 1.0, "clamped");
        assert_eq!(UpdatePolicy::staleness(3, 0), 1.0, "empty cache floored at 1 doc");
    }

    #[test]
    fn interval_to_threshold_conversion() {
        // 10 req/s, 40% misses, 5 minutes, 60k cached docs:
        // 10*0.4*300 = 1200 new docs = 2% of the cache.
        let t = UpdatePolicy::threshold_for_interval(300_000, 10.0, 0.4, 60_000);
        assert!((t - 0.02).abs() < 1e-9, "{t}");
    }
}
