//! One probe abstraction for every summary view.
//!
//! The protocol asks the same question in four places — "might this URL
//! be cached at that proxy?" — of four different data structures: a
//! peer's installed [`SummarySnapshot`], a plain Bloom filter decoded
//! off the wire, and the live / published sides of one's own
//! [`ProxySummary`]. [`SummaryProbe`] unifies them so the proxy query
//! path, [`crate::PeerTable::probe_all`] and the simulators share one
//! candidate-selection routine ([`filter_candidates`]) instead of
//! parallel inherent methods.

use crate::representation::SummarySnapshot;
use crate::summary::ProxySummary;

/// "Might `url` (with server component `server`) be cached there?"
///
/// `false` is definite under a fresh summary; with update delay both
/// errors are possible and tolerated (§IV): a false hit costs a wasted
/// query, a false miss a lost remote hit — never a wrong document.
pub trait SummaryProbe {
    /// Evaluate the membership probe.
    fn probe(&self, url: &[u8], server: &[u8]) -> bool;
}

impl<T: SummaryProbe + ?Sized> SummaryProbe for &T {
    fn probe(&self, url: &[u8], server: &[u8]) -> bool {
        (**self).probe(url, server)
    }
}

impl SummaryProbe for SummarySnapshot {
    fn probe(&self, url: &[u8], server: &[u8]) -> bool {
        SummarySnapshot::probe(self, url, server)
    }
}

/// A raw Bloom filter (e.g. freshly decoded from a `DIRFULL` message)
/// probes by URL alone; the server component is the snapshot-level
/// refinement and is ignored here.
impl SummaryProbe for sc_bloom::BloomFilter {
    fn probe(&self, url: &[u8], _server: &[u8]) -> bool {
        self.contains(url)
    }
}

/// The *live* side of a [`ProxySummary`] — what a peer would learn by
/// actually sending the query. Obtained from [`ProxySummary::live`].
#[derive(Clone, Copy)]
pub struct LiveView<'a>(pub(crate) &'a ProxySummary);

impl SummaryProbe for LiveView<'_> {
    fn probe(&self, url: &[u8], server: &[u8]) -> bool {
        self.0.probe_live(url, server)
    }
}

/// The *published* side of a [`ProxySummary`] — what peers currently
/// believe. Obtained from [`ProxySummary::published`].
#[derive(Clone, Copy)]
pub struct PublishedView<'a>(pub(crate) &'a ProxySummary);

impl SummaryProbe for PublishedView<'_> {
    fn probe(&self, url: &[u8], server: &[u8]) -> bool {
        self.0.probe_published(url, server)
    }
}

/// The candidate-selection step every sharing scheme performs: keep the
/// peers whose summaries answer the probe positively, in iteration
/// order. Used by [`crate::PeerTable::probe_all`], the proxy daemon's
/// SC-mode fan-out and the trace-driven simulators.
pub fn filter_candidates<Id, P, I>(peers: I, url: &[u8], server: &[u8]) -> Vec<Id>
where
    P: SummaryProbe,
    I: IntoIterator<Item = (Id, P)>,
{
    peers
        .into_iter()
        .filter(|(_, summary)| summary.probe(url, server))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::SummaryKind;

    fn summary_with(urls: &[(&[u8], &[u8])], kind: SummaryKind) -> ProxySummary {
        let mut s = ProxySummary::new(kind, 1 << 20);
        for (u, srv) in urls {
            s.insert(u, srv);
        }
        s
    }

    #[test]
    fn views_split_live_from_published() {
        let mut s = summary_with(&[(b"http://a/x", b"a")], SummaryKind::recommended());
        assert!(s.live().probe(b"http://a/x", b"a"));
        assert!(!s.published().probe(b"http://a/x", b"a"), "not yet published");
        s.publish();
        assert!(s.published().probe(b"http://a/x", b"a"));
    }

    #[test]
    fn snapshot_and_filter_probe_through_the_trait() {
        let mut s = summary_with(&[(b"http://a/x", b"a")], SummaryKind::ExactDirectory);
        s.publish();
        let snap = s.snapshot_published();
        assert!(SummaryProbe::probe(&snap, b"http://a/x", b"a"));
        assert!(!SummaryProbe::probe(&snap, b"http://a/y", b"a"));

        let mut f =
            sc_bloom::BloomFilter::new(sc_bloom::FilterConfig::with_load_factor(64, 8, 4));
        f.insert(b"http://a/x");
        assert!(SummaryProbe::probe(&f, b"http://a/x", b"ignored"));
    }

    #[test]
    fn filter_candidates_keeps_positive_peers_in_order() {
        let mk = |u: &[u8]| {
            let mut s = summary_with(&[(u, b"srv")], SummaryKind::ExactDirectory);
            s.publish();
            s.snapshot_published()
        };
        let a = mk(b"http://a/x");
        let b = mk(b"http://b/y");
        let both = {
            let mut s = summary_with(
                &[(b"http://a/x", b"srv"), (b"http://b/y", b"srv")],
                SummaryKind::ExactDirectory,
            );
            s.publish();
            s.snapshot_published()
        };
        let peers = [(1u32, &a), (2, &b), (3, &both)];
        assert_eq!(
            filter_candidates(peers.iter().map(|(id, s)| (*id, *s)), b"http://a/x", b"srv"),
            vec![1, 3]
        );
        assert_eq!(
            filter_candidates(peers.iter().map(|(id, s)| (*id, *s)), b"http://c/z", b"srv"),
            Vec::<u32>::new()
        );
    }
}
