//! One probe abstraction for every summary view.
//!
//! The protocol asks the same question in four places — "might this URL
//! be cached at that proxy?" — of four different data structures: a
//! peer's installed [`SummarySnapshot`], a plain Bloom filter decoded
//! off the wire, and the live / published sides of one's own
//! [`ProxySummary`]. [`SummaryProbe`] unifies them so the proxy query
//! path, [`crate::PeerTable::probe_all`] and the simulators share one
//! candidate-selection routine ([`filter_candidates`]) instead of
//! parallel inherent methods.

use crate::representation::SummarySnapshot;
use crate::summary::ProxySummary;
use sc_bloom::UrlKey;

/// "Might `url` (with server component `server`) be cached there?"
///
/// `false` is definite under a fresh summary; with update delay both
/// errors are possible and tolerated (§IV): a false hit costs a wasted
/// query, a false miss a lost remote hit — never a wrong document.
pub trait SummaryProbe {
    /// Evaluate the membership probe.
    fn probe(&self, url: &[u8], server: &[u8]) -> bool;

    /// Evaluate the probe with pre-hashed keys — the hash-once entry
    /// point. Implementations that can exploit the key's digest and
    /// memoized index set override this; the default falls back to the
    /// byte path (correct, but rehashes).
    fn probe_key(&self, url: &UrlKey, server: &UrlKey) -> bool {
        self.probe(url.bytes(), server.bytes())
    }
}

impl<T: SummaryProbe + ?Sized> SummaryProbe for &T {
    fn probe(&self, url: &[u8], server: &[u8]) -> bool {
        (**self).probe(url, server)
    }

    fn probe_key(&self, url: &UrlKey, server: &UrlKey) -> bool {
        (**self).probe_key(url, server)
    }
}

impl SummaryProbe for SummarySnapshot {
    fn probe(&self, url: &[u8], server: &[u8]) -> bool {
        SummarySnapshot::probe(self, url, server)
    }

    fn probe_key(&self, url: &UrlKey, server: &UrlKey) -> bool {
        SummarySnapshot::probe_key(self, url, server)
    }
}

/// A raw Bloom filter (e.g. freshly decoded from a `DIRFULL` message)
/// probes by URL alone; the server component is the snapshot-level
/// refinement and is ignored here.
impl SummaryProbe for sc_bloom::BloomFilter {
    fn probe(&self, url: &[u8], _server: &[u8]) -> bool {
        self.contains(url)
    }

    fn probe_key(&self, url: &UrlKey, _server: &UrlKey) -> bool {
        self.contains_key(url)
    }
}

/// The *live* side of a [`ProxySummary`] — what a peer would learn by
/// actually sending the query. Obtained from [`ProxySummary::live`].
#[derive(Clone, Copy)]
pub struct LiveView<'a>(pub(crate) &'a ProxySummary);

impl SummaryProbe for LiveView<'_> {
    fn probe(&self, url: &[u8], server: &[u8]) -> bool {
        self.0.probe_live(url, server)
    }

    fn probe_key(&self, url: &UrlKey, server: &UrlKey) -> bool {
        self.0.probe_live_key(url, server)
    }
}

/// The *published* side of a [`ProxySummary`] — what peers currently
/// believe. Obtained from [`ProxySummary::published`].
#[derive(Clone, Copy)]
pub struct PublishedView<'a>(pub(crate) &'a ProxySummary);

impl SummaryProbe for PublishedView<'_> {
    fn probe(&self, url: &[u8], server: &[u8]) -> bool {
        self.0.probe_published(url, server)
    }

    fn probe_key(&self, url: &UrlKey, server: &UrlKey) -> bool {
        self.0.probe_published_key(url, server)
    }
}

/// The candidate-selection step every sharing scheme performs: keep the
/// peers whose summaries answer the probe positively, in iteration
/// order. Used by [`crate::PeerTable::probe_all`], the proxy daemon's
/// SC-mode fan-out and the trace-driven simulators.
pub fn filter_candidates<Id, P, I>(peers: I, url: &[u8], server: &[u8]) -> Vec<Id>
where
    P: SummaryProbe,
    I: IntoIterator<Item = (Id, P)>,
{
    peers
        .into_iter()
        .filter(|(_, summary)| summary.probe(url, server))
        .map(|(id, _)| id)
        .collect()
}

/// [`filter_candidates`] with pre-hashed keys: the URL is hashed once
/// when the request is admitted, and every peer probe reuses the key's
/// digest and memoized index set — `1` MD5 derivation per request
/// instead of `2 × k × peers`.
pub fn filter_candidates_key<Id, P, I>(peers: I, url: &UrlKey, server: &UrlKey) -> Vec<Id>
where
    P: SummaryProbe,
    I: IntoIterator<Item = (Id, P)>,
{
    peers
        .into_iter()
        .filter(|(_, summary)| summary.probe_key(url, server))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::SummaryKind;

    fn summary_with(urls: &[(&[u8], &[u8])], kind: SummaryKind) -> ProxySummary {
        let mut s = ProxySummary::new(kind, 1 << 20);
        for (u, srv) in urls {
            s.insert(u, srv);
        }
        s
    }

    #[test]
    fn views_split_live_from_published() {
        let mut s = summary_with(&[(b"http://a/x", b"a")], SummaryKind::recommended());
        assert!(s.live().probe(b"http://a/x", b"a"));
        assert!(!s.published().probe(b"http://a/x", b"a"), "not yet published");
        s.publish();
        assert!(s.published().probe(b"http://a/x", b"a"));
    }

    #[test]
    fn snapshot_and_filter_probe_through_the_trait() {
        let mut s = summary_with(&[(b"http://a/x", b"a")], SummaryKind::ExactDirectory);
        s.publish();
        let snap = s.snapshot_published();
        assert!(SummaryProbe::probe(&snap, b"http://a/x", b"a"));
        assert!(!SummaryProbe::probe(&snap, b"http://a/y", b"a"));

        let mut f =
            sc_bloom::BloomFilter::new(sc_bloom::FilterConfig::with_load_factor(64, 8, 4));
        f.insert(b"http://a/x");
        assert!(SummaryProbe::probe(&f, b"http://a/x", b"ignored"));
    }

    /// Key-based candidate selection agrees with the byte path across
    /// every probe implementation, and at mixed representations.
    #[test]
    fn filter_candidates_key_matches_byte_path() {
        let kinds = [
            SummaryKind::ExactDirectory,
            SummaryKind::ServerName,
            SummaryKind::recommended(),
        ];
        let snaps: Vec<_> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let urls: Vec<(Vec<u8>, Vec<u8>)> = (0..20)
                    .map(|j| {
                        (
                            format!("http://s{}/d{}", (i + j) % 4, j).into_bytes(),
                            format!("s{}", (i + j) % 4).into_bytes(),
                        )
                    })
                    .collect();
                let refs: Vec<(&[u8], &[u8])> =
                    urls.iter().map(|(u, s)| (u.as_slice(), s.as_slice())).collect();
                let mut s = summary_with(&refs, kind);
                s.publish();
                s.snapshot_published()
            })
            .collect();
        for j in 0..30 {
            let url = format!("http://s{}/d{}", j % 4, j).into_bytes();
            let server = format!("s{}", j % 4).into_bytes();
            let (uk, sk) = (sc_bloom::UrlKey::new(&url), sc_bloom::UrlKey::new(&server));
            let by_bytes = filter_candidates(
                snaps.iter().enumerate().map(|(id, s)| (id, s)),
                &url,
                &server,
            );
            let by_key =
                filter_candidates_key(snaps.iter().enumerate().map(|(id, s)| (id, s)), &uk, &sk);
            assert_eq!(by_bytes, by_key, "probe {j}");
        }
    }

    /// The ISSUE's acceptance bar: probing 8 Bloom peers through the
    /// hash-once pipeline must cost ≥ 3× fewer MD5 block compressions
    /// per request than the byte-slice path, counted via the sc-md5 test
    /// hook rather than wall clock. With k=4, w=32 each byte-slice peer
    /// probe digests the URL once (8 blocks total at 8 peers); the key
    /// path pays 2 blocks (URL + server key construction) and probes for
    /// free.
    #[test]
    fn key_probe_all_at_8_peers_cuts_md5_blocks_3x() {
        let mut table = crate::PeerTable::new();
        for id in 0..8u32 {
            let urls: Vec<(Vec<u8>, Vec<u8>)> = (0..10)
                .map(|j| {
                    (
                        format!("http://peer{id}/doc{j}").into_bytes(),
                        format!("peer{id}").into_bytes(),
                    )
                })
                .collect();
            let refs: Vec<(&[u8], &[u8])> =
                urls.iter().map(|(u, s)| (u.as_slice(), s.as_slice())).collect();
            let mut s = summary_with(&refs, SummaryKind::recommended());
            s.publish();
            table.install(id, s.snapshot_published());
        }
        let url = b"http://peer3/doc7"; // short: one MD5 block per digest
        let server = b"peer3";

        let before = sc_md5::blocks_hashed();
        let by_bytes = table.probe_all(url, server);
        let byte_blocks = sc_md5::blocks_hashed() - before;

        let before = sc_md5::blocks_hashed();
        let uk = sc_bloom::UrlKey::new(url);
        let sk = sc_bloom::UrlKey::new(server);
        let by_key = table.probe_all_key(&uk, &sk);
        let key_blocks = sc_md5::blocks_hashed() - before;

        assert_eq!(by_bytes, by_key);
        assert!(by_key.contains(&3));
        assert_eq!(byte_blocks, 8, "one digest per Bloom peer on the byte path");
        assert_eq!(key_blocks, 2, "URL + server key construction, probes free");
        assert!(
            byte_blocks >= 3 * key_blocks,
            "hash-once pipeline must cut MD5 blocks ≥ 3×: {byte_blocks} vs {key_blocks}"
        );
    }

    #[test]
    fn filter_candidates_keeps_positive_peers_in_order() {
        let mk = |u: &[u8]| {
            let mut s = summary_with(&[(u, b"srv")], SummaryKind::ExactDirectory);
            s.publish();
            s.snapshot_published()
        };
        let a = mk(b"http://a/x");
        let b = mk(b"http://b/y");
        let both = {
            let mut s = summary_with(
                &[(b"http://a/x", b"srv"), (b"http://b/y", b"srv")],
                SummaryKind::ExactDirectory,
            );
            s.publish();
            s.snapshot_published()
        };
        let peers = [(1u32, &a), (2, &b), (3, &both)];
        assert_eq!(
            filter_candidates(peers.iter().map(|(id, s)| (*id, *s)), b"http://a/x", b"srv"),
            vec![1, 3]
        );
        assert_eq!(
            filter_candidates(peers.iter().map(|(id, s)| (*id, *s)), b"http://c/z", b"srv"),
            Vec::<u32>::new()
        );
    }
}
