//! The owner side of a summary: tracks the local cache directory under a
//! chosen representation, answers probes against the *last published*
//! state, and produces update messages when published.

use crate::representation::{bloom_bits, SummaryKind, SummarySnapshot};
use crate::wire_cost;
use crate::{expected_docs, AVG_DOC_BYTES};
use sc_bloom::{BitVec, CountingBloomFilter, FilterConfig, Flip, UrlKey};
use sc_md5::{md5, Digest};
use std::collections::{HashMap, HashSet};

/// What a publish produced: the wire cost and, for Bloom summaries, the
/// content (flips or full bitmap) that would travel in the
/// `ICP_OP_DIRUPDATE` message.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishOutcome {
    /// Bytes on the wire *per peer* under the paper's size model.
    pub update_bytes: usize,
    /// Number of directory changes shipped (entries for exact/server,
    /// bit flips for Bloom).
    pub changes: usize,
    /// Bloom only: the update was cheaper as a full bitmap than a delta.
    pub full_bitmap: bool,
    /// Bloom only: the flips to ship when `full_bitmap` is false.
    pub flips: Vec<Flip>,
    /// How stale the peer-visible view was just before this publish:
    /// the fraction of the directory not yet reflected
    /// ([`UpdatePolicy::staleness`]), for observability gauges.
    pub staleness: f64,
    /// The summary's generation at publish time (see
    /// [`ProxySummary::set_generation`]).
    pub generation: u32,
    /// Sequence number allocated to this publish — the first update
    /// datagram of the batch carries it; a transport that splits the
    /// batch allocates follow-on numbers via
    /// [`ProxySummary::advance_seq`].
    pub seq: u32,
}

enum State {
    Exact {
        /// Live directory (MD5 of every cached URL).
        set: HashSet<Digest>,
        /// Docs added since last publish (still cached).
        pending_add: HashSet<Digest>,
        /// Docs removed since last publish (still in the published view).
        pending_remove: HashSet<Digest>,
    },
    Server {
        /// Live per-server document counts (MD5 of server name).
        counts: HashMap<Digest, u32>,
        /// Server set as of the last publish.
        published: HashSet<Digest>,
    },
    Bloom {
        filter: CountingBloomFilter,
        /// Bit array as of the last publish.
        baseline: BitVec,
    },
}

/// A proxy's own cache-directory summary.
///
/// The owning cache calls [`ProxySummary::insert`] / [`remove`] as
/// documents are stored and evicted; [`probe_published`] answers what a
/// *peer* currently believes (the state as of the last publish);
/// [`publish`] ships the pending changes and advances that state.
///
/// [`remove`]: ProxySummary::remove
/// [`probe_published`]: ProxySummary::probe_published
/// [`publish`]: ProxySummary::publish
pub struct ProxySummary {
    kind: SummaryKind,
    state: State,
    docs: u64,
    inserts_since_publish: u64,
    /// Lineage tag for the published bitmap; receivers discard their
    /// replica when it changes. The owner sets it at startup
    /// ([`set_generation`]) — the summary itself never touches clocks,
    /// keeping this crate deterministic.
    ///
    /// [`set_generation`]: ProxySummary::set_generation
    generation: u32,
    /// Sequence number of the last update datagram allocated within the
    /// current generation.
    seq: u32,
}

impl ProxySummary {
    /// A summary for a cache of `cache_bytes`, sized per Section V-D
    /// (Bloom filters get `load_factor × cache_bytes/8K` bits).
    pub fn new(kind: SummaryKind, cache_bytes: u64) -> Self {
        Self::with_expected_docs(kind, expected_docs(cache_bytes))
    }

    /// A summary sized for an explicit expected document count, for
    /// workloads whose mean document size differs from the paper's 8 KB
    /// assumption. The load factor then means exactly "bits per cached
    /// document", as in Section V-D.
    pub fn with_expected_docs(kind: SummaryKind, expected: u64) -> Self {
        let state = match kind {
            SummaryKind::ExactDirectory => State::Exact {
                set: HashSet::new(),
                pending_add: HashSet::new(),
                pending_remove: HashSet::new(),
            },
            SummaryKind::ServerName => State::Server {
                counts: HashMap::new(),
                published: HashSet::new(),
            },
            SummaryKind::Bloom { load_factor, hashes } => {
                let bits = bloom_bits(expected.max(1), load_factor);
                let cfg = FilterConfig {
                    bits,
                    hashes,
                    function_bits: 32,
                };
                State::Bloom {
                    filter: CountingBloomFilter::new(cfg),
                    baseline: BitVec::new(bits as usize),
                }
            }
        };
        ProxySummary {
            kind,
            state,
            docs: 0,
            inserts_since_publish: 0,
            generation: 1,
            seq: 0,
        }
    }

    /// The current generation (defaults to 1 until the owner assigns
    /// one).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Sequence number of the most recently allocated update datagram.
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Assign the bitmap lineage tag (a 0 is coerced to 1 so "no
    /// generation seen yet" stays representable on the wire) and restart
    /// datagram numbering.
    pub fn set_generation(&mut self, generation: u32) {
        self.generation = generation.max(1);
        self.seq = 0;
    }

    /// Pin the update-datagram sequence counter. Test and simulation
    /// drivers use this to start a run near a wraparound boundary;
    /// production code only ever advances the counter.
    pub fn set_seq(&mut self, seq: u32) {
        self.seq = seq;
    }

    /// Allocate the next update-datagram sequence number. [`publish`]
    /// calls this once for the batch; the transport calls it again for
    /// each additional datagram the batch is split into, and for
    /// heartbeat (empty-delta) datagrams that let receivers detect a
    /// lost tail.
    ///
    /// [`publish`]: ProxySummary::publish
    pub fn advance_seq(&mut self) -> u32 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    /// The representation in use.
    pub fn kind(&self) -> SummaryKind {
        self.kind
    }

    /// Documents currently reflected in the live directory.
    pub fn docs(&self) -> u64 {
        self.docs
    }

    /// Documents inserted since the last publish — the "new documents"
    /// the Section V-A update threshold is measured against.
    pub fn fresh_docs(&self) -> u64 {
        self.inserts_since_publish
    }

    /// A document was stored in the local cache.
    pub fn insert(&mut self, url: &[u8], server: &[u8]) {
        match &mut self.state {
            State::Exact {
                set,
                pending_add,
                pending_remove,
            } => {
                let d = md5(url);
                if set.insert(d)
                    && !pending_remove.remove(&d) {
                        pending_add.insert(d);
                    }
            }
            State::Server { counts, .. } => {
                *counts.entry(md5(server)).or_insert(0) += 1;
            }
            State::Bloom { filter, .. } => {
                filter.insert(url);
            }
        }
        self.docs += 1;
        self.inserts_since_publish += 1;
    }

    /// [`insert`](Self::insert) with pre-hashed keys: the digests come
    /// from key construction and Bloom indices from the key's memo, so a
    /// request that already built its keys for probing pays no further
    /// MD5 work to store.
    pub fn insert_key(&mut self, url: &UrlKey, server: &UrlKey) {
        match &mut self.state {
            State::Exact {
                set,
                pending_add,
                pending_remove,
            } => {
                let d = *url.digest();
                if set.insert(d)
                    && !pending_remove.remove(&d) {
                        pending_add.insert(d);
                    }
            }
            State::Server { counts, .. } => {
                *counts.entry(*server.digest()).or_insert(0) += 1;
            }
            State::Bloom { filter, .. } => {
                filter.insert_key(url);
            }
        }
        self.docs += 1;
        self.inserts_since_publish += 1;
    }

    /// A document was evicted from (or invalidated in) the local cache.
    pub fn remove(&mut self, url: &[u8], server: &[u8]) {
        match &mut self.state {
            State::Exact {
                set,
                pending_add,
                pending_remove,
            } => {
                let d = md5(url);
                if set.remove(&d) && !pending_add.remove(&d) {
                    pending_remove.insert(d);
                }
            }
            State::Server { counts, .. } => {
                let d = md5(server);
                if let Some(c) = counts.get_mut(&d) {
                    *c -= 1;
                    if *c == 0 {
                        counts.remove(&d);
                    }
                }
            }
            State::Bloom { filter, .. } => {
                filter.remove(url);
            }
        }
        self.docs = self.docs.saturating_sub(1);
    }

    /// [`remove`](Self::remove) with pre-hashed keys.
    pub fn remove_key(&mut self, url: &UrlKey, server: &UrlKey) {
        match &mut self.state {
            State::Exact {
                set,
                pending_add,
                pending_remove,
            } => {
                let d = *url.digest();
                if set.remove(&d) && !pending_add.remove(&d) {
                    pending_remove.insert(d);
                }
            }
            State::Server { counts, .. } => {
                let d = *server.digest();
                if let Some(c) = counts.get_mut(&d) {
                    *c -= 1;
                    if *c == 0 {
                        counts.remove(&d);
                    }
                }
            }
            State::Bloom { filter, .. } => {
                filter.remove_key(url);
            }
        }
        self.docs = self.docs.saturating_sub(1);
    }

    /// Does the *live* directory contain `url`? (What a peer would learn
    /// by actually sending the query.)
    pub fn probe_live(&self, url: &[u8], server: &[u8]) -> bool {
        match &self.state {
            State::Exact { set, .. } => set.contains(&md5(url)),
            State::Server { counts, .. } => counts.contains_key(&md5(server)),
            State::Bloom { filter, .. } => filter.contains(url),
        }
    }

    /// [`probe_live`](Self::probe_live) with pre-hashed keys.
    pub fn probe_live_key(&self, url: &UrlKey, server: &UrlKey) -> bool {
        match &self.state {
            State::Exact { set, .. } => set.contains(url.digest()),
            State::Server { counts, .. } => counts.contains_key(server.digest()),
            State::Bloom { filter, .. } => filter.contains_key(url),
        }
    }

    /// Does the *published* view (what peers currently hold) indicate
    /// `url`? This is the probe peers evaluate locally before deciding
    /// to query.
    pub fn probe_published(&self, url: &[u8], server: &[u8]) -> bool {
        match &self.state {
            State::Exact {
                set,
                pending_add,
                pending_remove,
            } => {
                let d = md5(url);
                (set.contains(&d) && !pending_add.contains(&d)) || pending_remove.contains(&d)
            }
            State::Server { published, .. } => published.contains(&md5(server)),
            State::Bloom { filter, baseline } => {
                let spec = filter.spec();
                spec.indices(url).iter().all(|&i| baseline.get(i as usize))
            }
        }
    }

    /// [`probe_published`](Self::probe_published) with pre-hashed keys.
    pub fn probe_published_key(&self, url: &UrlKey, server: &UrlKey) -> bool {
        match &self.state {
            State::Exact {
                set,
                pending_add,
                pending_remove,
            } => {
                let d = url.digest();
                (set.contains(d) && !pending_add.contains(d)) || pending_remove.contains(d)
            }
            State::Server { published, .. } => published.contains(server.digest()),
            State::Bloom { filter, baseline } => {
                let spec = filter.spec();
                url.with_indices(&spec, |idx| {
                    idx.iter().all(|&i| baseline.get(i as usize))
                })
            }
        }
    }

    /// Publish the pending changes: advance the peer-visible state to the
    /// live state and report the per-peer wire cost under the paper's
    /// Section V-D size model.
    pub fn publish(&mut self) -> PublishOutcome {
        let staleness =
            crate::update::UpdatePolicy::staleness(self.inserts_since_publish, self.docs);
        self.inserts_since_publish = 0;
        let generation = self.generation;
        let seq = self.advance_seq();
        match &mut self.state {
            State::Exact {
                pending_add,
                pending_remove,
                ..
            } => {
                let changes = pending_add.len() + pending_remove.len();
                pending_add.clear();
                pending_remove.clear();
                PublishOutcome {
                    update_bytes: wire_cost::directory_update_bytes(changes),
                    changes,
                    full_bitmap: false,
                    flips: Vec::new(),
                    staleness,
                    generation,
                    seq,
                }
            }
            State::Server { counts, published } => {
                let current: HashSet<Digest> = counts.keys().copied().collect();
                let changes = published.symmetric_difference(&current).count();
                *published = current;
                PublishOutcome {
                    update_bytes: wire_cost::directory_update_bytes(changes),
                    changes,
                    full_bitmap: false,
                    flips: Vec::new(),
                    staleness,
                    generation,
                    seq,
                }
            }
            State::Bloom { filter, baseline } => {
                let diff = baseline.diff_indices(filter.bits());
                let delta_bytes = wire_cost::bloom_delta_bytes(diff.len());
                let full_bytes = wire_cost::bloom_full_bytes(baseline.len());
                let full = full_bytes < delta_bytes;
                let flips: Vec<Flip> = if full {
                    Vec::new()
                } else {
                    diff.iter()
                        .map(|&i| {
                            if filter.bits().get(i) {
                                Flip::set(i as u32)
                            } else {
                                Flip::clear(i as u32)
                            }
                        })
                        .collect()
                };
                *baseline = filter.bits().clone();
                PublishOutcome {
                    update_bytes: delta_bytes.min(full_bytes),
                    changes: diff.len(),
                    full_bitmap: full,
                    flips,
                    staleness,
                    generation,
                    seq,
                }
            }
        }
    }

    /// The live directory as a [`crate::SummaryProbe`] — what a peer
    /// would learn by actually sending the query.
    pub fn live(&self) -> crate::probe::LiveView<'_> {
        crate::probe::LiveView(self)
    }

    /// The published view as a [`crate::SummaryProbe`] — the probe peers
    /// evaluate locally before deciding to query.
    pub fn published(&self) -> crate::probe::PublishedView<'_> {
        crate::probe::PublishedView(self)
    }

    /// Materialize the currently *published* view as a shippable
    /// snapshot (what a newly joined peer should receive).
    pub fn snapshot_published(&self) -> SummarySnapshot {
        match &self.state {
            State::Exact {
                set,
                pending_add,
                pending_remove,
            } => {
                let mut s: HashSet<Digest> = set.difference(pending_add).copied().collect();
                s.extend(pending_remove.iter().copied());
                SummarySnapshot::Exact(s)
            }
            State::Server { published, .. } => SummarySnapshot::Server(published.clone()),
            State::Bloom { filter, baseline } => SummarySnapshot::Bloom {
                spec: filter.spec(),
                bits: baseline.clone(),
            },
        }
    }

    /// Memory the owner spends on this summary: the live structure plus,
    /// for Bloom, the counter array (Section V-C: 4 bits per counter).
    /// This is the Table III "storage requirement" for one's own summary.
    pub fn owner_memory_bytes(&self) -> usize {
        match &self.state {
            State::Exact { set, .. } => set.len() * 16,
            State::Server { counts, .. } => counts.len() * (16 + 4),
            State::Bloom { filter, .. } => filter.byte_len(),
        }
    }

    /// Memory a *peer* spends holding this summary's published snapshot.
    pub fn peer_memory_bytes(&self) -> usize {
        match &self.state {
            State::Exact { set, .. } => set.len() * 16,
            State::Server { published, .. } => published.len() * 16,
            State::Bloom { baseline, .. } => baseline.byte_len(),
        }
    }

    /// Sanity constant used by sizing helpers.
    pub const fn avg_doc_bytes() -> u64 {
        AVG_DOC_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(i: u32) -> (Vec<u8>, Vec<u8>) {
        (
            format!("http://s{}.example/doc/{}", i / 10, i).into_bytes(),
            format!("s{}.example", i / 10).into_bytes(),
        )
    }

    fn all_kinds() -> Vec<SummaryKind> {
        vec![
            SummaryKind::ExactDirectory,
            SummaryKind::ServerName,
            SummaryKind::Bloom { load_factor: 16, hashes: 4 },
        ]
    }

    #[test]
    fn published_view_lags_until_publish() {
        for kind in all_kinds() {
            let mut s = ProxySummary::new(kind, 1 << 20);
            let (u, srv) = url(1);
            s.insert(&u, &srv);
            assert!(s.probe_live(&u, &srv), "{kind:?}");
            assert!(
                !s.probe_published(&u, &srv),
                "{kind:?}: peers must not see unpublished inserts"
            );
            s.publish();
            assert!(s.probe_published(&u, &srv), "{kind:?}");
        }
    }

    #[test]
    fn removal_lingers_in_published_view() {
        for kind in all_kinds() {
            let mut s = ProxySummary::new(kind, 1 << 20);
            let (u, srv) = url(1);
            s.insert(&u, &srv);
            s.publish();
            s.remove(&u, &srv);
            assert!(!s.probe_live(&u, &srv), "{kind:?}");
            assert!(
                s.probe_published(&u, &srv),
                "{kind:?}: a false hit until the next publish, as in the paper"
            );
            s.publish();
            assert!(!s.probe_published(&u, &srv), "{kind:?}");
        }
    }

    #[test]
    fn insert_then_remove_before_publish_cancels() {
        for kind in all_kinds() {
            let mut s = ProxySummary::new(kind, 1 << 20);
            let (u, srv) = url(7);
            s.insert(&u, &srv);
            s.remove(&u, &srv);
            let out = s.publish();
            assert_eq!(out.changes, 0, "{kind:?}: churn cancels to no changes");
        }
    }

    #[test]
    fn fresh_docs_drive_threshold() {
        let mut s = ProxySummary::new(SummaryKind::recommended(), 1 << 20);
        for i in 0..10 {
            let (u, srv) = url(i);
            s.insert(&u, &srv);
        }
        assert_eq!(s.fresh_docs(), 10);
        assert_eq!(s.docs(), 10);
        s.publish();
        assert_eq!(s.fresh_docs(), 0);
        assert_eq!(s.docs(), 10);
    }

    #[test]
    fn server_name_counts_multiple_docs() {
        let mut s = ProxySummary::new(SummaryKind::ServerName, 1 << 20);
        let (u1, srv) = url(10); // server s1
        let (u2, _) = url(11); // same server
        s.insert(&u1, &srv);
        s.insert(&u2, &srv);
        s.publish();
        s.remove(&u1, &srv);
        s.publish();
        assert!(
            s.probe_published(&u1, &srv),
            "server still has one doc, so the server entry stays"
        );
        s.remove(&u2, &srv);
        s.publish();
        assert!(!s.probe_published(&u1, &srv));
    }

    #[test]
    fn bloom_publish_ships_flips() {
        let mut s = ProxySummary::new(
            SummaryKind::Bloom { load_factor: 16, hashes: 4 },
            1 << 20,
        );
        let (u, srv) = url(3);
        s.insert(&u, &srv);
        let out = s.publish();
        assert!(!out.full_bitmap);
        assert!(out.changes >= 1 && out.changes <= 4);
        assert_eq!(out.flips.len(), out.changes);
        assert!(out.flips.iter().all(|f| f.set_bit()));
        assert_eq!(out.update_bytes, wire_cost::bloom_delta_bytes(out.changes));
    }

    #[test]
    fn bloom_full_bitmap_when_delta_is_large() {
        // Tiny filter + many inserts: the delta would cost more than the
        // bitmap, so publish must switch to a full update.
        let mut s = ProxySummary::new(
            SummaryKind::Bloom { load_factor: 8, hashes: 4 },
            64 * 1024, // 8 expected docs -> 64-bit filter (floor)
        );
        for i in 0..200 {
            let (u, srv) = url(i);
            s.insert(&u, &srv);
        }
        let out = s.publish();
        assert!(out.full_bitmap, "delta of ~64 flips dwarfs an 8-byte bitmap");
        assert_eq!(out.update_bytes, wire_cost::bloom_full_bytes(64));
        assert!(out.flips.is_empty());
    }

    #[test]
    fn snapshot_matches_probe_published() {
        for kind in all_kinds() {
            let mut s = ProxySummary::new(kind, 1 << 20);
            for i in 0..50 {
                let (u, srv) = url(i);
                s.insert(&u, &srv);
            }
            s.publish();
            for i in 50..80 {
                let (u, srv) = url(i);
                s.insert(&u, &srv); // unpublished
            }
            let snap = s.snapshot_published();
            for i in 0..80 {
                let (u, srv) = url(i);
                assert_eq!(
                    snap.probe(&u, &srv),
                    s.probe_published(&u, &srv),
                    "{kind:?} doc {i}"
                );
            }
        }
    }

    #[test]
    fn publishes_carry_sequential_seq_within_a_generation() {
        let mut s = ProxySummary::new(SummaryKind::recommended(), 1 << 20);
        assert_eq!(s.generation(), 1, "usable before the owner assigns one");
        s.set_generation(0xDEAD);
        let (u, srv) = url(1);
        s.insert(&u, &srv);
        let first = s.publish();
        assert_eq!((first.generation, first.seq), (0xDEAD, 1));
        // Transport-allocated numbers (chunking, heartbeats) interleave.
        assert_eq!(s.advance_seq(), 2);
        let (u2, srv2) = url(2);
        s.insert(&u2, &srv2);
        let second = s.publish();
        assert_eq!((second.generation, second.seq), (0xDEAD, 3));
        // A new generation restarts numbering; 0 is coerced to 1.
        s.set_generation(0);
        assert_eq!((s.generation(), s.seq()), (1, 0));
        assert_eq!(s.publish().seq, 1);
    }

    /// Key-based insert/remove/probe must track the byte-based paths
    /// exactly for every representation, through publish boundaries and
    /// the pending-add/pending-remove bookkeeping.
    #[test]
    fn key_ops_equal_byte_ops_for_all_kinds() {
        for kind in all_kinds() {
            let mut by_bytes = ProxySummary::new(kind, 1 << 20);
            let mut by_key = ProxySummary::new(kind, 1 << 20);
            let step = |s: &mut ProxySummary, key: bool, op: u8, i: u32| {
                let (u, srv) = url(i);
                let (uk, sk) = (UrlKey::new(&u), UrlKey::new(&srv));
                match (op, key) {
                    (0, false) => s.insert(&u, &srv),
                    (0, true) => s.insert_key(&uk, &sk),
                    (_, false) => s.remove(&u, &srv),
                    (_, true) => s.remove_key(&uk, &sk),
                }
            };
            // insert 0..30, publish, remove evens, insert 40..50,
            // re-insert 2 (exercises pending cancellation), publish.
            let script: Vec<(u8, u32)> = (0..30)
                .map(|i| (0u8, i))
                .chain((0..30).step_by(2).map(|i| (1u8, i)))
                .chain((40..50).map(|i| (0u8, i)))
                .chain([(0u8, 2)])
                .collect();
            for (n, &(op, i)) in script.iter().enumerate() {
                step(&mut by_bytes, false, op, i);
                step(&mut by_key, true, op, i);
                if n == 29 {
                    assert_eq!(by_bytes.publish(), by_key.publish(), "{kind:?}");
                }
            }
            assert_eq!(by_bytes.publish(), by_key.publish(), "{kind:?}");
            assert_eq!(by_bytes.docs(), by_key.docs(), "{kind:?}");
            for i in 0..60 {
                let (u, srv) = url(i);
                let (uk, sk) = (UrlKey::new(&u), UrlKey::new(&srv));
                assert_eq!(
                    by_bytes.probe_live(&u, &srv),
                    by_key.probe_live_key(&uk, &sk),
                    "{kind:?} live doc {i}"
                );
                assert_eq!(
                    by_bytes.probe_published(&u, &srv),
                    by_key.probe_published_key(&uk, &sk),
                    "{kind:?} published doc {i}"
                );
            }
            assert_eq!(by_bytes.snapshot_published(), by_key.snapshot_published());
        }
    }

    #[test]
    fn memory_accounting() {
        let mut exact = ProxySummary::new(SummaryKind::ExactDirectory, 1 << 20);
        let mut server = ProxySummary::new(SummaryKind::ServerName, 1 << 20);
        for i in 0..100 {
            let (u, srv) = url(i);
            exact.insert(&u, &srv);
            server.insert(&u, &srv);
        }
        assert_eq!(exact.owner_memory_bytes(), 100 * 16);
        assert_eq!(server.owner_memory_bytes(), 10 * 20, "10 servers for 100 docs");
        exact.publish();
        assert_eq!(exact.peer_memory_bytes(), 1600);

        let bloom = ProxySummary::new(
            SummaryKind::Bloom { load_factor: 8, hashes: 4 },
            8 << 20, // 1024 expected docs -> 8192 bits
        );
        // Owner: 4-bit counters (m/2 bytes) + bit array (m/8 bytes).
        assert_eq!(bloom.owner_memory_bytes(), 8192 / 2 + 8192 / 8);
        assert_eq!(bloom.peer_memory_bytes(), 8192 / 8);
    }
}
