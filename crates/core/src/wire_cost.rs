//! The paper's Section V-D message-size model, used to make Fig. 8
//! (bytes of inter-proxy traffic per request) comparable with the
//! original numbers.
//!
//! * query messages (ICP and summary-cache alike): "20 bytes of header
//!   and 50 bytes of average URL";
//! * exact-directory / server-name updates: "20 bytes of header and
//!   16 bytes per change";
//! * Bloom updates: "32 bytes of header plus 4 bytes per bit-flip", or
//!   the whole bit array when that is smaller (Section V-D / VI-A).

/// ICP/SC query header bytes.
pub const QUERY_HEADER_BYTES: usize = 20;
/// Assumed average URL length in a query.
pub const AVG_URL_BYTES: usize = 50;
/// A whole query (or its reply, which the model treats alike).
pub const QUERY_BYTES: usize = QUERY_HEADER_BYTES + AVG_URL_BYTES;

/// Header of an exact-directory / server-name update message.
pub const DIRECTORY_HEADER_BYTES: usize = 20;
/// Bytes per exact-directory / server-name change (one MD5 signature).
pub const DIRECTORY_CHANGE_BYTES: usize = 16;

/// Header of a Bloom `ICP_OP_DIRUPDATE` message: the 20-byte ICP header
/// plus the 12-byte hash-spec extension (Section VI-A).
pub const BLOOM_HEADER_BYTES: usize = 32;
/// Bytes per shipped bit-flip record.
pub const BLOOM_FLIP_BYTES: usize = 4;

/// Wire size of an exact-directory or server-name update carrying
/// `changes` entries.
pub fn directory_update_bytes(changes: usize) -> usize {
    DIRECTORY_HEADER_BYTES + DIRECTORY_CHANGE_BYTES * changes
}

/// Wire size of a Bloom delta update carrying `flips` records.
pub fn bloom_delta_bytes(flips: usize) -> usize {
    BLOOM_HEADER_BYTES + BLOOM_FLIP_BYTES * flips
}

/// Wire size of a Bloom full-bitmap update for an `m`-bit filter.
pub fn bloom_full_bytes(m: usize) -> usize {
    BLOOM_HEADER_BYTES + m.div_ceil(8)
}

/// The cheaper of delta and full-bitmap for a given filter state —
/// what [`crate::ProxySummary::publish`] charges.
pub fn bloom_update_bytes(flips: usize, m: usize) -> usize {
    bloom_delta_bytes(flips).min(bloom_full_bytes(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(QUERY_BYTES, 70);
        assert_eq!(directory_update_bytes(0), 20);
        assert_eq!(directory_update_bytes(3), 68);
        assert_eq!(bloom_delta_bytes(10), 72);
        assert_eq!(bloom_full_bytes(8192), 32 + 1024);
    }

    #[test]
    fn bloom_update_picks_cheaper() {
        // 64-bit filter: full = 32+8 = 40 bytes; delta of 3 flips = 44.
        assert_eq!(bloom_update_bytes(3, 64), 40);
        assert_eq!(bloom_update_bytes(1, 64), 36);
        // Large filter: delta usually wins.
        assert_eq!(bloom_update_bytes(100, 1 << 20), bloom_delta_bytes(100));
    }
}
