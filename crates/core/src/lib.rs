#![warn(missing_docs)]

//! The **summary cache** protocol core (Fan, Cao, Almeida, Broder,
//! SIGCOMM '98): compact, lazily updated summaries of peer cache
//! directories, probed before any inter-proxy query is sent.
//!
//! Each proxy owns a [`ProxySummary`] that tracks its local cache
//! directory under one of the paper's three representations
//! ([`SummaryKind`]):
//!
//! * **exact-directory** — the MD5 signature of every cached URL
//!   (16 bytes per document);
//! * **server-name** — just the server component of cached URLs (≈10×
//!   smaller, many false hits);
//! * **Bloom** — a counting Bloom filter sized at a configurable *load
//!   factor* (bits per document), the representation the paper
//!   recommends.
//!
//! Summaries are **not** kept fresh: a proxy publishes a new
//! [`SummarySnapshot`] only when the fraction of documents not yet
//! reflected crosses an [`UpdatePolicy`] threshold (Section V-A). Peers
//! hold the snapshots in a [`PeerTable`] and probe them on local misses;
//! the tolerated errors are *false hits* (wasted query) and *false
//! misses* (lost remote hit), never incorrect documents.
//!
//! [`wire_cost`] carries the paper's Section V-D message-size model and
//! [`scalability`] the Section V-F extrapolation; both feed the
//! experiment harnesses.

pub mod peer;
pub mod probe;
pub mod representation;
pub mod scalability;
pub mod summary;
pub mod update;
pub mod wire_cost;

pub use peer::{PeerId, PeerTable};
pub use probe::{filter_candidates, filter_candidates_key, SummaryProbe};
pub use representation::{SummaryKind, SummarySnapshot};
pub use summary::{ProxySummary, PublishOutcome};
pub use update::UpdatePolicy;

// Re-exported so consumers of the hash-once probe pipeline (daemon,
// simulators) need not depend on sc-bloom directly.
pub use sc_bloom::UrlKey;

/// The paper's working assumption for sizing Bloom summaries: "The
/// average number of documents is calculated by dividing the cache size
/// by 8 K (the average document size)" (Section V-D).
pub const AVG_DOC_BYTES: u64 = 8 * 1024;

/// Expected number of cached documents for a cache of `cache_bytes`.
pub fn expected_docs(cache_bytes: u64) -> u64 {
    (cache_bytes / AVG_DOC_BYTES).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_docs_matches_section_vd() {
        // 8 GB cache ⇒ about 1M pages (the Section V-F example).
        assert_eq!(expected_docs(8 << 30), 1 << 20);
        assert_eq!(expected_docs(0), 1, "never zero");
        assert_eq!(expected_docs(8 * 1024), 1);
    }
}
