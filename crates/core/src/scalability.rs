//! The Section V-F back-of-the-envelope scalability calculator.
//!
//! The paper extrapolates from 4–16 simulated proxies to 100: memory per
//! proxy, update-message rate, false-hit rate, and total protocol
//! overhead per request. This module reproduces that arithmetic so the
//! `scalability` harness can print the same worked example (100 proxies
//! × 8 GB, load factor 16, 1 % threshold ⇒ ≈ 2 MB per summary, ≈ 200 MB
//! total, < 0.06 extra messages per request).

use crate::{expected_docs, wire_cost};
use sc_bloom::analysis;

/// Deployment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Deployment {
    /// Number of cooperating proxies.
    pub proxies: u32,
    /// Cache size per proxy, bytes.
    pub cache_bytes: u64,
    /// Bloom load factor (bits per cached document).
    pub load_factor: u32,
    /// Hash functions.
    pub hashes: u32,
    /// Update threshold (fraction of new documents).
    pub threshold: f64,
}

impl Deployment {
    /// The Section V-F worked example.
    pub fn paper_example() -> Self {
        Deployment {
            proxies: 100,
            cache_bytes: 8 << 30,
            load_factor: 16,
            hashes: 10,
            threshold: 0.01,
        }
    }
}

/// What the deployment costs, per the paper's arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Cached documents per proxy (cache / 8 KB).
    pub docs_per_proxy: u64,
    /// Bloom filter size per summary, bits.
    pub filter_bits: u64,
    /// One peer summary, bytes.
    pub summary_bytes: u64,
    /// All peer summaries held by one proxy, bytes.
    pub peer_memory_bytes: u64,
    /// The proxy's own 4-bit counter array, bytes.
    pub counter_bytes: u64,
    /// User requests between updates (threshold × documents, the paper's
    /// approximation of "new documents ≈ requests").
    pub requests_between_updates: u64,
    /// Update messages sent per user request (one per peer per update).
    pub update_messages_per_request: f64,
    /// False-positive probability of one summary probe.
    pub false_positive_per_summary: f64,
    /// Probability some peer summary yields a false hit on a miss.
    pub false_hit_per_request: f64,
    /// Protocol messages per request: updates + false-hit queries
    /// (remote hits and stale hits excluded, as in the paper).
    pub overhead_messages_per_request: f64,
    /// Approximate size of one update message, bytes.
    pub update_message_bytes: u64,
}

/// Run the Section V-F arithmetic for a deployment.
pub fn estimate(d: Deployment) -> Estimate {
    assert!(d.proxies >= 2, "cache sharing needs at least two proxies");
    assert!((0.0..=1.0).contains(&d.threshold) && d.threshold > 0.0);
    let docs = expected_docs(d.cache_bytes);
    let filter_bits = docs * d.load_factor as u64;
    let summary_bytes = filter_bits.div_ceil(8);
    let peers = (d.proxies - 1) as u64;
    let requests_between_updates = ((d.threshold * docs as f64) as u64).max(1);
    let update_messages_per_request = peers as f64 / requests_between_updates as f64;
    let fp =
        analysis::false_positive_probability_asymptotic(d.load_factor as f64, d.hashes);
    // Probability at least one of the (n-1) summaries false-hits.
    let false_hit = 1.0 - (1.0 - fp).powi(peers as i32);
    // Each new doc sets ≤ k bits and (at steady state) an eviction clears
    // ≤ k bits: ~2k flips per new document, 4 bytes each, capped by the
    // full-bitmap alternative.
    let flips = 2 * requests_between_updates * d.hashes as u64;
    let update_message_bytes = wire_cost::bloom_update_bytes(flips as usize, filter_bits as usize) as u64;
    Estimate {
        docs_per_proxy: docs,
        filter_bits,
        summary_bytes,
        peer_memory_bytes: peers * summary_bytes,
        counter_bytes: filter_bits / 2,
        requests_between_updates,
        update_messages_per_request,
        false_positive_per_summary: fp,
        false_hit_per_request: false_hit,
        overhead_messages_per_request: update_messages_per_request + false_hit,
        update_message_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the Section V-F worked example: 100 proxies, 8 GB caches,
    /// load factor 16, 10 hash functions, 1 % threshold.
    #[test]
    fn paper_worked_example() {
        let e = estimate(Deployment::paper_example());
        assert_eq!(e.docs_per_proxy, 1 << 20, "about 1M web pages");
        assert_eq!(e.summary_bytes, 2 << 20, "2 MB at load factor 16");
        // "about 200 MB to represent all the summaries"
        assert_eq!(e.peer_memory_bytes, 99 * (2 << 20));
        assert!(e.peer_memory_bytes > 190 << 20 && e.peer_memory_bytes < 210 << 20);
        // "another 8 MB to represent its own counters"
        assert_eq!(e.counter_bytes, 8 << 20);
        // "the threshold of 1% corresponds to 10 K requests between
        // updates … the number of update messages per request is less
        // than 0.01"
        assert!((10_000..=10_600).contains(&e.requests_between_updates));
        assert!(e.update_messages_per_request < 0.01);
        // "the false hit ratios are around 4.7% for the load factor of 16
        // with 10 hash functions"
        assert!(
            (0.035..0.06).contains(&e.false_hit_per_request),
            "false hit {:.4}",
            e.false_hit_per_request
        );
        assert!(e.false_positive_per_summary < 0.0005, "per summary < 0.05%");
        // "the overhead introduced by the protocol is under 0.06 messages
        // per request"
        assert!(e.overhead_messages_per_request < 0.06);
        // "only the update message is large, on the order of several
        // hundreds KB"
        assert!(
            (100 << 10..1 << 20).contains(&(e.update_message_bytes as usize)),
            "update msg {} bytes",
            e.update_message_bytes
        );
    }

    #[test]
    fn overhead_grows_sublinearly_with_proxies() {
        let base = Deployment::paper_example();
        let e10 = estimate(Deployment { proxies: 10, ..base });
        let e100 = estimate(Deployment { proxies: 100, ..base });
        // 10x the proxies costs well under 20x the per-request overhead.
        assert!(
            e100.overhead_messages_per_request < 20.0 * e10.overhead_messages_per_request
        );
        // Memory, by contrast, is linear — the paper's stated limit.
        assert!(e100.peer_memory_bytes == 11 * e10.peer_memory_bytes);
    }

    #[test]
    fn tighter_threshold_means_more_update_traffic() {
        let base = Deployment::paper_example();
        let tight = estimate(Deployment { threshold: 0.001, ..base });
        let loose = estimate(Deployment { threshold: 0.1, ..base });
        assert!(tight.update_messages_per_request > loose.update_messages_per_request * 50.0);
    }

    #[test]
    #[should_panic(expected = "at least two proxies")]
    fn rejects_single_proxy() {
        estimate(Deployment {
            proxies: 1,
            ..Deployment::paper_example()
        });
    }
}
