//! The three summary representations of Section V-B/V-D and the
//! published snapshots peers probe.

use sc_bloom::{BitVec, HashSpec, UrlKey};
use sc_md5::{md5, Digest};
use std::collections::HashSet;

/// Which representation a proxy summarizes its directory with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryKind {
    /// The cache directory itself, one 16-byte MD5 signature per URL.
    ExactDirectory,
    /// Only the server-name component of cached URLs.
    ServerName,
    /// A Bloom filter (the paper evaluates load factors 8, 16, 32 with
    /// 4 hashes).
    Bloom {
        /// Bits per expected cached document.
        load_factor: u32,
        /// Number of hash functions.
        hashes: u16,
    },
}

impl SummaryKind {
    /// The paper's recommended configuration: "a load factor between 8
    /// and 16 works well … four or more hash functions" (Section V-E).
    pub fn recommended() -> Self {
        SummaryKind::Bloom {
            load_factor: 8,
            hashes: 4,
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match self {
            SummaryKind::ExactDirectory => "exact-directory".into(),
            SummaryKind::ServerName => "server-name".into(),
            SummaryKind::Bloom { load_factor, hashes } => {
                format!("bloom-lf{load_factor}-k{hashes}")
            }
        }
    }
}

/// A published (peer-visible) summary: the paper's "summary of the cache
/// directory" a proxy ships to its neighbours, probed read-only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SummarySnapshot {
    /// Set of MD5 signatures of cached URLs.
    Exact(HashSet<Digest>),
    /// Set of MD5 signatures of server names with ≥1 cached document.
    Server(HashSet<Digest>),
    /// Bloom filter bit array plus its self-describing hash spec.
    Bloom {
        /// Hash family (travels in every update header).
        spec: HashSpec,
        /// The filter bits.
        bits: BitVec,
    },
}

impl SummarySnapshot {
    /// Probe: might `url` (with server component `server`) be cached at
    /// the publishing proxy? `false` is definite under a fresh snapshot;
    /// with update delay both errors are possible and tolerated.
    pub fn probe(&self, url: &[u8], server: &[u8]) -> bool {
        match self {
            SummarySnapshot::Exact(set) => set.contains(&md5(url)),
            SummarySnapshot::Server(set) => set.contains(&md5(server)),
            SummarySnapshot::Bloom { spec, bits } => spec
                .indices(url)
                .iter()
                .all(|&i| bits.get(i as usize)),
        }
    }

    /// [`probe`](Self::probe) with pre-hashed keys: exact and server
    /// snapshots compare the digest computed at key construction, and
    /// Bloom snapshots reuse the key's memoized index set — no MD5 work
    /// per probe.
    pub fn probe_key(&self, url: &UrlKey, server: &UrlKey) -> bool {
        match self {
            SummarySnapshot::Exact(set) => set.contains(url.digest()),
            SummarySnapshot::Server(set) => set.contains(server.digest()),
            SummarySnapshot::Bloom { spec, bits } => {
                url.with_indices(spec, |idx| idx.iter().all(|&i| bits.get(i as usize)))
            }
        }
    }

    /// Bytes of memory a peer devotes to holding this snapshot — the
    /// Table III quantity.
    pub fn memory_bytes(&self) -> usize {
        match self {
            SummarySnapshot::Exact(set) => set.len() * 16,
            SummarySnapshot::Server(set) => set.len() * 16,
            SummarySnapshot::Bloom { bits, .. } => bits.byte_len(),
        }
    }

    /// An empty snapshot of the given kind (what peers assume before the
    /// first update arrives).
    pub fn empty(kind: SummaryKind, expected_docs: u64) -> Self {
        match kind {
            SummaryKind::ExactDirectory => SummarySnapshot::Exact(HashSet::new()),
            SummaryKind::ServerName => SummarySnapshot::Server(HashSet::new()),
            SummaryKind::Bloom { load_factor, hashes } => {
                let bits = bloom_bits(expected_docs, load_factor);
                SummarySnapshot::Bloom {
                    spec: HashSpec::paper_default(hashes, bits)
                        .expect("valid bloom parameters"),
                    bits: BitVec::new(bits as usize),
                }
            }
        }
    }
}

/// Bloom filter size in bits for `expected_docs` documents at
/// `load_factor` bits per document.
pub fn bloom_bits(expected_docs: u64, load_factor: u32) -> u32 {
    (expected_docs * load_factor as u64)
        .max(64)
        .min(u32::MAX as u64 - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            SummaryKind::ExactDirectory,
            SummaryKind::ServerName,
            SummaryKind::Bloom { load_factor: 8, hashes: 4 },
            SummaryKind::Bloom { load_factor: 16, hashes: 4 },
        ];
        let labels: HashSet<String> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn exact_probe_matches_url_only() {
        let mut set = HashSet::new();
        set.insert(md5(b"http://a/x"));
        let snap = SummarySnapshot::Exact(set);
        assert!(snap.probe(b"http://a/x", b"a"));
        assert!(!snap.probe(b"http://a/y", b"a"));
    }

    #[test]
    fn server_probe_matches_any_url_of_server() {
        let mut set = HashSet::new();
        set.insert(md5(b"a"));
        let snap = SummarySnapshot::Server(set);
        assert!(snap.probe(b"http://a/x", b"a"));
        assert!(snap.probe(b"http://a/other", b"a"), "server-level false hit by design");
        assert!(!snap.probe(b"http://b/x", b"b"));
    }

    #[test]
    fn empty_snapshots_answer_no() {
        for kind in [
            SummaryKind::ExactDirectory,
            SummaryKind::ServerName,
            SummaryKind::recommended(),
        ] {
            let snap = SummarySnapshot::empty(kind, 1000);
            assert!(!snap.probe(b"http://a/x", b"a"), "{:?}", kind);
            if matches!(kind, SummaryKind::Bloom { .. }) {
                assert_eq!(snap.memory_bytes(), 1000, "8 bits/doc = 1 byte/doc");
            } else {
                assert_eq!(snap.memory_bytes(), 0);
            }
        }
    }

    #[test]
    fn bloom_bits_has_floor() {
        assert_eq!(bloom_bits(1, 8), 64);
        assert_eq!(bloom_bits(1000, 16), 16_000);
    }
}
