//! The metric registry and its frozen [`Snapshot`] (Prometheus-style
//! text exposition plus `sc-json` serialization).

use std::sync::Mutex;

use crate::instrument::{bucket_floor, Counter, Gauge, Histogram, HistogramSnapshot};
use crate::journal::Journal;
use sc_json::{ToJson, Value};

/// What an instrument is; fixed at registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    storage: Storage,
}

#[derive(Debug, Clone)]
enum Storage {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Storage {
    fn kind(&self) -> Kind {
        match self {
            Storage::Counter(_) => Kind::Counter,
            Storage::Gauge(_) => Kind::Gauge,
            Storage::Histogram(_) => Kind::Histogram,
        }
    }
}

/// A registry of named instruments plus an event [`Journal`].
///
/// Registration (`counter`/`gauge`/`histogram` and their `_with`-labels
/// variants) is get-or-create on the `(name, labels)` pair: asking twice
/// returns handles to the same storage, so components can look up shared
/// instruments without coordinating. Asking for an existing name with a
/// *different* instrument kind returns a detached handle that records
/// nowhere — a registry never panics at runtime. (`sc-check`'s `metrics`
/// rule keeps that an un-hittable corner: each metric name may appear at
/// only one registration site in the workspace.)
#[derive(Debug)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
    journal: Journal,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Survive a poisoned registry lock: metric registration never unwinds,
/// and a panicked writer leaves at worst a half-registered entry list.
fn lock(m: &Mutex<Vec<Entry>>) -> std::sync::MutexGuard<'_, Vec<Entry>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Registry {
    /// An empty registry with the default journal capacity (1024 events).
    pub fn new() -> Registry {
        Registry::with_journal_capacity(1024)
    }

    /// An empty registry whose journal keeps the last `cap` events.
    pub fn with_journal_capacity(cap: usize) -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
            journal: Journal::new(cap),
        }
    }

    /// The registry's event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], want: Kind) -> Storage {
        let mut entries = lock(&self.entries);
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && labels_eq(&e.labels, labels))
        {
            if e.storage.kind() == want {
                return e.storage.clone();
            }
            // Kind clash: hand back working-but-detached storage.
            return detached(want);
        }
        let storage = detached(want);
        entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            storage: storage.clone(),
        });
        storage
    }

    /// Get or create the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get or create the counter `name` with the given label pairs.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, labels, Kind::Counter) {
            Storage::Counter(c) => c,
            _ => Counter::new(),
        }
    }

    /// Get or create the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get or create the gauge `name` with the given label pairs.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, labels, Kind::Gauge) {
            Storage::Gauge(g) => g,
            _ => Gauge::new(),
        }
    }

    /// Get or create the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Get or create the histogram `name` with the given label pairs.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, labels, Kind::Histogram) {
            Storage::Histogram(h) => h,
            _ => Histogram::new(),
        }
    }

    /// Freeze every instrument into a [`Snapshot`] (registration order).
    pub fn snapshot(&self) -> Snapshot {
        let entries = lock(&self.entries);
        Snapshot {
            instruments: entries
                .iter()
                .map(|e| InstrumentSnapshot {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    value: match &e.storage {
                        Storage::Counter(c) => Observation::Counter(c.get()),
                        Storage::Gauge(g) => Observation::Gauge(g.get()),
                        Storage::Histogram(h) => Observation::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

fn labels_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len() && have.iter().zip(want).all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

fn detached(kind: Kind) -> Storage {
    match kind {
        Kind::Counter => Storage::Counter(Counter::new()),
        Kind::Gauge => Storage::Gauge(Gauge::new()),
        Kind::Histogram => Storage::Histogram(Histogram::new()),
    }
}

/// One frozen instrument reading.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentSnapshot {
    /// Metric name, e.g. `sc_http_requests_total`.
    pub name: String,
    /// Label pairs, e.g. `[("peer", "2")]`; empty for global instruments.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: Observation,
}

/// A frozen instrument value.
#[derive(Debug, Clone, PartialEq)]
pub enum Observation {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram reading.
    Histogram(HistogramSnapshot),
}

/// A frozen view of a whole registry, in registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Every registered instrument.
    pub instruments: Vec<InstrumentSnapshot>,
}

impl Snapshot {
    /// Number of distinct instruments (a labeled series counts once per
    /// label set).
    pub fn len(&self) -> usize {
        self.instruments.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.instruments.is_empty()
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&InstrumentSnapshot> {
        self.instruments
            .iter()
            .find(|i| i.name == name && labels_eq(&i.labels, labels))
    }

    /// Sum of counter `name` across every label set (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.instruments
            .iter()
            .filter(|i| i.name == name)
            .map(|i| match i.value {
                Observation::Counter(v) => v,
                _ => 0,
            })
            .sum()
    }

    /// Counter `name` with exactly these labels (0 if absent).
    pub fn counter_value_with(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.find(name, labels).map(|i| &i.value) {
            Some(&Observation::Counter(v)) => v,
            _ => 0,
        }
    }

    /// Gauge `name` with exactly these labels (`None` if absent).
    pub fn gauge_value_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.find(name, labels).map(|i| &i.value) {
            Some(&Observation::Gauge(v)) => Some(v),
            _ => None,
        }
    }

    /// Unlabeled gauge `name` (`None` if absent).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauge_value_with(name, &[])
    }

    /// Histogram `name` merged across every label set (empty if absent).
    pub fn histogram_value(&self, name: &str) -> HistogramSnapshot {
        let mut acc = HistogramSnapshot::default();
        for i in self.instruments.iter().filter(|i| i.name == name) {
            if let Observation::Histogram(h) = &i.value {
                acc = acc.merged(h);
            }
        }
        acc
    }

    /// Render in the Prometheus text exposition format: one `# TYPE`
    /// line per metric name, histograms as cumulative `_bucket{le=...}`
    /// series plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<&str> = Vec::new();
        for i in &self.instruments {
            let ty = match i.value {
                Observation::Counter(_) => "counter",
                Observation::Gauge(_) => "gauge",
                Observation::Histogram(_) => "histogram",
            };
            if !typed.contains(&i.name.as_str()) {
                typed.push(&i.name);
                out.push_str(&format!("# TYPE {} {}\n", i.name, ty));
            }
            match &i.value {
                Observation::Counter(v) => {
                    out.push_str(&format!("{}{} {}\n", i.name, label_block(&i.labels, &[]), v));
                }
                Observation::Gauge(v) => {
                    out.push_str(&format!("{}{} {}\n", i.name, label_block(&i.labels, &[]), v));
                }
                Observation::Histogram(h) => {
                    let mut acc = 0u64;
                    for (b, &c) in h.counts.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        acc += c;
                        // Bucket b covers [floor(b), floor(b+1)); report
                        // the exclusive ceiling as the le bound.
                        let le = bucket_floor(b + 1).to_string();
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            i.name,
                            label_block(&i.labels, &[("le", &le)]),
                            acc
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        i.name,
                        label_block(&i.labels, &[("le", "+Inf")]),
                        acc
                    ));
                    out.push_str(&format!("{}_sum{} {}\n", i.name, label_block(&i.labels, &[]), h.sum));
                    out.push_str(&format!("{}_count{} {}\n", i.name, label_block(&i.labels, &[]), acc));
                }
            }
        }
        out
    }
}

/// `{k="v",...}` with extra pairs appended; empty string for no labels.
fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))));
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

impl ToJson for InstrumentSnapshot {
    fn to_json(&self) -> Value {
        let labels = Value::Object(
            self.labels
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect(),
        );
        match &self.value {
            Observation::Counter(v) => sc_json::obj! {
                "name" => self.name, "kind" => "counter", "labels" => labels, "value" => *v
            },
            Observation::Gauge(v) => sc_json::obj! {
                "name" => self.name, "kind" => "gauge", "labels" => labels, "value" => *v
            },
            Observation::Histogram(h) => sc_json::obj! {
                "name" => self.name, "kind" => "histogram", "labels" => labels,
                "count" => h.samples(), "sum" => h.sum, "buckets" => h.counts
            },
        }
    }
}

impl ToJson for Snapshot {
    fn to_json(&self) -> Value {
        sc_json::obj! { "instruments" => self.instruments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.incr();
        b.incr();
        assert_eq!(r.snapshot().counter_value("x_total"), 2, "same storage");
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        r.counter_with("peer_q", &[("peer", "1")]).add(3);
        r.counter_with("peer_q", &[("peer", "2")]).add(4);
        let s = r.snapshot();
        assert_eq!(s.len(), 2);
        assert_eq!(s.counter_value("peer_q"), 7, "sum across label sets");
        assert_eq!(s.counter_value_with("peer_q", &[("peer", "2")]), 4);
        assert_eq!(s.counter_value_with("peer_q", &[("peer", "9")]), 0);
    }

    #[test]
    fn kind_clash_yields_detached_handle() {
        let r = Registry::new();
        r.counter("mixed").incr();
        let g = r.gauge("mixed");
        g.set(9.0);
        let s = r.snapshot();
        assert_eq!(s.counter_value("mixed"), 1, "original storage intact");
        assert_eq!(s.gauge_value("mixed"), None, "clashing gauge not registered");
    }

    #[test]
    fn gauges_and_histograms_snapshot() {
        let r = Registry::new();
        r.gauge_with("staleness", &[("peer", "3")]).set(0.125);
        r.histogram("rtt_us").record(100);
        r.histogram("rtt_us").record(200);
        let s = r.snapshot();
        assert_eq!(s.gauge_value_with("staleness", &[("peer", "3")]), Some(0.125));
        let h = s.histogram_value("rtt_us");
        assert_eq!(h.samples(), 2);
        assert_eq!(h.sum, 300);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("req_total").add(5);
        r.gauge_with("stale", &[("peer", "1")]).set(0.5);
        r.histogram("lat_us").record(3);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE req_total counter\n"));
        assert!(text.contains("req_total 5\n"));
        assert!(text.contains("# TYPE stale gauge\n"));
        assert!(text.contains("stale{peer=\"1\"} 0.5\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_us_sum 3\n"));
        assert!(text.contains("lat_us_count 1\n"));
        // The value 3 lands in a bucket whose inclusive ceiling is 3.
        assert!(text.contains("lat_us_bucket{le=\"3\"} 1\n"), "{text}");
    }

    #[test]
    fn snapshot_json_has_instruments() {
        let r = Registry::new();
        r.counter("a_total").incr();
        r.histogram("h_us").record(7);
        let v = r.snapshot().to_json();
        let list = v.get("instruments").and_then(|x| x.as_array()).expect("array");
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].get("kind").and_then(|k| k.as_str()), Some("counter"));
        assert_eq!(list[1].get("count").and_then(|c| c.as_u64()), Some(1));
    }
}
