#![warn(missing_docs)]

//! `sc-obs` — the workspace's std-only observability layer.
//!
//! The paper's whole evaluation is measurement (Table II's ICP overhead,
//! Tables IV–V and Figs. 5–8's messages/bytes/CPU/hit-ratio columns), so
//! every component reports through one substrate instead of ad-hoc
//! tallies:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and log-bucketed
//!   [`Histogram`]s, registered get-or-create by `(name, labels)` and
//!   lock-free on the hot path;
//! * [`Timer`] — a scoped timer recording elapsed microseconds into a
//!   histogram on drop;
//! * [`Journal`] — a bounded ring buffer of structured protocol
//!   [`Event`]s (query sent, false hit, delta published, ...);
//! * [`Snapshot`] — a frozen registry view with a Prometheus-style text
//!   renderer ([`Snapshot::render_prometheus`]) and `sc-json`
//!   serialization for the proxy's admin endpoint and the bench
//!   binaries' results files.
//!
//! Metric names follow the Prometheus convention: `sc_` prefix,
//! `_total` suffix on counters, unit suffix on histograms (`_us`,
//! `_bytes`). Per-peer series reuse one name with a `peer` label.
//! `sc-check`'s `metrics` rule enforces that each name has exactly one
//! registration site in the workspace.

mod instrument;
mod journal;
mod registry;

pub use instrument::{
    bucket_floor, bucket_of, Counter, Gauge, Histogram, HistogramSnapshot, Timer, BUCKETS,
    SUBBUCKETS,
};
pub use journal::{Event, EventKind, Journal};
pub use registry::{InstrumentSnapshot, Observation, Registry, Snapshot};
