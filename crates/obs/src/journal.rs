//! A bounded ring-buffer journal of structured trace events.
//!
//! The daemon appends one [`Event`] per interesting protocol moment
//! (query fan-out, false hit, delta published, peer summary installed,
//! peer failure) and the admin endpoint serves the most recent ones as
//! JSON — enough to reconstruct *why* a counter moved without logging
//! every request.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use sc_json::{ToJson, Value};

/// What happened. Mirrors the paper's protocol moments: Section IV-V
/// (false hits / stale summaries) and Section VI (delta and bitmap
/// updates, recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An ICP query was fanned out to summary candidates.
    QuerySent,
    /// Every queried candidate missed — the summary lied (§V).
    FalseHit,
    /// A queried candidate served the document.
    RemoteHit,
    /// A candidate had only a stale copy.
    RemoteStaleHit,
    /// A delta (bit-flip) update was published to peers (§VI-A).
    DeltaPublished,
    /// A full-bitmap update was published (bootstrap / recovery).
    FullBitmapPublished,
    /// A peer's summary was installed or replaced.
    PeerSummaryInstalled,
    /// A peer's summary went stale (spec change forced a reset wait).
    PeerSummaryStale,
    /// A peer stopped answering keep-alives.
    PeerFailed,
    /// A failed peer came back.
    PeerRecovered,
    /// A lost or reordered update datagram was detected (seq gap or
    /// generation change); the replica was discarded pending resync.
    UpdateGap,
    /// A DIRREQ was sent asking a peer for its full bitmap.
    ResyncRequested,
    /// A peer replica was rebuilt from a received full bitmap.
    ReplicaResynced,
}

impl EventKind {
    /// Stable lowercase label used in JSON and logs.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::QuerySent => "query_sent",
            EventKind::FalseHit => "false_hit",
            EventKind::RemoteHit => "remote_hit",
            EventKind::RemoteStaleHit => "remote_stale_hit",
            EventKind::DeltaPublished => "delta_published",
            EventKind::FullBitmapPublished => "full_bitmap_published",
            EventKind::PeerSummaryInstalled => "peer_summary_installed",
            EventKind::PeerSummaryStale => "peer_summary_stale",
            EventKind::PeerFailed => "peer_failed",
            EventKind::PeerRecovered => "peer_recovered",
            EventKind::UpdateGap => "update_gap",
            EventKind::ResyncRequested => "resync_requested",
            EventKind::ReplicaResynced => "replica_resynced",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (counts every event ever recorded,
    /// including ones the ring has since dropped).
    pub seq: u64,
    /// Milliseconds since the journal was created.
    pub at_ms: u64,
    /// What happened.
    pub kind: EventKind,
    /// The peer involved, when the event concerns one.
    pub peer: Option<u32>,
    /// Free-form detail (URL, byte counts, ...). May be empty.
    pub detail: String,
}

impl ToJson for Event {
    fn to_json(&self) -> Value {
        sc_json::obj! {
            "seq" => self.seq,
            "at_ms" => self.at_ms,
            "kind" => self.kind.label(),
            "peer" => match self.peer {
                Some(p) => Value::UInt(p as u64),
                None => Value::Null,
            },
            "detail" => self.detail
        }
    }
}

#[derive(Debug)]
struct State {
    next_seq: u64,
    events: VecDeque<Event>,
}

/// A bounded ring buffer of [`Event`]s: recording is O(1), the oldest
/// event is dropped once `capacity` is reached.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    origin: Instant,
    state: Mutex<State>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new(1024)
    }
}

impl Journal {
    /// A journal keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Journal {
        Journal {
            capacity: capacity.max(1),
            origin: Instant::now(),
            state: Mutex::new(State {
                next_seq: 0,
                events: VecDeque::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Append an event, evicting the oldest once full.
    pub fn record(&self, kind: EventKind, peer: Option<u32>, detail: impl Into<String>) {
        let at_ms = self.origin.elapsed().as_millis() as u64;
        let mut st = self.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        if st.events.len() == self.capacity {
            st.events.pop_front();
        }
        st.events.push_back(Event {
            seq,
            at_ms,
            kind,
            peer,
            detail: detail.into(),
        });
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let st = self.lock();
        let skip = st.events.len().saturating_sub(n);
        st.events.iter().skip(skip).cloned().collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded, including dropped ones.
    pub fn total_recorded(&self) -> u64 {
        self.lock().next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let j = Journal::new(8);
        j.record(EventKind::QuerySent, Some(1), "http://a/");
        j.record(EventKind::FalseHit, Some(1), "");
        let evs = j.recent(10);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[1].kind, EventKind::FalseHit);
        assert_eq!(j.total_recorded(), 2);
    }

    #[test]
    fn ring_drops_oldest() {
        let j = Journal::new(3);
        for i in 0..5 {
            j.record(EventKind::DeltaPublished, None, format!("pub {i}"));
        }
        let evs = j.recent(10);
        assert_eq!(j.len(), 3);
        assert_eq!(evs[0].seq, 2, "oldest two dropped");
        assert_eq!(j.total_recorded(), 5);
        assert_eq!(j.recent(1).len(), 1);
        assert_eq!(j.recent(1)[0].seq, 4, "recent(n) returns the newest n");
    }

    #[test]
    fn event_json_shape() {
        let j = Journal::new(2);
        j.record(EventKind::PeerFailed, Some(7), "3 missed keepalives");
        let v = j.recent(1)[0].to_json();
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("peer_failed"));
        assert_eq!(v.get("peer").and_then(|p| p.as_u64()), Some(7));
        let j2 = Journal::new(2);
        j2.record(EventKind::QuerySent, None, "");
        assert_eq!(j2.recent(1)[0].to_json().get("peer"), Some(&Value::Null));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventKind::PeerSummaryStale.label(), "peer_summary_stale");
        assert_eq!(EventKind::FullBitmapPublished.label(), "full_bitmap_published");
    }
}
