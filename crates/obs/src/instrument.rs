//! The instrument handles: atomic counters, gauges, and log-bucketed
//! histograms, plus the scoped [`Timer`].
//!
//! Handles are cheap `Arc` clones around shared atomic storage; the hot
//! path (`incr`/`add`/`set`/`record`) is a single relaxed atomic RMW with
//! no locking. Registration (in [`crate::Registry`]) takes a lock once,
//! after which the handle is used lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Buckets per power of two (16 ⇒ ~4.4 % bucket width).
pub const SUBBUCKETS: u64 = 16;
/// Total bucket count: 64 octaves × 16 sub-buckets covers the full u64
/// range of recorded values (the proxy records microseconds and bytes).
pub const BUCKETS: usize = 1024;

/// Bucket index for a value: [`SUBBUCKETS`] linear slices per octave.
pub fn bucket_of(value: u64) -> usize {
    let v = value.max(1);
    let octave = 63 - v.leading_zeros() as u64;
    let base = octave * SUBBUCKETS;
    let within = if octave == 0 {
        0
    } else {
        // Position of v within [2^octave, 2^(octave+1)).
        ((v - (1 << octave)) * SUBBUCKETS) >> octave
    };
    ((base + within) as usize).min(BUCKETS - 1)
}

/// Lower bound of a bucket, for reporting.
pub fn bucket_floor(idx: usize) -> u64 {
    let octave = idx as u64 / SUBBUCKETS;
    let within = idx as u64 % SUBBUCKETS;
    if octave == 0 {
        within + 1
    } else {
        (1 << octave) + ((within << octave) / SUBBUCKETS)
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, detached counter (normally obtained from a registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest `f64` sample (stored as bits in an
/// `AtomicU64`, so reads and writes stay lock-free).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh, detached gauge (normally obtained from a registry).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replace the current value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistCore {
    /// Always exactly [`BUCKETS`] long.
    buckets: Box<[AtomicU64]>,
    /// Sum of all recorded values (for Prometheus `_sum` / means).
    sum: AtomicU64,
}

/// A concurrent log-bucketed histogram: 1024 logarithmic buckets
/// (16 per octave, ~4.4 % width) cover the full u64 range, each an
/// `AtomicU64`, safe to hammer from every connection thread.
///
/// The paper reports mean client latency; tail latency is where ICP's
/// query round-trips actually hurt (a miss waits for the slowest
/// neighbour or the timeout), so the cluster records full distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            core: Arc::new(HistCore {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A fresh, detached histogram (normally obtained from a registry).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.core.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Start a scoped timer that records elapsed microseconds into this
    /// histogram when dropped (or explicitly [`Timer::stop`]ped).
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            started: Instant::now(),
            armed: true,
        }
    }

    /// Freeze the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while counts.last() == Some(&0) {
            counts.pop();
        }
        HistogramSnapshot {
            counts,
            sum: self.core.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: per-bucket counts (trailing empty buckets
/// trimmed; index `i` covers `[bucket_floor(i), bucket_floor(i+1))`)
/// plus the sum of recorded values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket counts, trailing zeroes trimmed (so snapshots taken at
    /// different times legitimately have different widths).
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
}

sc_json::json_struct!(HistogramSnapshot { counts, sum });

impl HistogramSnapshot {
    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The value at percentile `p` (in `[0,1]`), reported as the floor
    /// of the bucket holding it — i.e. within one sub-bucket (~4.4 %)
    /// *below* the true value. Returns 0 when the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0,1]");
        let total = self.samples();
        if total == 0 {
            return 0;
        }
        let target = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return bucket_floor(i);
            }
        }
        bucket_floor(self.counts.len().saturating_sub(1))
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.samples();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Total merge of two snapshots: buckets are summed elementwise and
    /// the shorter snapshot is treated as zero-padded, so **no bucket is
    /// ever dropped** regardless of the two widths. Sums add; the result
    /// width is the longer of the two.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let len = self.counts.len().max(other.counts.len());
        let mut counts = Vec::with_capacity(len);
        for i in 0..len {
            let a = self.counts.get(i).copied().unwrap_or(0);
            let b = other.counts.get(i).copied().unwrap_or(0);
            counts.push(a.saturating_add(b));
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.saturating_add(other.sum),
        }
    }
}

/// A scoped timer: created by [`Histogram::start_timer`], records the
/// elapsed microseconds into its histogram when dropped.
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    started: Instant,
    armed: bool,
}

impl Timer {
    /// Stop now, record, and return the elapsed microseconds.
    pub fn stop(mut self) -> u64 {
        let us = self.started.elapsed().as_micros() as u64;
        self.hist.record(us);
        self.armed = false;
        us
    }

    /// Abandon the timer without recording anything.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.started.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.incr();
        assert_eq!(c.get(), 6, "clones share storage");

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn buckets_are_monotone_and_cover() {
        let mut prev = 0;
        for us in [1u64, 2, 3, 7, 8, 100, 1_000, 65_536, 10_000_000] {
            let b = bucket_of(us);
            assert!(b >= prev, "bucket order at {us}");
            prev = b;
            assert!(bucket_floor(b) <= us, "floor({b}) = {} > {us}", bucket_floor(b));
        }
        assert_eq!(bucket_of(0), bucket_of(1), "zero clamps to the first bucket");
    }

    #[test]
    fn bucket_floor_inverts_across_range() {
        for shift in 0..30 {
            for off in [0u64, 1, 3] {
                let us = (1u64 << shift) + off;
                let b = bucket_of(us);
                assert!(bucket_floor(b) <= us);
                // Below 2^4 several sub-buckets share a floor (the
                // octave is narrower than 16 slots), so the strict
                // "next bucket starts above us" property only holds
                // from octave 4 up.
                if b + 1 < BUCKETS && shift >= 4 {
                    assert!(bucket_floor(b + 1) > us, "next bucket starts past {us}");
                }
            }
        }
    }

    #[test]
    fn histogram_percentiles_of_known_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.samples(), 100);
        assert_eq!(s.sum, 90 * 1_000 + 10 * 1_000_000);
        let p50 = s.percentile(0.5);
        // Bucket floors under-report by up to one sub-bucket (~4.4%).
        assert!((950..=1000).contains(&p50), "p50 {p50} us");
        let p95 = s.percentile(0.95);
        assert!((900_000..1_100_000).contains(&p95), "p95 {p95} us");
        assert!(s.percentile(0.89) < 2_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.samples(), 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.counts.is_empty(), "all-zero buckets trim away");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_percentile() {
        Histogram::new().snapshot().percentile(1.5);
    }

    #[test]
    fn merge_is_total_across_widths() {
        let a = Histogram::new();
        a.record(1); // early bucket only -> short snapshot
        let b = Histogram::new();
        b.record(1_000_000); // late bucket -> long snapshot
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert!(sa.counts.len() < sb.counts.len());
        // Both orders keep every sample and the result width is the max.
        for m in [sa.merged(&sb), sb.merged(&sa)] {
            assert_eq!(m.samples(), 2);
            assert_eq!(m.sum, 1 + 1_000_000);
            assert_eq!(m.counts.len(), sb.counts.len());
        }
        let id = sa.merged(&HistogramSnapshot::default());
        assert_eq!(id, sa, "empty snapshot is the merge identity");
    }

    #[test]
    fn timer_records_on_drop_and_stop() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.snapshot().samples(), 1, "drop records");
        let us = h.start_timer().stop();
        assert_eq!(h.snapshot().samples(), 2, "stop records");
        assert!(us < 1_000_000, "a stopped timer reports sane elapsed time");
        h.start_timer().discard();
        assert_eq!(h.snapshot().samples(), 2, "discard records nothing");
    }

    #[test]
    fn snapshot_json_roundtrip() {
        use sc_json::{FromJson, ToJson};
        let h = Histogram::new();
        h.record(5);
        h.record(500);
        let s = h.snapshot();
        let back = HistogramSnapshot::from_json(&s.to_json()).expect("roundtrip");
        assert_eq!(back, s);
    }
}
