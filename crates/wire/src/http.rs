//! The HTTP/1.x subset the prototype proxy speaks.
//!
//! Real Squid speaks all of HTTP; the experiments only need GETs with a
//! few headers and `Content-Length`-framed bodies, so this codec is
//! deliberately small: incremental head parsing (so a tokio task can
//! read into a buffer and try again on `NeedMore`), case-insensitive
//! header lookup, and response building. The origin-server emulator
//! communicates document size and version through `X-Doc-Size` and
//! `Last-Modified`-style headers, mirroring how the benchmark encodes
//! request sizes in URLs (Section VII: "each request's URL carries the
//! size of the request in the trace file").

use std::fmt::Write as _;

/// Maximum accepted head size; longer heads are an attack or a bug.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (the proxy only ever sees GET).
    pub method: String,
    /// Request target as sent (absolute URL in proxy requests).
    pub target: String,
    /// Protocol version token, e.g. `HTTP/1.1`.
    pub version: String,
    /// Header name/value pairs, in arrival order.
    pub headers: Vec<(String, String)>,
}

/// A parsed response head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase (may contain spaces).
    pub reason: String,
    /// Header name/value pairs, in arrival order.
    pub headers: Vec<(String, String)>,
}

/// Incremental parse result: either not enough bytes yet, or a value
/// plus how many bytes of the buffer it consumed.
#[derive(Debug, PartialEq, Eq)]
pub enum Parse<T> {
    /// The buffer does not yet contain a complete head.
    NeedMore,
    /// Parsed `value`; the head occupied the first `consumed` bytes.
    Done {
        /// The parsed head.
        value: T,
        /// Bytes of the buffer it consumed.
        consumed: usize,
    },
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Head exceeded [`MAX_HEAD_BYTES`] without terminating.
    HeadTooLarge,
    /// Malformed start line.
    BadStartLine(String),
    /// Malformed header line.
    BadHeader(String),
    /// Head bytes were not valid UTF-8.
    NotUtf8,
    /// Status code was not a number.
    BadStatus(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::HeadTooLarge => write!(f, "HTTP head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BadStartLine(l) => write!(f, "bad start line: {l:?}"),
            HttpError::BadHeader(l) => write!(f, "bad header line: {l:?}"),
            HttpError::NotUtf8 => write!(f, "head is not valid UTF-8"),
            HttpError::BadStatus(s) => write!(f, "bad status code: {s:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Find the end of the head (the CRLFCRLF), tolerating bare LFLF.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Header list as parsed off the wire.
type Headers = Vec<(String, String)>;

fn parse_head_lines(head: &str) -> Result<(Vec<&str>, Headers), HttpError> {
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let start = lines.next().unwrap_or("");
    let parts: Vec<&str> = start.split_whitespace().collect();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.to_string()))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    Ok((parts, headers))
}

/// Try to parse a request head from the front of `buf`.
pub fn parse_request(buf: &[u8]) -> Result<Parse<Request>, HttpError> {
    let Some(end) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(Parse::NeedMore);
    };
    let head = std::str::from_utf8(&buf[..end]).map_err(|_| HttpError::NotUtf8)?;
    let (parts, headers) = parse_head_lines(head)?;
    if parts.len() != 3 {
        return Err(HttpError::BadStartLine(
            head.lines().next().unwrap_or("").to_string(),
        ));
    }
    Ok(Parse::Done {
        value: Request {
            method: parts[0].to_string(),
            target: parts[1].to_string(),
            version: parts[2].to_string(),
            headers,
        },
        consumed: end,
    })
}

/// Try to parse a response head from the front of `buf`.
pub fn parse_response(buf: &[u8]) -> Result<Parse<Response>, HttpError> {
    let Some(end) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(Parse::NeedMore);
    };
    let head = std::str::from_utf8(&buf[..end]).map_err(|_| HttpError::NotUtf8)?;
    let (parts, headers) = parse_head_lines(head)?;
    if parts.len() < 2 || !parts[0].starts_with("HTTP/") {
        return Err(HttpError::BadStartLine(
            head.lines().next().unwrap_or("").to_string(),
        ));
    }
    let status: u16 = parts[1]
        .parse()
        .map_err(|_| HttpError::BadStatus(parts[1].to_string()))?;
    Ok(Parse::Done {
        value: Response {
            status,
            reason: parts[2..].join(" "),
            headers,
        },
        consumed: end,
    })
}

/// Case-insensitive header lookup (first match).
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// `Content-Length`, if present and numeric.
pub fn content_length(headers: &[(String, String)]) -> Option<u64> {
    header(headers, "content-length")?.parse().ok()
}

/// Serialize a GET request head for `url` with extra headers.
pub fn build_request(url: &str, headers: &[(&str, &str)]) -> String {
    let mut s = format!("GET {url} HTTP/1.1\r\n");
    for (n, v) in headers {
        let _ = write!(s, "{n}: {v}\r\n");
    }
    s.push_str("\r\n");
    s
}

/// Serialize a response head.
pub fn build_response(status: u16, reason: &str, headers: &[(&str, &str)]) -> String {
    let mut s = format!("HTTP/1.1 {status} {reason}\r\n");
    for (n, v) in headers {
        let _ = write!(s, "{n}: {v}\r\n");
    }
    s.push_str("\r\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let head = build_request(
            "http://server-1.trace.invalid/doc/5",
            &[("Host", "server-1.trace.invalid"), ("X-Doc-Size", "1234")],
        );
        match parse_request(head.as_bytes()).unwrap() {
            Parse::Done { value, consumed } => {
                assert_eq!(consumed, head.len());
                assert_eq!(value.method, "GET");
                assert_eq!(value.target, "http://server-1.trace.invalid/doc/5");
                assert_eq!(value.version, "HTTP/1.1");
                assert_eq!(header(&value.headers, "x-doc-size"), Some("1234"));
                assert_eq!(header(&value.headers, "HOST"), Some("server-1.trace.invalid"));
                assert_eq!(header(&value.headers, "missing"), None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn response_roundtrip_with_body_framing() {
        let head = build_response(200, "OK", &[("Content-Length", "5")]);
        let mut bytes = head.clone().into_bytes();
        bytes.extend_from_slice(b"hello");
        match parse_response(&bytes).unwrap() {
            Parse::Done { value, consumed } => {
                assert_eq!(consumed, head.len());
                assert_eq!(value.status, 200);
                assert_eq!(value.reason, "OK");
                assert_eq!(content_length(&value.headers), Some(5));
                assert_eq!(&bytes[consumed..], b"hello");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn incremental_parsing_waits_for_full_head() {
        let head = build_request("http://a/", &[("Host", "a")]);
        for cut in 1..head.len() - 1 {
            assert_eq!(
                parse_request(&head.as_bytes()[..cut]).unwrap(),
                Parse::NeedMore,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn tolerates_bare_lf() {
        let raw = b"GET http://a/ HTTP/1.0\nHost: a\n\nrest";
        match parse_request(raw).unwrap() {
            Parse::Done { value, consumed } => {
                assert_eq!(value.version, "HTTP/1.0");
                assert_eq!(&raw[consumed..], b"rest");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            parse_request(b"NONSENSE\r\n\r\n"),
            Err(HttpError::BadStartLine(_))
        ));
        assert!(matches!(
            parse_request(b"TOO MANY PARTS HERE\r\n\r\n"),
            Err(HttpError::BadStartLine(_))
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            parse_response(b"HTTP/1.1 abc Bad\r\n\r\n"),
            Err(HttpError::BadStatus(_))
        ));
        assert!(matches!(
            parse_response(b"garbage\r\n\r\n"),
            Err(HttpError::BadStartLine(_))
        ));
    }

    #[test]
    fn oversized_head_is_an_error() {
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        buf.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(parse_request(&buf), Err(HttpError::HeadTooLarge));
    }

    #[test]
    fn reason_phrase_with_spaces() {
        let head = build_response(404, "Not Found", &[]);
        match parse_response(head.as_bytes()).unwrap() {
            Parse::Done { value, .. } => assert_eq!(value.reason, "Not Found"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
